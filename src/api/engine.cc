#include "api/engine.h"

#include <algorithm>
#include <utility>

#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "datagen/parts_gen.h"
#include "optimizer/baseline.h"
#include "txn/txn_manager.h"

namespace rodin {

namespace {

bool MakeDataset(const EngineOptions& options, GeneratedDb* out) {
  if (options.dataset == "music") {
    MusicConfig config;
    config.num_composers = options.size;
    config.seed = options.seed;
    *out = GenerateMusicDb(config, PaperMusicPhysical());
    return true;
  }
  if (options.dataset == "parts") {
    PartsConfig config;
    config.parts_per_level = std::max<uint32_t>(1, options.size / 5);
    config.seed = options.seed;
    *out = GeneratePartsDb(config, DefaultPartsPhysical());
    return true;
  }
  if (options.dataset == "graph") {
    GraphConfig config;
    config.num_nodes = options.size;
    config.seed = options.seed;
    *out = GenerateGraphDb(config, DefaultGraphPhysical());
    return true;
  }
  return false;
}

bool MakeOptimizerOptions(const EngineOptions& options, OptimizerOptions* out) {
  if (options.optimizer == "cost") {
    *out = CostBasedOptions(options.seed);
  } else if (options.optimizer == "deductive") {
    *out = DeductiveOptions(options.seed);
  } else if (options.optimizer == "naive") {
    *out = NaiveOptions(options.seed);
  } else if (options.optimizer == "exhaustive") {
    *out = ExhaustiveOptions(options.seed);
  } else if (options.optimizer == "annealing") {
    *out = AnnealingOptions(options.seed);
  } else {
    return false;
  }
  out->search_threads = std::max<size_t>(1, options.search_threads);
  return true;
}

}  // namespace

std::unique_ptr<EngineHandle> EngineHandle::Create(const EngineOptions& options,
                                                   Status* status) {
  OptimizerOptions opt_options;
  if (!MakeOptimizerOptions(options, &opt_options)) {
    if (status != nullptr) {
      *status = Status::Error(
          Status::Code::kInvalidArgument,
          "unknown optimizer '" + options.optimizer +
              "' (expected cost|deductive|naive|exhaustive|annealing)");
    }
    return nullptr;
  }
  GeneratedDb generated;
  if (!MakeDataset(options, &generated)) {
    if (status != nullptr) {
      *status = Status::Error(
          Status::Code::kInvalidArgument,
          "unknown dataset '" + options.dataset +
              "' (expected music|parts|graph)");
    }
    return nullptr;
  }
  CostParams cost_params;
  cost_params.parallel_degree = options.parallel_degree;
  if (status != nullptr) *status = Status::Ok();
  return std::unique_ptr<EngineHandle>(new EngineHandle(
      options, std::move(generated), opt_options, cost_params));
}

EngineHandle::EngineHandle(EngineOptions options, GeneratedDb generated,
                           OptimizerOptions opt_options,
                           CostParams cost_params)
    : options_(std::move(options)),
      generated_(std::move(generated)),
      opt_options_(opt_options),
      cost_params_(cost_params),
      plan_cache_(std::make_shared<PlanCache>(options_.plan_cache_capacity)),
      feedback_(std::make_shared<FeedbackRegistry>()) {}

std::unique_ptr<Session> EngineHandle::NewSession() {
  return std::make_unique<Session>(db(), opt_options_, cost_params_,
                                   plan_cache_, feedback_);
}

void EngineHandle::RefreshStats() {
  TxnManager::For(db())->BumpStatsVersion();
}

}  // namespace rodin
