#ifndef RODIN_API_ENGINE_H_
#define RODIN_API_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/plan_cache.h"
#include "api/session.h"
#include "common/status.h"
#include "cost/params.h"
#include "datagen/generated_db.h"
#include "optimizer/optimizer.h"
#include "storage/database.h"

namespace rodin {

/// Everything needed to stand up one engine instance: which synthetic
/// dataset to generate, how big, which optimizer baseline, and how the
/// sessions spawned from it are configured. This is the *single*
/// construction path of the embedding API — rodin_cli, rodin_serve, the
/// load driver and the tests all build their engine through
/// EngineHandle::Create, so "what does a server/CLI/test engine look like"
/// has exactly one answer.
struct EngineOptions {
  /// Synthetic dataset: "music", "parts" or "graph" (see src/datagen/).
  std::string dataset = "music";
  /// Scale knob: composers (music), parts-per-level/5 (parts), nodes
  /// (graph) — the same mapping rodin_cli always used.
  uint32_t size = 200;
  /// Data-generation seed.
  uint64_t seed = 42;
  /// Optimizer baseline: "cost", "deductive", "naive", "exhaustive" or
  /// "annealing" (see optimizer/baseline.h). The optimizer seed defaults to
  /// the data seed, matching rodin_cli.
  std::string optimizer = "cost";
  /// transformPT search parallelism for sessions (OptimizerOptions).
  size_t search_threads = 1;
  /// Cost-model parallel degree (CostParams::parallel_degree).
  unsigned parallel_degree = 1;
  /// Capacity of the shared plan cache all sessions draw from.
  size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
};

/// One constructed engine: the generated database plus the session-shared
/// state (plan cache, optimizer/cost configuration). Sessions created via
/// NewSession() share the database, its buffer pool and one plan cache —
/// the multiplexing unit the server builds on. Thread-safety: the handle
/// itself is immutable after Create; Sessions are single-threaded but many
/// may run concurrently over the shared database (the buffer pool and plan
/// cache are internally synchronized).
class EngineHandle {
 public:
  /// Validates `options`, generates the dataset and assembles the shared
  /// state. Returns null (and fills *status) on an unknown dataset or
  /// optimizer name — kInvalidArgument, never an abort, so servers can
  /// refuse bad configuration gracefully.
  static std::unique_ptr<EngineHandle> Create(const EngineOptions& options,
                                              Status* status);

  Database* db() { return generated_.db.get(); }
  const Schema& schema() const { return *generated_.schema; }
  const EngineOptions& options() const { return options_; }
  const OptimizerOptions& optimizer_options() const { return opt_options_; }
  const CostParams& cost_params() const { return cost_params_; }
  const std::shared_ptr<PlanCache>& plan_cache() const { return plan_cache_; }
  /// The adaptive-feedback registry every session from this handle shares —
  /// the same sharing unit as the plan cache, so one tenant's measured
  /// cardinalities correct every tenant's estimates (see cost/feedback.h).
  const std::shared_ptr<FeedbackRegistry>& feedback_registry() const {
    return feedback_;
  }

  /// A new session over the shared database and plan cache. The handle must
  /// outlive every session (and every cursor) it hands out.
  std::unique_ptr<Session> NewSession();

  /// Engine-wide statistics refresh: bumps the database's TxnManager stats
  /// version, so *every* session over this engine lazily re-derives its
  /// statistics on next use and the shared plan cache drops entries
  /// fingerprinted under the old version. Commits do this automatically;
  /// this is the explicit hook (promoted from Session::RefreshStats, which
  /// survives as a deprecated forwarder).
  void RefreshStats();

 private:
  EngineHandle(EngineOptions options, GeneratedDb generated,
               OptimizerOptions opt_options, CostParams cost_params);

  EngineOptions options_;
  GeneratedDb generated_;
  OptimizerOptions opt_options_;
  CostParams cost_params_;
  std::shared_ptr<PlanCache> plan_cache_;
  std::shared_ptr<FeedbackRegistry> feedback_;
};

}  // namespace rodin

#endif  // RODIN_API_ENGINE_H_
