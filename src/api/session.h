#ifndef RODIN_API_SESSION_H_
#define RODIN_API_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "exec/executor.h"
#include "exec/result_cursor.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "query/query_graph.h"
#include "storage/database.h"

namespace rodin {

/// Per-call knobs of Session::Run / Session::Explain. One struct instead of
/// boolean tails and per-call Optimizer rebuilds: defaults are the common
/// case, and every knob is named at the call site.
struct RunOptions {
  /// Start measurement from an empty buffer pool (cold run). Warm otherwise:
  /// counters reset but resident pages stay.
  bool cold = false;
  /// Attach a span tracer to the optimizer and executor; the resulting
  /// QueryRun::trace / ExplainResult::trace exports Chrome trace_event JSON.
  bool collect_trace = false;
  /// Optimize only — skip execution (answer stays empty, measured_cost -1).
  bool explain_only = false;
  /// Override the session's transformPT search parallelism (0 = keep the
  /// session's OptimizerOptions value). Knob precedence, here and for
  /// `seed`: a non-zero RunOptions value wins for this run; otherwise the
  /// session's OptimizerOptions value applies. There is no third copy —
  /// TransformOptions no longer carries these.
  size_t search_threads = 0;
  /// Override the session's optimizer seed (0 = keep).
  uint64_t seed = 0;
  /// The run's lifecycle budget: deadline, cancel token, memory budget.
  /// This is the only place the knobs are *defined* — the optimizer and
  /// executor reference the (armed copy of the) context by pointer, never
  /// copy the fields. Keep a copy of `query.cancel` to cancel from another
  /// thread; see QueryContext for semantics. Default: unbounded.
  QueryContext query;
  /// Worker threads for the batched executor's morsel-parallel operators
  /// (0 = executor default, sequential). Results, counters and measured
  /// cost are identical for any value; only wall time changes.
  size_t exec_threads = 0;
  /// Rows per executor batch (0 = executor default, 1024). Also identical
  /// accounting for any value.
  size_t batch_rows = 0;
  /// Evaluate with the pre-batching whole-table engine (differential
  /// oracle / bench baseline).
  bool legacy_exec = false;
};

/// Everything one query run produces: the optimizer's decision trail, the
/// chosen plan (printable), and the executed answer with measured cost.
struct QueryRun {
  Status status;

  QueryGraph graph;
  OptimizeResult optimized;
  std::string plan_text;  // PrintPT of the chosen plan

  Table answer;
  double measured_cost = -1;  // -1 when not executed
  ExecCounters counters;

  /// Span trace of the run (optimizer stages, push/search spans, execution).
  /// Null unless RunOptions::collect_trace was set.
  std::shared_ptr<const obs::Trace> trace;
  /// transformPT decision events (moves, pushes). Always collected — the
  /// log is a few hundred small records per query, noise next to planning.
  DecisionLog decisions;

  bool ok() const { return status.ok(); }
  const std::string& error() const { return status.message; }
};

/// One node of ExplainResult's plan tree: the cost model's view next to what
/// execution actually did.
struct ExplainNode {
  std::string label;      // operator description (PTNodeLabel)
  double est_cost = -1;   // cost-model estimate (cumulative, Figure 5)
  double est_rows = -1;
  bool executed = false;  // measured fields valid only when set
  OpStats measured;       // inclusive of children (see OpStats)
  std::vector<ExplainNode> children;
};

/// What EXPLAIN returns: per-stage reports, the full decision log, and the
/// plan with estimated vs (optionally) measured per-node figures.
struct ExplainResult {
  Status status;

  std::vector<StageReport> stages;  // rewrite/translate/generatePT/transformPT
  DecisionLog decisions;
  ExplainNode plan;       // valid when status.ok()
  std::string plan_text;  // PrintPT rendering

  double est_cost = -1;       // cost model's total for the chosen plan
  double measured_cost = -1;  // -1 when explain_only
  ExecCounters counters;      // zero when explain_only

  // transformPT outcome, copied from OptimizeResult for convenience.
  double pushed_variant_cost = -1;
  double unpushed_variant_cost = -1;
  bool chose_push = false;

  std::shared_ptr<const obs::Trace> trace;  // set when collect_trace

  bool ok() const { return status.ok(); }
  /// Human-readable report: stage table, decision log, annotated plan tree.
  std::string ToString() const;
};

/// Facade over the full pipeline for library users: owns the statistics,
/// cost model, optimizer and executor for one (finalized) database.
///
///   Session session(db);
///   QueryRun run = session.Run(R"(select [n: x.name] from x in Composer
///                                 where x.name = "Bach")");
///   ExplainResult ex = session.Explain(text, {.collect_trace = true});
///   ResultCursor cur = session.Query(text, {.exec_threads = 4});
///
/// The database must outlive the session. Statistics are derived once at
/// construction; call RefreshStats() if the physical layout changed (it
/// cannot after Finalize, so in practice never).
///
/// Set `opts.search_threads` (OptimizerOptions) or RunOptions::search_threads
/// to fan the randomized transformPT search across a worker pool; answers
/// and chosen plans stay deterministic under the seed for any thread count.
///
/// Lifecycle: RunOptions::query bounds a run by deadline, cancel token and
/// memory budget (see QueryContext and docs/ROBUSTNESS.md). Run/Explain
/// additionally retry transient injected faults (Status::retryable, i.e.
/// kFault only) with a small exponential backoff, restoring measurement
/// state between attempts so a retried run's answer and counters are
/// bit-identical to a clean run; streaming Query() never injects faults.
class Session {
 public:
  explicit Session(Database* db, OptimizerOptions options = {},
                   CostParams cost_params = {});

  /// Parses (ESQL-flavoured syntax, see query/parser.h), optimizes and
  /// executes under `options`.
  QueryRun Run(const std::string& text, const RunOptions& options = {});

  /// Optimizes and executes an already-built query graph under `options`.
  QueryRun Run(const QueryGraph& graph, const RunOptions& options = {});

  /// EXPLAIN: optimizes, collects the stage reports and decision log, and
  /// (unless options.explain_only) executes with per-operator profiling to
  /// put measured figures next to the estimates.
  ExplainResult Explain(const std::string& text,
                        const RunOptions& options = {});
  ExplainResult Explain(const QueryGraph& graph,
                        const RunOptions& options = {});

  /// Streaming execution: optimizes and returns a cursor over the answer
  /// instead of a materialized QueryRun. Rows are produced batch by batch
  /// as the caller pulls (plan barriers still materialize internally);
  /// cursor.counters() / measured_cost() are final once the cursor
  /// finishes and are identical to what Run() reports for the same
  /// options. Parse/optimize errors come back as a cursor with !ok().
  /// RunOptions::collect_trace is not supported here (use Run); the
  /// session must outlive the cursor.
  ResultCursor Query(const std::string& text, const RunOptions& options = {});
  ResultCursor Query(const QueryGraph& graph, const RunOptions& options = {});

  /// Optimizes without executing.
  OptimizeResult Optimize(const QueryGraph& graph);

  const Stats& stats() const { return *stats_; }
  const CostModel& cost_model() const { return *cost_; }
  Database& db() { return *db_; }

  void RefreshStats();

 private:
  QueryRun RunImpl(const QueryGraph& graph, const RunOptions& options,
                   Executor* exec);
  OptimizerOptions EffectiveOptions(const RunOptions& options) const;

  Database* db_;
  OptimizerOptions options_;
  CostParams cost_params_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
};

}  // namespace rodin

#endif  // RODIN_API_SESSION_H_
