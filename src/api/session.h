#ifndef RODIN_API_SESSION_H_
#define RODIN_API_SESSION_H_

#include <memory>
#include <string>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "query/query_graph.h"
#include "storage/database.h"

namespace rodin {

/// Everything one query run produces: the optimizer's decision trail, the
/// chosen plan (printable), and the executed answer with measured cost.
struct QueryRun {
  bool ok = false;
  std::string error;

  QueryGraph graph;
  OptimizeResult optimized;
  std::string plan_text;  // PrintPT of the chosen plan

  Table answer;
  double measured_cost = 0;
  ExecCounters counters;
};

/// Facade over the full pipeline for library users: owns the statistics,
/// cost model, optimizer and executor for one (finalized) database.
///
///   Session session(db);
///   QueryRun run = session.RunText(R"(select [n: x.name] from x in Composer
///                                     where x.name = "Bach")");
///
/// The database must outlive the session. Statistics are derived once at
/// construction; call RefreshStats() if the physical layout changed (it
/// cannot after Finalize, so in practice never).
///
/// Set `opts.search_threads` (OptimizerOptions) to fan the randomized
/// transformPT search across a worker pool; answers and chosen plans stay
/// deterministic under the seed for any thread count.
class Session {
 public:
  explicit Session(Database* db, OptimizerOptions options = {});

  /// Parses (ESQL-flavoured syntax, see query/parser.h), optimizes and
  /// executes. Measurement starts from a cold buffer when `cold` is set.
  QueryRun RunText(const std::string& text, bool cold = false);

  /// Optimizes and executes an already-built query graph.
  QueryRun Run(const QueryGraph& graph, bool cold = false);

  /// Optimizes without executing.
  OptimizeResult Optimize(const QueryGraph& graph);

  const Stats& stats() const { return *stats_; }
  const CostModel& cost_model() const { return *cost_; }
  Database& db() { return *db_; }

  void RefreshStats();

 private:
  Database* db_;
  OptimizerOptions options_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
};

}  // namespace rodin

#endif  // RODIN_API_SESSION_H_
