#ifndef RODIN_API_SESSION_H_
#define RODIN_API_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/plan_cache.h"
#include "api/query_options.h"
#include "common/query_context.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "cost/feedback.h"
#include "cost/stats.h"
#include "exec/executor.h"
#include "exec/result_cursor.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "txn/materialized_fix.h"
#include "txn/mutation.h"
#include "txn/txn_manager.h"

namespace rodin {

class Session;

// The per-call knob surface (QueryOptions) lives in api/query_options.h —
// one documented facade with a single inherit/override rule, shared by the
// session entry points, the CLI and the server's wire requests. The mutation
// types (MutationBatch and the typed MutationResult / CommitResult) live in
// txn/mutation.h.

/// Everything one query run produces: the optimizer's decision trail, the
/// chosen plan (printable), and the executed answer with measured cost.
struct QueryRun {
  Status status;

  QueryGraph graph;
  OptimizeResult optimized;
  std::string plan_text;  // PrintPT of the chosen plan

  Table answer;
  double measured_cost = -1;  // -1 when not executed
  ExecCounters counters;

  /// The plan came from the session's plan cache: the optimizer pipeline
  /// did not run (optimized.stages replays the original optimization's
  /// reports; a trace collected on this run has no stage spans).
  bool plan_cached = false;

  /// > 0 when this run re-optimized a plan the feedback loop had demoted
  /// for cost drift: the previous cached plan's measured cost was this many
  /// times off its estimate (see cost/feedback.h). 0 otherwise.
  double reoptimized_drift = 0;

  /// Span trace of the run (optimizer stages, push/search spans, execution).
  /// Null unless QueryOptions::collect_trace was set.
  std::shared_ptr<const obs::Trace> trace;
  /// transformPT decision events (moves, pushes). Always collected — the
  /// log is a few hundred small records per query, noise next to planning.
  DecisionLog decisions;

  bool ok() const { return status.ok(); }
  const std::string& error() const { return status.message; }
};

/// One node of ExplainResult's plan tree: the cost model's view next to what
/// execution actually did.
struct ExplainNode {
  std::string label;      // operator description (PTNodeLabel)
  double est_cost = -1;   // cost-model estimate (cumulative, Figure 5)
  double est_rows = -1;
  bool executed = false;  // measured fields valid only when set
  OpStats measured;       // inclusive of children (see OpStats)
  std::vector<ExplainNode> children;
};

/// What EXPLAIN returns: per-stage reports, the full decision log, and the
/// plan with estimated vs (optionally) measured per-node figures.
struct ExplainResult {
  Status status;

  std::vector<StageReport> stages;  // rewrite/translate/generatePT/transformPT
  DecisionLog decisions;
  ExplainNode plan;       // valid when status.ok()
  std::string plan_text;  // PrintPT rendering

  double est_cost = -1;       // cost model's total for the chosen plan
  double measured_cost = -1;  // -1 when explain_only
  ExecCounters counters;      // zero when explain_only

  // transformPT outcome, copied from OptimizeResult for convenience.
  double pushed_variant_cost = -1;
  double unpushed_variant_cost = -1;
  bool chose_push = false;

  /// Plan served from the plan cache (ToString renders "[plan: cached]";
  /// stages/decisions replay the original optimization's).
  bool plan_cached = false;

  /// > 0 when this run re-optimized a drift-demoted plan (ToString renders
  /// "[plan: re-optimized (drift N.Nx)]"); see QueryRun::reoptimized_drift.
  double reoptimized_drift = 0;

  /// Per-operator bytecode disassembly (see src/exec/vm/), one section per
  /// compilable expression in the chosen plan. Filled only when the run
  /// evaluated with compiled eval; ToString appends it after the plan tree.
  std::string vm_disassembly;

  std::shared_ptr<const obs::Trace> trace;  // set when collect_trace

  bool ok() const { return status.ok(); }

  /// The est-vs-measured plan table as structured data: one row per plan
  /// node in preorder, parent-linked (see PlanNodeStats). This is the same
  /// surface the feedback harvester consumes — clients that want the
  /// numbers read this instead of parsing the ToString() tree. Rows carry
  /// estimates even under explain_only (measured fields stay unset).
  const std::vector<PlanNodeStats>& node_stats() const { return node_stats_; }

  /// Human-readable report: stage table, decision log, annotated plan tree.
  std::string ToString() const;

 private:
  friend class Session;
  std::vector<PlanNodeStats> node_stats_;
};

/// A parsed-and-validated query bound to its Session, with the cache
/// fingerprint's graph component precomputed. Repeat executions skip the
/// parser *and* (on a plan-cache hit) the whole optimizer pipeline:
///
///   PreparedQuery pq = session.Prepare(text);
///   for (...) { QueryRun r = pq.Run(opts); ... }
///
/// Check ok() after Prepare: a parse failure yields a PreparedQuery whose
/// Run/Explain/Query return the parse status. The session must outlive the
/// handle. Copyable (a handle is a graph plus a digest string).
class PreparedQuery {
 public:
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const QueryGraph& graph() const { return graph_; }

  QueryRun Run(const QueryOptions& options = {});
  ExplainResult Explain(const QueryOptions& options = {});
  ResultCursor Query(const QueryOptions& options = {});

 private:
  friend class Session;
  PreparedQuery(Session* session, Status status, QueryGraph graph);

  Session* session_;
  Status status_;
  QueryGraph graph_;
  std::string digest_;  // GraphDigest(graph_), amortized across runs
};

/// Facade over the full pipeline for library users: owns the statistics,
/// cost model, optimizer and executor for one (finalized) database.
///
///   Session session(db);
///   QueryRun run = session.Run(R"(select [n: x.name] from x in Composer
///                                 where x.name = "Bach")");
///   ExplainResult ex = session.Explain(text, {.collect_trace = true});
///   ResultCursor cur = session.Query(text, {.exec_threads = 4});
///
/// The database must outlive the session. Statistics are derived at
/// construction and re-derived lazily whenever the engine-wide stats version
/// (TxnManager) has moved — every committed mutation bumps it, so cost
/// estimates track the data without any manual refresh call.
///
/// Mutation: Begin/Apply/Commit (or the one-shot Mutate) stage a
/// MutationBatch on the database's single-writer TxnManager and commit it
/// atomically; Materialize registers a named transitive-closure view that
/// commits maintain incrementally. See txn/txn_manager.h for the
/// concurrency contract (readers drain, live streaming cursors make Commit
/// refuse with kConflict).
///
/// Set `opts.search_threads` (OptimizerOptions) or QueryOptions::search_threads
/// to fan the randomized transformPT search across a worker pool; answers
/// and chosen plans stay deterministic under the seed for any thread count.
///
/// Lifecycle: QueryOptions::query bounds a run by deadline, cancel token and
/// memory budget (see QueryContext and docs/ROBUSTNESS.md). Run/Explain
/// additionally retry transient injected faults (Status::retryable, i.e.
/// kFault only) with a small exponential backoff, restoring measurement
/// state between attempts so a retried run's answer and counters are
/// bit-identical to a clean run; streaming Query() never injects faults.
/// While a streaming cursor from this session is still live (not drained,
/// not destroyed), Run/Explain refuse with kInvalidArgument if the fault
/// injector is enabled: the retry path's buffer-pool snapshot/restore must
/// not interleave with a cursor's deferred page accounting. The refusal's
/// Status::detail carries the live-cursor count, so a pool manager (e.g.
/// the server's session pool) can branch on it without parsing the message
/// — the contract is documented in docs/ROBUSTNESS.md.
///
/// Plan cache: repeat optimizations of the same (query, physical schema,
/// cost params, optimizer knobs) fingerprint are served from `plan_cache`
/// — the optimizer pipeline is skipped entirely and the cached plan goes
/// straight to execution (still under the caller's QueryContext). Pass a
/// shared PlanCache to share across sessions; by default each session owns
/// a private one. RefreshStats() invalidates this session's entries (stats
/// version bump); truncated optimizations and any run while the fault
/// injector is enabled are never cached. QueryOptions::bypass_plan_cache
/// opts a single run out; RODIN_PLAN_CACHE=0 disables caching process-wide.
class Session {
 public:
  explicit Session(Database* db, OptimizerOptions options = {},
                   CostParams cost_params = {},
                   std::shared_ptr<PlanCache> plan_cache = nullptr,
                   std::shared_ptr<FeedbackRegistry> feedback = nullptr);

  /// Parses (ESQL-flavoured syntax, see query/parser.h), optimizes and
  /// executes under `options`.
  QueryRun Run(const std::string& text, const QueryOptions& options = {});

  /// Optimizes and executes an already-built query graph under `options`.
  QueryRun Run(const QueryGraph& graph, const QueryOptions& options = {});

  /// EXPLAIN: optimizes, collects the stage reports and decision log, and
  /// (unless options.explain_only) executes with per-operator profiling to
  /// put measured figures next to the estimates.
  ExplainResult Explain(const std::string& text,
                        const QueryOptions& options = {});
  ExplainResult Explain(const QueryGraph& graph,
                        const QueryOptions& options = {});

  /// Streaming execution: optimizes and returns a cursor over the answer
  /// instead of a materialized QueryRun. Rows are produced batch by batch
  /// as the caller pulls (plan barriers still materialize internally);
  /// cursor.counters() / measured_cost() are final once the cursor
  /// finishes and are identical to what Run() reports for the same
  /// options. Parse/optimize errors come back as a cursor with !ok().
  /// QueryOptions::collect_trace is not supported here and returns a
  /// kInvalidArgument cursor (use Run); the session must outlive the
  /// cursor.
  ResultCursor Query(const std::string& text, const QueryOptions& options = {});
  ResultCursor Query(const QueryGraph& graph, const QueryOptions& options = {});

  /// Parses once into a reusable handle; see PreparedQuery.
  PreparedQuery Prepare(const std::string& text);
  PreparedQuery Prepare(const QueryGraph& graph);

  /// Optimizes without executing. Never consults the plan cache — this is
  /// the raw pipeline entry (tests use it as the cold oracle).
  OptimizeResult Optimize(const QueryGraph& graph);

  const Stats& stats() const { return *stats_; }
  const CostModel& cost_model() const { return *cost_; }
  Database& db() { return *db_; }
  PlanCache& plan_cache() { return *plan_cache_; }

  /// The adaptive-feedback registry this session harvests into and applies
  /// corrections from (see cost/feedback.h). Shared across sessions when
  /// constructed through EngineHandle — the same sharing unit as the plan
  /// cache; a standalone Session owns a private one.
  FeedbackRegistry& feedback_registry() { return *feedback_; }

  /// Streaming cursors from this session that have not yet finalized
  /// (drained, failed or destroyed).
  uint64_t live_streams() const { return live_streams_->load(); }

  /// Multi-tenant mode: declare that this session runs *concurrently* with
  /// other sessions over the same Database. Per-run measurement then leaves
  /// the shared buffer pool's statistics and resident set alone
  /// (Executor::ResetMeasurementShared; `cold` is ignored), and the fault
  /// injector is never consulted — its retry path's pool snapshot/restore
  /// cannot be made safe under concurrent charging. The server's session
  /// pool runs in this mode; single-tenant embedders keep the default
  /// (false) and retain exact cold/warm measurement semantics.
  void set_shared_db(bool on) { shared_db_ = on; }
  bool shared_db() const { return shared_db_; }

  // --- Mutation (the redesigned write API) --------------------------------
  //
  // All four calls are thin typed wrappers over the database's TxnManager;
  // a Session adds nothing but the convenience of living next to the read
  // entry points. Begin opens the single write slot (kConflict, retryable,
  // while another transaction holds it); Apply stages a batch and returns
  // provisional oids for its inserts (valid on commit success); Commit
  // validates and applies everything staged all-or-nothing, maintains
  // materialized views and bumps the engine-wide stats version; Rollback
  // discards. Commit refuses with kConflict while streaming cursors are
  // live — drain them and retry.

  Status Begin(uint64_t* txn_id) { return tm_->Begin(txn_id); }
  MutationResult Apply(uint64_t txn_id, const MutationBatch& batch);
  CommitResult Commit(uint64_t txn_id) { return tm_->Commit(txn_id); }
  Status Rollback(uint64_t txn_id) { return tm_->Rollback(txn_id); }

  /// One-shot Begin + Apply + Commit. `staged` (optional) receives the
  /// provisional oids of the batch's inserts.
  CommitResult Mutate(const MutationBatch& batch,
                      MutationResult* staged = nullptr);

  /// Registers a materialized transitive closure maintained incrementally
  /// by every commit (see txn/materialized_fix.h).
  Status Materialize(const MaterializedFixSpec& spec) {
    return tm_->RegisterView(spec);
  }
  Status DropMaterialized(const std::string& name) {
    return tm_->DropView(name);
  }
  /// The view's pairs, sorted by (src, dst) — its row-order contract.
  Status MaterializedRows(const std::string& name,
                          std::vector<std::pair<Oid, Oid>>* out) const {
    return tm_->ViewPairs(name, out);
  }

  /// The database's transaction manager (cursor registration, stats
  /// version, view policy).
  TxnManager& txn() { return *tm_; }

  /// DEPRECATED: forwards to EngineHandle-style engine-wide refresh — bumps
  /// the TxnManager stats version (invalidating plan-cache entries in every
  /// session sharing the cache) and re-derives this session's statistics
  /// immediately. Commits refresh automatically; prefer
  /// EngineHandle::RefreshStats for an explicit engine-wide bump.
  void RefreshStats();

 private:
  friend class PreparedQuery;

  /// One run's resolved feedback configuration: QueryOptions::feedback with
  /// the inherit defaults (RODIN_FEEDBACK env; kDefaultDriftThreshold /
  /// kDefaultFeedbackAlpha) applied.
  struct EffectiveFeedback {
    bool on = false;
    double drift_threshold = kDefaultDriftThreshold;
    double alpha = kDefaultFeedbackAlpha;
  };
  static EffectiveFeedback ResolveFeedback(const QueryOptions& options);

  QueryRun RunImpl(const QueryGraph& graph, const QueryOptions& options,
                   Executor* exec, const std::string* graph_digest);
  ResultCursor QueryImpl(const QueryGraph& graph, const QueryOptions& options,
                         const std::string* graph_digest);
  ExplainResult ExplainImpl(const QueryGraph& graph, const QueryOptions& options,
                            const std::string* graph_digest);
  OptimizerOptions EffectiveOptions(const QueryOptions& options) const;

  /// Re-derives stats/cost/physical identity if the engine-wide stats
  /// version moved since this session last derived (i.e. a commit or an
  /// explicit RefreshStats happened). Called on every query entry under the
  /// TxnManager read gate, so derivation never races a commit.
  void MaybeRefreshStats();

  /// Optimizes `graph` through the plan cache: a hit fills `*out` from the
  /// cached entry (plan cloned, stage reports and decision log replayed)
  /// and returns true without running the optimizer; a miss runs the full
  /// pipeline and, when the result is complete (ok, no stage truncated, no
  /// fault injector), inserts it. `opt_options` must already carry the armed
  /// query context.
  ///
  /// `corrections` (may be null / empty) is applied to the cost model on a
  /// miss — it is deliberately NOT part of the fingerprint, so correction
  /// updates alone never fork cache entries; drift demotion (PlanCache::
  /// Erase) is how a stale cached plan gets re-costed. `key_out` receives
  /// the fingerprint when non-null; `reoptimized_drift` receives the drift
  /// ratio when this miss consumed a demotion note for the key (i.e. the
  /// re-optimization the demotion asked for), 0 otherwise.
  bool OptimizeThroughCache(const QueryGraph& graph,
                            const OptimizerOptions& opt_options,
                            const ObsSink& sink, const QueryOptions& options,
                            const std::string* graph_digest,
                            const FeedbackCorrections* corrections,
                            OptimizeResult* out, DecisionLog* decisions,
                            std::string* key_out, double* reoptimized_drift);

  Database* db_;
  TxnManager* tm_;  // the database's write coordinator (process singleton)
  OptimizerOptions options_;
  CostParams cost_params_;
  bool shared_db_ = false;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;

  std::shared_ptr<PlanCache> plan_cache_;
  std::shared_ptr<FeedbackRegistry> feedback_;
  /// Fingerprint component cached once per RefreshStats (the database is
  /// finalized, so the physical identity is stable between refreshes).
  std::string physical_identity_;
  /// The engine-wide (TxnManager) stats version this session's statistics
  /// were derived at. Plan-cache entries written under an older version are
  /// invalidated at lookup; MaybeRefreshStats re-derives on mismatch.
  uint64_t stats_version_ = 0;

  /// Count of live streaming cursors; shared with each cursor's finalize
  /// hook so it survives the session if a cursor outlives it.
  std::shared_ptr<std::atomic<uint64_t>> live_streams_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace rodin

#endif  // RODIN_API_SESSION_H_
