#ifndef RODIN_API_SESSION_H_
#define RODIN_API_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/plan_cache.h"
#include "common/query_context.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "exec/executor.h"
#include "exec/result_cursor.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "query/query_graph.h"
#include "storage/database.h"

namespace rodin {

class Session;

/// Per-call knobs of Session::Run / Session::Explain. One struct instead of
/// boolean tails and per-call Optimizer rebuilds: defaults are the common
/// case, and every knob is named at the call site.
///
/// Override knobs are std::optional: nullopt means "inherit the session /
/// executor default", and an *engaged* value is taken literally — including
/// 0, which for `seed` is a legal seed and for the thread/batch knobs is a
/// usage error rejected with Status::Code::kInvalidArgument (0 worker
/// threads or 0-row batches cannot run). Before this, 0 doubled as the
/// inherit sentinel, which made seed 0 unreachable and made an explicit
/// `--exec-threads 0` silently mean something else.
struct RunOptions {
  /// Start measurement from an empty buffer pool (cold run). Warm otherwise:
  /// counters reset but resident pages stay.
  bool cold = false;
  /// Attach a span tracer to the optimizer and executor; the resulting
  /// QueryRun::trace / ExplainResult::trace exports Chrome trace_event JSON.
  bool collect_trace = false;
  /// Optimize only — skip execution (answer stays empty, measured_cost -1).
  bool explain_only = false;
  /// Override the session's transformPT search parallelism (nullopt = keep
  /// the session's OptimizerOptions value; engaged 0 = kInvalidArgument).
  /// Knob precedence, here and for `seed`: an engaged RunOptions value wins
  /// for this run; otherwise the session's OptimizerOptions value applies.
  /// There is no third copy — TransformOptions no longer carries these.
  std::optional<size_t> search_threads;
  /// Override the session's optimizer seed (nullopt = keep; 0 is a valid
  /// seed).
  std::optional<uint64_t> seed;
  /// The run's lifecycle budget: deadline, cancel token, memory budget.
  /// This is the only place the knobs are *defined* — the optimizer and
  /// executor reference the (armed copy of the) context by pointer, never
  /// copy the fields. Keep a copy of `query.cancel` to cancel from another
  /// thread; see QueryContext for semantics. Default: unbounded. The
  /// context always governs *this run's* execution — a plan served from the
  /// plan cache still runs under this deadline/cancel/budget.
  QueryContext query;
  /// Worker threads for the batched executor's morsel-parallel operators
  /// (nullopt = executor default, sequential; engaged 0 = kInvalidArgument).
  /// Results, counters and measured cost are identical for any value; only
  /// wall time changes.
  std::optional<size_t> exec_threads;
  /// Rows per executor batch (nullopt = executor default, 1024; engaged 0 =
  /// kInvalidArgument). Also identical accounting for any value.
  std::optional<size_t> batch_rows;
  /// Override the executor's compiled-eval default for this run (nullopt =
  /// ExecOptions default, i.e. the RODIN_COMPILED_EVAL switch). Compiled
  /// and interpreted eval produce the same rows and bit-identical
  /// ExecCounters / OpStats / MeasuredCost; the knob is deliberately NOT
  /// part of the plan-cache fingerprint, so flipping it between runs still
  /// hits the cache. Ignored by legacy_exec, which always interprets.
  std::optional<bool> compiled_eval;
  /// Evaluate with the pre-batching whole-table engine (differential
  /// oracle / bench baseline).
  bool legacy_exec = false;
  /// Skip the session's plan cache for this run: neither look up nor insert.
  /// The run optimizes from scratch exactly as a cache miss would.
  bool bypass_plan_cache = false;
};

/// Everything one query run produces: the optimizer's decision trail, the
/// chosen plan (printable), and the executed answer with measured cost.
struct QueryRun {
  Status status;

  QueryGraph graph;
  OptimizeResult optimized;
  std::string plan_text;  // PrintPT of the chosen plan

  Table answer;
  double measured_cost = -1;  // -1 when not executed
  ExecCounters counters;

  /// The plan came from the session's plan cache: the optimizer pipeline
  /// did not run (optimized.stages replays the original optimization's
  /// reports; a trace collected on this run has no stage spans).
  bool plan_cached = false;

  /// Span trace of the run (optimizer stages, push/search spans, execution).
  /// Null unless RunOptions::collect_trace was set.
  std::shared_ptr<const obs::Trace> trace;
  /// transformPT decision events (moves, pushes). Always collected — the
  /// log is a few hundred small records per query, noise next to planning.
  DecisionLog decisions;

  bool ok() const { return status.ok(); }
  const std::string& error() const { return status.message; }
};

/// One node of ExplainResult's plan tree: the cost model's view next to what
/// execution actually did.
struct ExplainNode {
  std::string label;      // operator description (PTNodeLabel)
  double est_cost = -1;   // cost-model estimate (cumulative, Figure 5)
  double est_rows = -1;
  bool executed = false;  // measured fields valid only when set
  OpStats measured;       // inclusive of children (see OpStats)
  std::vector<ExplainNode> children;
};

/// What EXPLAIN returns: per-stage reports, the full decision log, and the
/// plan with estimated vs (optionally) measured per-node figures.
struct ExplainResult {
  Status status;

  std::vector<StageReport> stages;  // rewrite/translate/generatePT/transformPT
  DecisionLog decisions;
  ExplainNode plan;       // valid when status.ok()
  std::string plan_text;  // PrintPT rendering

  double est_cost = -1;       // cost model's total for the chosen plan
  double measured_cost = -1;  // -1 when explain_only
  ExecCounters counters;      // zero when explain_only

  // transformPT outcome, copied from OptimizeResult for convenience.
  double pushed_variant_cost = -1;
  double unpushed_variant_cost = -1;
  bool chose_push = false;

  /// Plan served from the plan cache (ToString renders "[plan: cached]";
  /// stages/decisions replay the original optimization's).
  bool plan_cached = false;

  /// Per-operator bytecode disassembly (see src/exec/vm/), one section per
  /// compilable expression in the chosen plan. Filled only when the run
  /// evaluated with compiled eval; ToString appends it after the plan tree.
  std::string vm_disassembly;

  std::shared_ptr<const obs::Trace> trace;  // set when collect_trace

  bool ok() const { return status.ok(); }
  /// Human-readable report: stage table, decision log, annotated plan tree.
  std::string ToString() const;
};

/// A parsed-and-validated query bound to its Session, with the cache
/// fingerprint's graph component precomputed. Repeat executions skip the
/// parser *and* (on a plan-cache hit) the whole optimizer pipeline:
///
///   PreparedQuery pq = session.Prepare(text);
///   for (...) { QueryRun r = pq.Run(opts); ... }
///
/// Check ok() after Prepare: a parse failure yields a PreparedQuery whose
/// Run/Explain/Query return the parse status. The session must outlive the
/// handle. Copyable (a handle is a graph plus a digest string).
class PreparedQuery {
 public:
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const QueryGraph& graph() const { return graph_; }

  QueryRun Run(const RunOptions& options = {});
  ExplainResult Explain(const RunOptions& options = {});
  ResultCursor Query(const RunOptions& options = {});

 private:
  friend class Session;
  PreparedQuery(Session* session, Status status, QueryGraph graph);

  Session* session_;
  Status status_;
  QueryGraph graph_;
  std::string digest_;  // GraphDigest(graph_), amortized across runs
};

/// Facade over the full pipeline for library users: owns the statistics,
/// cost model, optimizer and executor for one (finalized) database.
///
///   Session session(db);
///   QueryRun run = session.Run(R"(select [n: x.name] from x in Composer
///                                 where x.name = "Bach")");
///   ExplainResult ex = session.Explain(text, {.collect_trace = true});
///   ResultCursor cur = session.Query(text, {.exec_threads = 4});
///
/// The database must outlive the session. Statistics are derived once at
/// construction; call RefreshStats() if the physical layout changed (it
/// cannot after Finalize, so in practice never).
///
/// Set `opts.search_threads` (OptimizerOptions) or RunOptions::search_threads
/// to fan the randomized transformPT search across a worker pool; answers
/// and chosen plans stay deterministic under the seed for any thread count.
///
/// Lifecycle: RunOptions::query bounds a run by deadline, cancel token and
/// memory budget (see QueryContext and docs/ROBUSTNESS.md). Run/Explain
/// additionally retry transient injected faults (Status::retryable, i.e.
/// kFault only) with a small exponential backoff, restoring measurement
/// state between attempts so a retried run's answer and counters are
/// bit-identical to a clean run; streaming Query() never injects faults.
/// While a streaming cursor from this session is still live (not drained,
/// not destroyed), Run/Explain refuse with kInvalidArgument if the fault
/// injector is enabled: the retry path's buffer-pool snapshot/restore must
/// not interleave with a cursor's deferred page accounting.
///
/// Plan cache: repeat optimizations of the same (query, physical schema,
/// cost params, optimizer knobs) fingerprint are served from `plan_cache`
/// — the optimizer pipeline is skipped entirely and the cached plan goes
/// straight to execution (still under the caller's QueryContext). Pass a
/// shared PlanCache to share across sessions; by default each session owns
/// a private one. RefreshStats() invalidates this session's entries (stats
/// version bump); truncated optimizations and any run while the fault
/// injector is enabled are never cached. RunOptions::bypass_plan_cache
/// opts a single run out; RODIN_PLAN_CACHE=0 disables caching process-wide.
class Session {
 public:
  explicit Session(Database* db, OptimizerOptions options = {},
                   CostParams cost_params = {},
                   std::shared_ptr<PlanCache> plan_cache = nullptr);

  /// Parses (ESQL-flavoured syntax, see query/parser.h), optimizes and
  /// executes under `options`.
  QueryRun Run(const std::string& text, const RunOptions& options = {});

  /// Optimizes and executes an already-built query graph under `options`.
  QueryRun Run(const QueryGraph& graph, const RunOptions& options = {});

  /// EXPLAIN: optimizes, collects the stage reports and decision log, and
  /// (unless options.explain_only) executes with per-operator profiling to
  /// put measured figures next to the estimates.
  ExplainResult Explain(const std::string& text,
                        const RunOptions& options = {});
  ExplainResult Explain(const QueryGraph& graph,
                        const RunOptions& options = {});

  /// Streaming execution: optimizes and returns a cursor over the answer
  /// instead of a materialized QueryRun. Rows are produced batch by batch
  /// as the caller pulls (plan barriers still materialize internally);
  /// cursor.counters() / measured_cost() are final once the cursor
  /// finishes and are identical to what Run() reports for the same
  /// options. Parse/optimize errors come back as a cursor with !ok().
  /// RunOptions::collect_trace is not supported here and returns a
  /// kInvalidArgument cursor (use Run); the session must outlive the
  /// cursor.
  ResultCursor Query(const std::string& text, const RunOptions& options = {});
  ResultCursor Query(const QueryGraph& graph, const RunOptions& options = {});

  /// Parses once into a reusable handle; see PreparedQuery.
  PreparedQuery Prepare(const std::string& text);
  PreparedQuery Prepare(const QueryGraph& graph);

  /// Optimizes without executing. Never consults the plan cache — this is
  /// the raw pipeline entry (tests use it as the cold oracle).
  OptimizeResult Optimize(const QueryGraph& graph);

  const Stats& stats() const { return *stats_; }
  const CostModel& cost_model() const { return *cost_; }
  Database& db() { return *db_; }
  PlanCache& plan_cache() { return *plan_cache_; }

  /// Streaming cursors from this session that have not yet finalized
  /// (drained, failed or destroyed).
  uint64_t live_streams() const { return live_streams_->load(); }

  /// Re-derives statistics and bumps the session's stats version, lazily
  /// invalidating every plan-cache entry this session wrote (they are
  /// dropped on next lookup).
  void RefreshStats();

 private:
  friend class PreparedQuery;

  QueryRun RunImpl(const QueryGraph& graph, const RunOptions& options,
                   Executor* exec, const std::string* graph_digest);
  ResultCursor QueryImpl(const QueryGraph& graph, const RunOptions& options,
                         const std::string* graph_digest);
  ExplainResult ExplainImpl(const QueryGraph& graph, const RunOptions& options,
                            const std::string* graph_digest);
  OptimizerOptions EffectiveOptions(const RunOptions& options) const;

  /// Optimizes `graph` through the plan cache: a hit fills `*out` from the
  /// cached entry (plan cloned, stage reports and decision log replayed)
  /// and returns true without running the optimizer; a miss runs the full
  /// pipeline and, when the result is complete (ok, no stage truncated, no
  /// fault injector), inserts it. `opt_options` must already carry the armed
  /// query context.
  bool OptimizeThroughCache(const QueryGraph& graph,
                            const OptimizerOptions& opt_options,
                            const ObsSink& sink, const RunOptions& options,
                            const std::string* graph_digest,
                            OptimizeResult* out, DecisionLog* decisions);

  Database* db_;
  OptimizerOptions options_;
  CostParams cost_params_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;

  std::shared_ptr<PlanCache> plan_cache_;
  /// Fingerprint component cached once per RefreshStats (the database is
  /// finalized, so the physical identity is stable between refreshes).
  std::string physical_identity_;
  /// Bumped by RefreshStats; entries written under an older version are
  /// invalidated at lookup.
  uint64_t stats_version_ = 0;

  /// Count of live streaming cursors; shared with each cursor's finalize
  /// hook so it survives the session if a cursor outlives it.
  std::shared_ptr<std::atomic<uint64_t>> live_streams_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace rodin

#endif  // RODIN_API_SESSION_H_
