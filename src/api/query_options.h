#ifndef RODIN_API_QUERY_OPTIONS_H_
#define RODIN_API_QUERY_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "common/query_context.h"
#include "common/status.h"
#include "exec/executor.h"

namespace rodin {

/// The adaptive-feedback knob block (one per-query surface for the feedback
/// loop, see cost/feedback.h and DESIGN.md §8), following the facade's
/// inherit/override rule: the optional is a tri-state override and the
/// numeric knobs use 0 / disengaged = inherit (an explicit 0 would be
/// meaningless for either — a drift threshold must exceed 1 and an EWMA
/// weight of 0 would learn nothing, so 0 can double as the sentinel here
/// without making any legal value unreachable).
struct FeedbackOptions {
  /// Harvest measured cardinalities from this run and cost this run's
  /// optimization with the learned corrections (nullopt = the RODIN_FEEDBACK
  /// environment default, off unless set). Feedback never changes results,
  /// only plans; faulted, truncated and cancelled runs never contribute.
  std::optional<bool> enabled;
  /// Demote a *cached* plan when measured cost drifts this many times from
  /// its estimate, in either direction (0 = inherit the engine default,
  /// kDefaultDriftThreshold; set values must be > 1).
  double drift_threshold = 0;
  /// EWMA weight of one run's observation in a correction factor (0 =
  /// inherit kDefaultFeedbackAlpha; set values must be in (0, 1]).
  double ewma_alpha = 0;
};

/// The one per-query knob surface of the embedding API.
///
/// Before this facade there were three overlapping places to say how a query
/// should run: a session-level options struct, ExecOptions (executor-level,
/// with its own defaults) and the QueryContext plumbed separately by pointer.
/// QueryOptions collapses them: every session entry point (Run / Explain /
/// Query / PreparedQuery::*, and the server's wire requests) takes exactly
/// this struct, and ExecOptions survives only as the *lowered* internal form
/// that QueryOptions::MakeExecOptions derives — user code never constructs
/// one unless it drives a raw Executor (differential oracles, benches).
///
/// The single inherit/override rule, uniform across every knob:
///
///   - a plain field (cold, legacy_exec, ...) is taken literally;
///   - an std::optional field is an *override*: nullopt means "inherit the
///     session / executor / environment default", and an engaged value is
///     taken literally — including 0, which for `seed` is a legal seed and
///     for the thread/batch knobs is a usage error rejected with
///     Status::Code::kInvalidArgument (0 worker threads or 0-row batches
///     cannot run). Before this, 0 doubled as the inherit sentinel, which
///     made seed 0 unreachable and made an explicit `--exec-threads 0`
///     silently mean something else;
///   - the lifecycle budget (`query`) is the only *definition* of deadline /
///     cancel / memory-budget: stages reference the armed copy by pointer,
///     never copy the fields.
///
/// Precedence for the optionals: engaged QueryOptions value > session
/// OptimizerOptions value (search_threads, seed) or executor/environment
/// default (exec_threads, batch_rows, compiled_eval). There is no third
/// copy anywhere.
struct QueryOptions {
  /// Start measurement from an empty buffer pool (cold run). Warm otherwise:
  /// counters reset but resident pages stay.
  bool cold = false;
  /// Attach a span tracer to the optimizer and executor; the resulting
  /// QueryRun::trace / ExplainResult::trace exports Chrome trace_event JSON.
  bool collect_trace = false;
  /// Optimize only — skip execution (answer stays empty, measured_cost -1).
  bool explain_only = false;
  /// Override the session's transformPT search parallelism (nullopt = keep
  /// the session's OptimizerOptions value; engaged 0 = kInvalidArgument).
  std::optional<size_t> search_threads;
  /// Override the session's optimizer seed (nullopt = keep; 0 is a valid
  /// seed).
  std::optional<uint64_t> seed;
  /// The run's lifecycle budget: deadline, cancel token, memory budget.
  /// Keep a copy of `query.cancel` to cancel from another thread; see
  /// QueryContext for semantics. Default: unbounded. The context always
  /// governs *this run's* execution — a plan served from the plan cache
  /// still runs under this deadline/cancel/budget.
  QueryContext query;
  /// Worker threads for the batched executor's morsel-parallel operators
  /// (nullopt = executor default, sequential; engaged 0 = kInvalidArgument).
  /// Results, counters and measured cost are identical for any value; only
  /// wall time changes.
  std::optional<size_t> exec_threads;
  /// Rows per executor batch (nullopt = executor default, 1024; engaged 0 =
  /// kInvalidArgument). Also identical accounting for any value.
  std::optional<size_t> batch_rows;
  /// Override the executor's compiled-eval default for this run (nullopt =
  /// ExecOptions default, i.e. the RODIN_COMPILED_EVAL switch). Compiled
  /// and interpreted eval produce the same rows and bit-identical
  /// ExecCounters / OpStats / MeasuredCost; the knob is deliberately NOT
  /// part of the plan-cache fingerprint, so flipping it between runs still
  /// hits the cache. Ignored by legacy_exec, which always interprets.
  std::optional<bool> compiled_eval;
  /// Build a hash table over the inner of an equi nested-loop join. Same
  /// rows and order, but honestly different predicate/page accounting —
  /// opt-in and excluded from the accounting-identity guarantee (see
  /// ExecOptions::hash_equijoin, which this lowers onto).
  bool hash_equijoin = false;
  /// Evaluate with the pre-batching whole-table engine (differential
  /// oracle / bench baseline).
  bool legacy_exec = false;
  /// Skip the session's plan cache for this run: neither look up nor insert.
  /// The run optimizes from scratch exactly as a cache miss would.
  bool bypass_plan_cache = false;
  /// Adaptive cost feedback: measured-cardinality corrections at optimize
  /// time, harvesting after execution, drift-triggered re-optimization of
  /// cached plans (see the block's own documentation above). Like
  /// compiled_eval, none of this enters the plan-cache fingerprint —
  /// flipping feedback between runs still hits the cache.
  FeedbackOptions feedback;

  /// Rejects engaged-zero thread/batch knobs (kInvalidArgument) per the
  /// override rule above. Every session entry point calls this first.
  Status Validate() const;

  /// Lowers the executor-relevant knobs onto the engine's ExecOptions.
  /// Disengaged optionals keep the executor defaults. `armed` is the run's
  /// *armed* QueryContext (owned by the caller for the duration of the
  /// execution), referenced — not copied — per the single-source-of-truth
  /// rule. This is the only place the mapping exists.
  ExecOptions MakeExecOptions(const QueryContext* armed) const;
};

}  // namespace rodin

#endif  // RODIN_API_QUERY_OPTIONS_H_
