#include "api/plan_cache.h"

#include <cstdlib>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "optimizer/transform.h"

namespace rodin {

namespace {

obs::Counter* CacheCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

void BumpHits() { CacheCounter("rodin.plan_cache.hits")->Increment(); }
void BumpMisses() { CacheCounter("rodin.plan_cache.misses")->Increment(); }
void BumpInserts() { CacheCounter("rodin.plan_cache.inserts")->Increment(); }
void BumpEvictions(uint64_t n) {
  CacheCounter("rodin.plan_cache.evictions")->Add(n);
}
void BumpInvalidations(uint64_t n) {
  CacheCounter("rodin.plan_cache.invalidations")->Add(n);
}

}  // namespace

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {}

PlanCacheEntry PlanCache::CopyEntry(const PlanCacheEntry& e) {
  PlanCacheEntry out;
  out.plan = e.plan != nullptr ? e.plan->Clone() : nullptr;
  out.cost = e.cost;
  out.plans_explored = e.plans_explored;
  out.stages = e.stages;
  out.decisions = e.decisions;
  out.pushed_sel = e.pushed_sel;
  out.pushed_join = e.pushed_join;
  out.pushed_proj = e.pushed_proj;
  out.pushed_variant_cost = e.pushed_variant_cost;
  out.unpushed_variant_cost = e.unpushed_variant_cost;
  out.stats_version = e.stats_version;
  return out;
}

bool PlanCache::Lookup(const std::string& key, uint64_t stats_version,
                       PlanCacheEntry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    BumpMisses();
    return false;
  }
  if (it->second.first.stats_version != stats_version) {
    // Written under other statistics: the plan may no longer be the one the
    // optimizer would choose. Drop it; the caller re-optimizes.
    lru_.erase(it->second.second);
    entries_.erase(it);
    ++stats_.invalidations;
    BumpInvalidations(1);
    ++stats_.misses;
    BumpMisses();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.second);  // move to front
  *out = CopyEntry(it->second.first);
  ++stats_.hits;
  BumpHits();
  return true;
}

void PlanCache::Insert(const std::string& key, PlanCacheEntry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.second);
    it->second.first = std::move(entry);
  } else {
    lru_.push_front(key);
    entries_.emplace(key, std::make_pair(std::move(entry), lru_.begin()));
    while (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
      BumpEvictions(1);
    }
  }
  ++stats_.inserts;
  BumpInserts();
}

bool PlanCache::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.second);
  entries_.erase(it);
  ++stats_.demotions;
  CacheCounter("rodin.plan_cache.demotions")->Increment();
  return true;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t dropped = entries_.size();
  entries_.clear();
  lru_.clear();
  stats_.invalidations += dropped;
  BumpInvalidations(dropped);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string GraphDigest(const QueryGraph& graph) {
  // The canonical rendering covers every semantic component of the graph:
  // per-node inputs, path variables, predicate, projection and output name.
  // It is conservative — alpha-equivalent graphs with different variable
  // names digest differently (a false miss, never a false hit).
  return graph.ToString() + "\nanswer=" + graph.answer;
}

std::string PhysicalIdentity(const Database& db) {
  std::string out = "physical{";
  const PhysicalConfig& cfg = db.config();
  out += StrFormat("buffer=%zu;", cfg.buffer_pages);
  for (const auto& [name, bytes] : cfg.record_bytes_override) {
    out += StrFormat("rec(%s)=%llu;", name.c_str(),
                     static_cast<unsigned long long>(bytes));
  }
  for (const ClusterSpec& c : cfg.clustering) {
    out += "cluster(" + c.owner_class + "." + c.attr + ");";
  }
  for (const VerticalSpec& v : cfg.vertical) {
    out += "vertical(" + v.class_name + ":";
    for (const auto& group : v.groups) out += "[" + Join(group, ",") + "]";
    out += ");";
  }
  for (const HorizontalSpec& h : cfg.horizontal) {
    out += StrFormat("horizontal(%s.%s:%u);", h.extent_name.c_str(),
                     h.attr.c_str(), h.num_fragments);
  }
  for (const SelIndexSpec& s : cfg.sel_indexes) {
    out += "selindex(" + s.extent_name + "." + s.attr + ");";
  }
  for (const PathIndexSpec& p : cfg.path_indexes) {
    out += "pathindex(" + p.root_class + "." + p.PathString() + ");";
  }
  // Per-extent population: the optimizer's statistics derive from the data,
  // so two databases that differ in content must not share entries. Page
  // and instance counts are a cheap, layout-sensitive content summary.
  const Schema& schema = db.schema();
  auto add_extent = [&](const std::string& name) {
    const Extent* e = db.FindExtent(name);
    if (e == nullptr) return;
    out += StrFormat("extent(%s:%u recs,%llu pages,%uv,%uh);", name.c_str(),
                     e->size(),
                     static_cast<unsigned long long>(
                         db.EntityPages(EntityRef{name, 0, 0})),
                     e->num_vfrags(), e->num_hfrags());
  };
  for (const auto& c : schema.classes()) add_extent(c->name());
  for (const auto& r : schema.relations()) add_extent(r->name());
  out += "}";
  return out;
}

std::string PlanFingerprint(const QueryGraph& graph, const Database& db,
                            const CostParams& cost_params,
                            const OptimizerOptions& options,
                            const std::string* graph_digest) {
  return ComposeFingerprint(
      graph_digest != nullptr ? *graph_digest : GraphDigest(graph),
      PhysicalIdentity(db), cost_params, options);
}

std::string ComposeFingerprint(const std::string& graph_digest,
                               const std::string& physical_identity,
                               const CostParams& cost_params,
                               const OptimizerOptions& options) {
  std::string key = graph_digest;
  key += "\n";
  key += physical_identity;
  key += StrFormat(
      "\ncost{pr=%.17g;ev=%.17g;mw=%.17g;mat=%d;pd=%u;po=%.17g;"
      "srw=%.17g;mbp=%llu}",
      cost_params.pr, cost_params.ev_tuple, cost_params.method_weight,
      cost_params.include_materialization ? 1 : 0, cost_params.parallel_degree,
      cost_params.parallel_overhead, cost_params.spill_rw,
      static_cast<unsigned long long>(cost_params.memory_budget_pages));
  const TransformOptions& t = options.transform;
  key += StrFormat(
      "\nopt{gen=%s;seed=%llu;threads=%zu;fold=%d;naive=%d;"
      "push=%d%d%d;always=%d;never=%d;rand=%s;moves=%zu;stop=%zu;"
      "restarts=%zu;temp=%.17g;cool=%.17g}",
      GenStrategyName(options.gen_strategy),
      static_cast<unsigned long long>(options.seed), options.search_threads,
      options.fold_views ? 1 : 0, options.naive_fixpoint ? 1 : 0,
      t.enable_push_sel ? 1 : 0, t.enable_push_join ? 1 : 0,
      t.enable_push_proj ? 1 : 0, t.always_push ? 1 : 0, t.never_push ? 1 : 0,
      RandStrategyName(t.rand), t.rand_moves, t.rand_local_stop,
      t.rand_restarts, t.sa_initial_temp, t.sa_cooling);
  return key;
}

bool PlanCacheEnabledByEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("RODIN_PLAN_CACHE");
    if (v == nullptr) return true;
    const std::string s(v);
    return !(s == "0" || s == "off" || s == "OFF" || s == "false");
  }();
  return enabled;
}

}  // namespace rodin
