#ifndef RODIN_API_PLAN_CACHE_H_
#define RODIN_API_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cost/params.h"
#include "obs/decision.h"
#include "optimizer/optimizer.h"
#include "plan/pt.h"
#include "storage/database.h"

namespace rodin {

/// One cached optimization outcome: everything Session needs to skip the
/// rewrite -> translate -> generatePT -> transformPT pipeline on a repeat of
/// the same query. The plan inside is a *master copy* — the cache clones it
/// out on every hit, so a cached plan is never shared mutably between runs
/// (execution never mutates a PT, but QueryRun/cursor keepalives own their
/// plan, so each run gets its own tree).
struct PlanCacheEntry {
  PTPtr plan;
  double cost = 0;
  size_t plans_explored = 0;
  std::vector<StageReport> stages;  // the original optimization's reports
  DecisionLog decisions;            // replayed into hits' decision logs

  // transformPT outcome, mirrored from OptimizeResult.
  bool pushed_sel = false;
  bool pushed_join = false;
  bool pushed_proj = false;
  double pushed_variant_cost = -1;
  double unpushed_variant_cost = -1;

  /// Session's stats version at insert time. A lookup under a newer version
  /// drops the entry (RefreshStats invalidation).
  uint64_t stats_version = 0;
};

/// Counters mirroring the rodin.plan_cache.* metrics, readable per cache
/// instance (the metrics registry is process-global; tests want per-cache
/// figures).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      // capacity evictions (LRU)
  uint64_t invalidations = 0;  // stats-version mismatches dropped at lookup
  uint64_t demotions = 0;      // entries erased for measured-cost drift
};

/// A bounded LRU cache of optimized plans keyed by a canonical fingerprint
/// (see PlanFingerprint below). Thread-safe: sessions may share one cache —
/// the intended sharing unit is "sessions over the same database", but the
/// fingerprint carries the physical-schema identity, so even sessions over
/// *different* databases can share an instance without ever exchanging a
/// plan (they simply occupy separate entries).
///
/// Correctness rules enforced by the caller (Session):
///   - entries are only inserted for complete optimizations (no
///     StageReport::truncated anywhere, no fault injector active);
///   - a lookup passes the session's current stats version; entries written
///     under an older version are invalidated (dropped), never served;
///   - cached plans still run under the caller's QueryContext — the cache
///     short-circuits *planning*, never execution-time budgets.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit PlanCache(size_t capacity = kDefaultCapacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Looks up `key` under `stats_version`. On a hit, fills `*out` with a
  /// deep copy (cloned plan) and returns true. An entry recorded under a
  /// different stats version is erased (counted as an invalidation) and the
  /// lookup reports a miss.
  bool Lookup(const std::string& key, uint64_t stats_version,
              PlanCacheEntry* out);

  /// Inserts (or replaces) the entry for `key`, evicting the least recently
  /// used entry when over capacity. A capacity of 0 disables insertion.
  void Insert(const std::string& key, PlanCacheEntry entry);

  /// Drops the entry for `key` if present (a feedback drift demotion: the
  /// plan's measured cost strayed too far from its estimate, so the next
  /// acquisition re-optimizes — see cost/feedback.h). Counted as a demotion,
  /// not an invalidation. Returns whether an entry was erased.
  bool Erase(const std::string& key);

  /// Drops every entry (counted as invalidations).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;

 private:
  /// Deep copy helper (PTPtr is move-only; entries clone through this).
  static PlanCacheEntry CopyEntry(const PlanCacheEntry& e);

  mutable std::mutex mu_;
  size_t capacity_;
  PlanCacheStats stats_;
  /// MRU-first recency list; the map stores the payload plus its position.
  std::list<std::string> lru_;
  std::map<std::string, std::pair<PlanCacheEntry, std::list<std::string>::iterator>>
      entries_;
};

/// The canonical fingerprint of one (query, environment) pair — equal
/// fingerprints guarantee the optimizer would produce the identical plan:
///   - the normalized query-graph rendering (predicate nodes, predicates,
///     projections, answer name);
///   - the physical-schema identity (extent layout, fragmentation,
///     clustering, indexes, buffer capacity, per-extent page/instance
///     counts — see PhysicalIdentity);
///   - every CostParams field;
///   - the optimizer-relevant knobs: seed, search_threads, gen strategy,
///     fold_views, naive_fixpoint and all TransformOptions fields.
/// Lifecycle knobs (deadline / cancel / memory budget) and executor knobs
/// (batch_rows / exec_threads / legacy) are deliberately excluded: they
/// never change the chosen plan, only how (long) it runs.
///
/// `graph_digest` lets PreparedQuery amortize the graph rendering; pass
/// null to derive it from `graph`.
std::string PlanFingerprint(const QueryGraph& graph, const Database& db,
                            const CostParams& cost_params,
                            const OptimizerOptions& options,
                            const std::string* graph_digest = nullptr);

/// Assembles the fingerprint from precomputed components (Session caches
/// the physical identity per RefreshStats, PreparedQuery the graph digest).
/// PlanFingerprint is this plus the component derivations.
std::string ComposeFingerprint(const std::string& graph_digest,
                               const std::string& physical_identity,
                               const CostParams& cost_params,
                               const OptimizerOptions& options);

/// The query-graph component of the fingerprint (canonical rendering).
std::string GraphDigest(const QueryGraph& graph);

/// The physical-schema component of the fingerprint: a content summary of
/// the database's layout (schema extents, PhysicalConfig, per-extent pages/
/// instances). Two databases with the same summary present the same search
/// space and statistics inputs to the optimizer.
std::string PhysicalIdentity(const Database& db);

/// RODIN_PLAN_CACHE environment knob: unset / "1" / "on" = enabled (the
/// default), "0" / "off" = every session bypasses its plan cache. Read once
/// per process.
bool PlanCacheEnabledByEnv();

}  // namespace rodin

#endif  // RODIN_API_PLAN_CACHE_H_
