#include "api/query_options.h"

namespace rodin {

Status QueryOptions::Validate() const {
  if (search_threads.has_value() && *search_threads == 0) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "search_threads must be >= 1 when set (omit it to inherit the "
        "session default)");
  }
  if (exec_threads.has_value() && *exec_threads == 0) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "exec_threads must be >= 1 when set (omit it to inherit the "
        "executor default)");
  }
  if (batch_rows.has_value() && *batch_rows == 0) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "batch_rows must be >= 1 when set (omit it to inherit the "
        "executor default)");
  }
  if (feedback.drift_threshold != 0 && feedback.drift_threshold <= 1) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "feedback.drift_threshold must be > 1 when set (a plan always "
        "\"drifts\" 1x from itself; leave it 0 to inherit the default)");
  }
  if (feedback.ewma_alpha < 0 || feedback.ewma_alpha > 1) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "feedback.ewma_alpha must be in (0, 1] when set (leave it 0 to "
        "inherit the default)");
  }
  return Status::Ok();
}

ExecOptions QueryOptions::MakeExecOptions(const QueryContext* armed) const {
  ExecOptions exec;
  if (batch_rows.has_value()) exec.batch_rows = *batch_rows;
  if (exec_threads.has_value()) exec.exec_threads = *exec_threads;
  if (compiled_eval.has_value()) exec.compiled_eval = *compiled_eval;
  exec.hash_equijoin = hash_equijoin;
  exec.use_legacy = legacy_exec;
  exec.query = armed;
  return exec;
}

}  // namespace rodin
