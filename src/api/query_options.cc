#include "api/query_options.h"

namespace rodin {

Status QueryOptions::Validate() const {
  if (search_threads.has_value() && *search_threads == 0) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "search_threads must be >= 1 when set (omit it to inherit the "
        "session default)");
  }
  if (exec_threads.has_value() && *exec_threads == 0) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "exec_threads must be >= 1 when set (omit it to inherit the "
        "executor default)");
  }
  if (batch_rows.has_value() && *batch_rows == 0) {
    return Status::Error(
        Status::Code::kInvalidArgument,
        "batch_rows must be >= 1 when set (omit it to inherit the "
        "executor default)");
  }
  return Status::Ok();
}

ExecOptions QueryOptions::MakeExecOptions(const QueryContext* armed) const {
  ExecOptions exec;
  if (batch_rows.has_value()) exec.batch_rows = *batch_rows;
  if (exec_threads.has_value()) exec.exec_threads = *exec_threads;
  if (compiled_eval.has_value()) exec.compiled_eval = *compiled_eval;
  exec.hash_equijoin = hash_equijoin;
  exec.use_legacy = legacy_exec;
  exec.query = armed;
  return exec;
}

}  // namespace rodin
