#include "api/session.h"

#include "common/check.h"
#include "optimizer/baseline.h"
#include "plan/pt_printer.h"
#include "query/parser.h"

namespace rodin {

Session::Session(Database* db, OptimizerOptions options)
    : db_(db), options_(options) {
  RODIN_CHECK(db != nullptr && db->finalized(),
              "Session needs a finalized database");
  RefreshStats();
}

void Session::RefreshStats() {
  stats_ = std::make_unique<Stats>(Stats::Derive(*db_));
  cost_ = std::make_unique<CostModel>(db_, stats_.get());
}

OptimizeResult Session::Optimize(const QueryGraph& graph) {
  Optimizer optimizer(db_, stats_.get(), cost_.get(), options_);
  return optimizer.Optimize(graph);
}

QueryRun Session::Run(const QueryGraph& graph, bool cold) {
  QueryRun run;
  run.graph = graph;
  run.optimized = Optimize(graph);
  if (!run.optimized.ok()) {
    run.error = run.optimized.error;
    return run;
  }
  run.plan_text = PrintPT(*run.optimized.plan);
  Executor exec(db_);
  exec.ResetMeasurement(cold);
  run.answer = exec.Execute(*run.optimized.plan);
  run.measured_cost = exec.MeasuredCost();
  run.counters = exec.counters();
  run.ok = true;
  return run;
}

QueryRun Session::RunText(const std::string& text, bool cold) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok) {
    QueryRun run;
    run.error = parsed.error;
    return run;
  }
  return Run(parsed.graph, cold);
}

}  // namespace rodin
