#include "api/session.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/faults.h"
#include "common/string_util.h"
#include "exec/vm/compiler.h"
#include "plan/pt_printer.h"
#include "query/parser.h"

namespace rodin {

namespace {

ExplainNode BuildExplainNode(const PTNode& node,
                             const std::map<const PTNode*, OpStats>& stats) {
  ExplainNode out;
  out.label = PTNodeLabel(node);
  out.est_cost = node.est_cost;
  out.est_rows = node.est_rows;
  auto it = stats.find(&node);
  if (it != stats.end()) {
    out.executed = true;
    out.measured = it->second;
  }
  for (const auto& c : node.children) {
    out.children.push_back(BuildExplainNode(*c, stats));
  }
  return out;
}

void PrintExplainNode(const ExplainNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.label);
  if (node.est_cost >= 0) {
    out->append(StrFormat("   {est cost=%.1f rows=%.1f}", node.est_cost,
                          node.est_rows));
  }
  if (node.executed) {
    out->append(StrFormat(
        "   [measured rows=%llu pages=%llu time=%.0fus calls=%llu]",
        static_cast<unsigned long long>(node.measured.rows),
        static_cast<unsigned long long>(node.measured.pages),
        node.measured.micros,
        static_cast<unsigned long long>(node.measured.invocations)));
  }
  out->append("\n");
  for (const ExplainNode& c : node.children) {
    PrintExplainNode(c, depth + 1, out);
  }
}

}  // namespace

std::string ExplainResult::ToString() const {
  std::string out = "EXPLAIN\n";
  if (!ok()) {
    out += "status: " + status.ToString() + "\n";
    return out;
  }
  out += "stages:\n";
  for (const StageReport& s : stages) {
    // The truncated marker renders only when set, so untruncated reports
    // stay byte-identical to the pre-anytime format.
    out += StrFormat("  %-12s granularity=%-24s strategy=%-32s plans=%zu%s\n",
                     s.stage.c_str(), s.granularity.c_str(),
                     s.strategy.c_str(), s.plans_explored,
                     s.truncated ? "  [truncated: budget hit]" : "");
  }
  out += "decisions:\n";
  for (const std::string& line : Split(decisions.ToString(), '\n')) {
    if (!line.empty()) out += "  " + line + "\n";
  }
  if (pushed_variant_cost >= 0 && unpushed_variant_cost >= 0) {
    out += StrFormat("push decision: pushed=%.1f unpushed=%.1f -> %s\n",
                     pushed_variant_cost, unpushed_variant_cost,
                     chose_push ? "pushed" : "unpushed");
  }
  if (plan_cached) {
    out += "[plan: cached]\n";
  } else if (reoptimized_drift > 0) {
    out += StrFormat("[plan: re-optimized (drift %.1fx)]\n", reoptimized_drift);
  }
  out += "plan:\n";
  std::string tree;
  PrintExplainNode(plan, 1, &tree);
  out += tree;
  out += StrFormat("est_cost: %.1f\n", est_cost);
  if (measured_cost >= 0) {
    out += StrFormat("measured_cost: %.1f\n", measured_cost);
  }
  if (!vm_disassembly.empty()) {
    out += "bytecode (compiled eval):\n";
    for (const std::string& line : Split(vm_disassembly, '\n')) {
      if (!line.empty()) out += "  " + line + "\n";
    }
  }
  return out;
}

PreparedQuery::PreparedQuery(Session* session, Status status, QueryGraph graph)
    : session_(session), status_(std::move(status)), graph_(std::move(graph)) {
  if (status_.ok()) digest_ = GraphDigest(graph_);
}

QueryRun PreparedQuery::Run(const QueryOptions& options) {
  if (!status_.ok()) {
    QueryRun run;
    run.status = status_;
    return run;
  }
  return session_->RunImpl(graph_, options, nullptr, &digest_);
}

ExplainResult PreparedQuery::Explain(const QueryOptions& options) {
  if (!status_.ok()) {
    ExplainResult ex;
    ex.status = status_;
    return ex;
  }
  return session_->ExplainImpl(graph_, options, &digest_);
}

ResultCursor PreparedQuery::Query(const QueryOptions& options) {
  if (!status_.ok()) return ResultCursor(status_);
  return session_->QueryImpl(graph_, options, &digest_);
}

Session::Session(Database* db, OptimizerOptions options, CostParams cost_params,
                 std::shared_ptr<PlanCache> plan_cache,
                 std::shared_ptr<FeedbackRegistry> feedback)
    : db_(db),
      options_(options),
      cost_params_(cost_params),
      plan_cache_(std::move(plan_cache)),
      feedback_(std::move(feedback)) {
  RODIN_CHECK(db != nullptr && db->finalized(),
              "Session needs a finalized database");
  tm_ = TxnManager::For(db);
  if (plan_cache_ == nullptr) plan_cache_ = std::make_shared<PlanCache>();
  if (feedback_ == nullptr) feedback_ = std::make_shared<FeedbackRegistry>();
  TxnManager::ReadGuard guard(tm_);
  MaybeRefreshStats();
}

Session::EffectiveFeedback Session::ResolveFeedback(
    const QueryOptions& options) {
  EffectiveFeedback out;
  out.on = options.feedback.enabled.value_or(FeedbackEnvDefault());
  // Same rule as the plan cache: an enabled injector perturbs and retries
  // attempts, so neither side of the loop may run — corrections applied
  // mid-test would make a retried run's plan differ from the clean run it
  // must be bit-identical to, and harvesting is blocked anyway. Full
  // bypass, both apply and harvest.
  if (FaultInjector::Global().enabled()) out.on = false;
  if (options.feedback.drift_threshold > 0) {
    out.drift_threshold = options.feedback.drift_threshold;
  }
  if (options.feedback.ewma_alpha > 0) out.alpha = options.feedback.ewma_alpha;
  return out;
}

void Session::MaybeRefreshStats() {
  const uint64_t version = tm_->stats_version();
  if (stats_ != nullptr && version == stats_version_) return;
  stats_ = std::make_unique<Stats>(Stats::Derive(*db_));
  cost_ = std::make_unique<CostModel>(db_, stats_.get(), cost_params_);
  physical_identity_ = PhysicalIdentity(*db_);
  // Statistics moved, so plans chosen under the old ones must not be served
  // any more; entries fingerprinted at an older version drop at next lookup.
  stats_version_ = version;
}

void Session::RefreshStats() {
  tm_->BumpStatsVersion();
  TxnManager::ReadGuard guard(tm_);
  MaybeRefreshStats();
}

MutationResult Session::Apply(uint64_t txn_id, const MutationBatch& batch) {
  MutationResult staged;
  const Status st = tm_->Stage(txn_id, batch, &staged);
  if (!st.ok()) staged.status = st;
  return staged;
}

CommitResult Session::Mutate(const MutationBatch& batch,
                             MutationResult* staged) {
  uint64_t txn_id = 0;
  const Status begin = tm_->Begin(&txn_id);
  if (!begin.ok()) {
    CommitResult res;
    res.status = begin;
    return res;
  }
  MutationResult local;
  const Status stage = tm_->Stage(txn_id, batch, &local);
  if (!stage.ok()) {
    tm_->Rollback(txn_id);
    CommitResult res;
    res.status = stage;
    return res;
  }
  if (staged != nullptr) *staged = local;
  CommitResult res = tm_->Commit(txn_id);
  if (res.status.code == Status::Code::kConflict) {
    // One-shot callers have no handle to retry with; don't leave the write
    // slot wedged behind an abandoned transaction.
    tm_->Rollback(txn_id);
  }
  return res;
}

OptimizerOptions Session::EffectiveOptions(const QueryOptions& options) const {
  OptimizerOptions opt = options_;
  if (options.search_threads.has_value()) {
    opt.search_threads = *options.search_threads;
  }
  if (options.seed.has_value()) opt.seed = *options.seed;
  return opt;
}

OptimizeResult Session::Optimize(const QueryGraph& graph) {
  TxnManager::ReadGuard guard(tm_);
  MaybeRefreshStats();
  Optimizer optimizer(db_, stats_.get(), cost_.get(), options_);
  return optimizer.Optimize(graph);
}

bool Session::OptimizeThroughCache(const QueryGraph& graph,
                                   const OptimizerOptions& opt_options,
                                   const ObsSink& sink,
                                   const QueryOptions& options,
                                   const std::string* graph_digest,
                                   const FeedbackCorrections* corrections,
                                   OptimizeResult* out,
                                   DecisionLog* decisions,
                                   std::string* key_out,
                                   double* reoptimized_drift) {
  if (reoptimized_drift != nullptr) *reoptimized_drift = 0;
  // The injector makes any attempt (optimizer or executor) abortable and
  // retryable; a plan produced or reused under it could differ from the
  // clean-run plan in unverifiable ways. Bypass entirely: no lookups, no
  // inserts — under RODIN_FAULTS the hit rate is 0 by construction.
  const bool use_cache = PlanCacheEnabledByEnv() &&
                         !options.bypass_plan_cache &&
                         !FaultInjector::Global().enabled();
  // Budget-aware costing: an explicit per-query memory budget enters the
  // cost params (the spill penalty term) and with them the plan-cache
  // fingerprint, so budgeted and unbudgeted runs of one query never share
  // a cached plan. The spill-budget ledger override and RODIN_SPILL_BUDGET
  // deliberately do NOT enter: they are spill-forcing test plumbing, and
  // perturbing plan choice would break the bit-identity they exist to
  // exercise.
  CostParams effective_params = cost_params_;
  effective_params.memory_budget_pages = options.query.memory_budget_pages;
  std::string key;
  if (use_cache) {
    key = ComposeFingerprint(
        graph_digest != nullptr ? *graph_digest : GraphDigest(graph),
        physical_identity_, effective_params, opt_options);
    if (key_out != nullptr) *key_out = key;
    PlanCacheEntry entry;
    if (plan_cache_->Lookup(key, stats_version_, &entry)) {
      out->plan = std::move(entry.plan);
      out->status = Status::Ok();
      out->cost = entry.cost;
      out->plans_explored = entry.plans_explored;
      out->stages = entry.stages;
      out->pushed_sel = entry.pushed_sel;
      out->pushed_join = entry.pushed_join;
      out->pushed_proj = entry.pushed_proj;
      out->pushed_variant_cost = entry.pushed_variant_cost;
      out->unpushed_variant_cost = entry.unpushed_variant_cost;
      if (decisions != nullptr) *decisions = std::move(entry.decisions);
      return true;
    }
    // Miss. If the feedback loop demoted this fingerprint for cost drift,
    // this optimization is the re-optimization the demotion asked for —
    // consume the note so EXPLAIN can say why the pipeline ran again.
    if (reoptimized_drift != nullptr) {
      *reoptimized_drift = feedback_->TakeDemotionNote(key);
    }
  }

  // Feedback corrections scale the cost model's cardinality estimates
  // toward observed reality (see cost/feedback.h) without entering the
  // fingerprint: a corrected re-optimization overwrites the entry under the
  // same key rather than forking it. An empty snapshot costs nothing — the
  // model ignores a null/empty corrections pointer entirely, so plans are
  // bit-identical to feedback-off until the first harvest lands.
  std::optional<CostModel> corrected;
  const CostModel* cost = cost_.get();
  if (corrections != nullptr && !corrections->empty()) {
    corrected.emplace(db_, stats_.get(), effective_params, corrections);
    cost = &*corrected;
  } else if (effective_params.memory_budget_pages != 0) {
    corrected.emplace(db_, stats_.get(), effective_params, nullptr);
    cost = &*corrected;
  }
  Optimizer optimizer(db_, stats_.get(), cost, opt_options);
  *out = optimizer.Optimize(graph, sink);

  if (use_cache && out->ok()) {
    // Truncated stages mean the search stopped early under this run's
    // budget; a later run with a looser budget deserves the full search,
    // so incomplete plans are never cached.
    bool truncated = false;
    for (const StageReport& s : out->stages) truncated |= s.truncated;
    if (!truncated) {
      PlanCacheEntry entry;
      entry.plan = out->plan->Clone();
      entry.cost = out->cost;
      entry.plans_explored = out->plans_explored;
      entry.stages = out->stages;
      if (decisions != nullptr) entry.decisions = *decisions;
      entry.pushed_sel = out->pushed_sel;
      entry.pushed_join = out->pushed_join;
      entry.pushed_proj = out->pushed_proj;
      entry.pushed_variant_cost = out->pushed_variant_cost;
      entry.unpushed_variant_cost = out->unpushed_variant_cost;
      entry.stats_version = stats_version_;
      plan_cache_->Insert(key, std::move(entry));
    }
  }
  return false;
}

QueryRun Session::RunImpl(const QueryGraph& graph, const QueryOptions& options,
                          Executor* exec, const std::string* graph_digest) {
  QueryRun run;
  run.graph = graph;
  run.status = options.Validate();
  if (!run.status.ok()) return run;

  // The whole run holds the TxnManager read gate: a commit drains readers
  // before mutating anything, so this run sees either the full pre- or full
  // post-commit state — never a torn one. The guard is re-entrant, so
  // Explain's delegation here nests fine.
  TxnManager::ReadGuard read_gate(tm_);
  MaybeRefreshStats();

  // The retry loop below snapshots and restores the buffer pool's resident
  // set between attempts. A live streaming cursor defers its page charges
  // to finalize time; interleaving that replay with a restore would corrupt
  // the pool's accounting, so the retryable paths refuse to start until the
  // session's outstanding cursors are drained (or destroyed).
  // Shared-db (multi-tenant) sessions never consult the fault injector: the
  // retry path's pool snapshot/restore cannot be made safe while concurrent
  // sessions charge the same pool.
  const bool faults_on = !shared_db_ && FaultInjector::Global().enabled();
  if (faults_on && live_streams() > 0) {
    const uint64_t live = live_streams();
    run.status = Status::Error(
        Status::Code::kInvalidArgument,
        StrFormat("cannot Run/Explain with fault injection while %llu "
                  "streaming cursor(s) from this session are still live; "
                  "drain or destroy them first",
                  static_cast<unsigned long long>(live)));
    // Structured contract (docs/ROBUSTNESS.md): the refusal carries the
    // live-cursor count, so pool managers branch on detail, not on text.
    run.status.detail = live;
    return run;
  }

  // The run's armed lifecycle context: one copy of the caller's budget,
  // deadline clock started here, referenced by pointer from every stage.
  // The cancel token inside still shares the caller's flag.
  QueryContext qctx = options.query;
  qctx.ArmDeadline();

  obs::Tracer tracer;
  ObsSink sink;
  sink.decisions = &run.decisions;
  if (options.collect_trace) sink.tracer = &tracer;

  OptimizerOptions opt_options = EffectiveOptions(options);
  opt_options.query = &qctx;
  // Run/Explain are the retryable, non-streaming paths: they are the only
  // ones that consult the fault injector (never in shared-db mode).
  opt_options.inject_faults = !shared_db_;

  const EffectiveFeedback fb = ResolveFeedback(options);
  FeedbackCorrections corrections;
  if (fb.on) {
    uint64_t span = 0;
    if (options.collect_trace) span = tracer.Begin("feedback.apply", "cost");
    corrections = feedback_->Snapshot(stats_version_);
    if (options.collect_trace) {
      tracer.AddArg(span, "corrections",
                    static_cast<double>(corrections.size()));
      tracer.End(span);
    }
  }
  std::string cache_key;
  run.plan_cached = OptimizeThroughCache(
      graph, opt_options, sink, options, graph_digest,
      fb.on ? &corrections : nullptr, &run.optimized, &run.decisions,
      &cache_key, &run.reoptimized_drift);
  if (!run.optimized.ok()) {
    run.status = run.optimized.status;
    if (options.collect_trace) run.trace = tracer.Finish();
    return run;
  }
  run.plan_text = PrintPT(*run.optimized.plan);

  if (!options.explain_only) {
    Executor local(db_, cost_params_);
    Executor& e = exec != nullptr ? *exec : local;
    // Harvesting needs per-operator figures; the collection itself never
    // touches ExecCounters, so counters stay bit-identical feedback-off.
    if (fb.on) e.CollectOpStats(true);
    if (options.collect_trace) e.set_tracer(&tracer);
    ExecOptions exec_options = options.MakeExecOptions(&qctx);
    exec_options.inject_faults = !shared_db_;

    // Retry-with-backoff for transient (kFault) aborts. Only the execution
    // phase re-runs — the optimizer already committed its plan and its
    // metrics. Between attempts every piece of measurement state is
    // restored (counters, fix cache, and for warm runs the resident set),
    // so the surviving attempt's answer, counters and measured cost are
    // bit-identical to a run that never faulted.
    //
    // Injection stops after kFaultedAttemptLimit faulted attempts (a
    // circuit breaker): per-batch fault draws make a long query's per-
    // attempt fault probability approach 1, so without the breaker no
    // number of retries would converge. A clean attempt is unperturbed by
    // the draws, so the breaker never changes a surviving run's results.
    std::vector<PageId> resident;
    if (faults_on && !options.cold) {
      resident = db_->buffer_pool().SnapshotResident();
    }
    constexpr int kMaxAttempts = 16;
    constexpr int kFaultedAttemptLimit = 8;
    Status exec_status;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      if (attempt > 0) {
        e.ClearFixCache();
        if (!options.cold) db_->buffer_pool().RestoreResident(resident);
        std::this_thread::sleep_for(
            std::chrono::microseconds(1u << std::min(attempt, 10)));
      }
      exec_options.inject_faults = !shared_db_ && attempt < kFaultedAttemptLimit;
      if (shared_db_) {
        e.ResetMeasurementShared();
      } else {
        e.ResetMeasurement(options.cold);
      }
      exec_status =
          e.ExecuteInto(*run.optimized.plan, exec_options, &run.answer);
      if (!exec_status.retryable()) break;
    }
    if (!exec_status.ok()) run.status = exec_status;
    run.measured_cost = e.MeasuredCost();
    run.counters = e.counters();
    e.set_tracer(nullptr);
    db_->buffer_pool().PublishMetrics();

    // Feedback harvest: only complete, clean runs teach the registry.
    // Anything retried under the injector, truncated by an anytime budget,
    // or failed outright contributes zero observations — a perturbed run's
    // measurements describe the perturbation, not the data.
    if (fb.on && run.status.ok() && !FaultInjector::Global().enabled()) {
      bool truncated = false;
      for (const StageReport& s : run.optimized.stages) {
        truncated |= s.truncated;
      }
      if (!truncated) {
        uint64_t span = 0;
        if (options.collect_trace) {
          span = tracer.Begin("feedback.harvest", "cost");
        }
        const size_t harvested = feedback_->Harvest(
            FlattenPlanStats(*run.optimized.plan, e.op_stats()),
            stats_version_, fb.alpha);
        if (options.collect_trace) {
          tracer.AddArg(span, "observations", static_cast<double>(harvested));
          tracer.End(span);
        }
        // Drift demotion: a *cached* plan whose measured cost strayed
        // >= threshold from its estimate is evicted so the next acquisition
        // re-optimizes under current corrections. Freshly optimized plans
        // are never demoted — they already used the latest corrections, and
        // demoting them would re-run the pipeline forever.
        if (run.plan_cached && !cache_key.empty() && run.measured_cost > 0 &&
            run.optimized.cost > 0) {
          const double ratio =
              std::max(run.measured_cost / run.optimized.cost,
                       run.optimized.cost / run.measured_cost);
          if (ratio >= fb.drift_threshold && plan_cache_->Erase(cache_key)) {
            feedback_->NoteDemotion(cache_key, ratio);
          }
        }
      }
    }
  }
  if (options.collect_trace) run.trace = tracer.Finish();
  return run;
}

QueryRun Session::Run(const QueryGraph& graph, const QueryOptions& options) {
  return RunImpl(graph, options, nullptr, nullptr);
}

QueryRun Session::Run(const std::string& text, const QueryOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) {
    QueryRun run;
    run.status = parsed.status;
    return run;
  }
  return RunImpl(parsed.graph, options, nullptr, nullptr);
}

namespace {

/// Everything a live cursor needs to keep alive: the executor doing the
/// work plus the optimizer artifacts the cursor's accessors reference.
struct QueryState {
  QueryState(Database* db, CostParams params) : exec(db, params) {}
  Executor exec;
  OptimizeResult optimized;
  DecisionLog decisions;
  /// The cursor's armed lifecycle context. Lives exactly as long as the
  /// cursor (keepalive), so the engine's per-batch polls stay valid however
  /// long the caller holds the cursor — and a copy of the caller's cancel
  /// token means RequestCancel() from any thread stops the next Next().
  QueryContext qctx;
};

}  // namespace

ResultCursor Session::QueryImpl(const QueryGraph& graph,
                                const QueryOptions& options,
                                const std::string* graph_digest) {
  Status vstatus = options.Validate();
  if (!vstatus.ok()) return ResultCursor(vstatus);
  // Optimization and stream setup run under the read gate; the cursor is
  // registered with the TxnManager *before* the gate releases, so a commit
  // can never slip between setup and registration — it refuses (kConflict)
  // while the cursor lives, which is what keeps the cursor's raw extent
  // coordinates valid across user-paced pulls (docs/ROBUSTNESS.md).
  TxnManager::ReadGuard read_gate(tm_);
  MaybeRefreshStats();
  if (options.collect_trace) {
    // Silently dropping the flag (the old behaviour) made callers believe
    // they had a trace when cursor.trace() never existed.
    return ResultCursor(Status::Error(
        Status::Code::kInvalidArgument,
        "collect_trace is not supported on the streaming Query path; use "
        "Session::Run or Session::Explain to collect a trace"));
  }

  auto state = std::make_shared<QueryState>(db_, cost_params_);
  state->qctx = options.query;
  state->qctx.ArmDeadline();

  ObsSink sink;
  sink.decisions = &state->decisions;
  OptimizerOptions opt_options = EffectiveOptions(options);
  opt_options.query = &state->qctx;
  OptimizeResult& optimized = state->optimized;
  const EffectiveFeedback fb = ResolveFeedback(options);
  FeedbackCorrections corrections;
  if (fb.on) corrections = feedback_->Snapshot(stats_version_);
  std::string cache_key;
  const bool cached = OptimizeThroughCache(
      graph, opt_options, sink, options, graph_digest,
      fb.on ? &corrections : nullptr, &optimized, &state->decisions,
      &cache_key, nullptr);
  if (!optimized.ok()) {
    return ResultCursor(optimized.status);
  }

  if (fb.on) state->exec.CollectOpStats(true);
  if (shared_db_) {
    state->exec.ResetMeasurementShared();
  } else {
    state->exec.ResetMeasurement(options.cold);
  }
  // Streaming runs reference the state-owned context; fault injection stays
  // off (a half-consumed stream cannot be transparently retried).
  ResultCursor cursor = state->exec.ExecuteStream(
      *state->optimized.plan, options.MakeExecOptions(&state->qctx));
  cursor.set_plan_text(PrintPT(*state->optimized.plan));
  Database* db = db_;
  // The finalize hook fires exactly once per cursor (drained, failed or
  // destroyed), so the live-stream count is balanced even for abandoned
  // cursors. The shared counter keeps the hook safe past session teardown.
  live_streams_->fetch_add(1);
  tm_->BeginCursor();
  std::shared_ptr<std::atomic<uint64_t>> live = live_streams_;
  TxnManager* tm = tm_;  // outlives the cursor (it lives with the database)
  // Feedback harvest context, resolved now: shared_ptrs keep the registry
  // and cache alive past session teardown (a cursor may outlive its
  // session), and the keepalive state carries the plan + op stats.
  std::shared_ptr<FeedbackRegistry> freg = fb.on ? feedback_ : nullptr;
  std::shared_ptr<PlanCache> cache = plan_cache_;
  bool truncated = false;
  for (const StageReport& s : optimized.stages) truncated |= s.truncated;
  const uint64_t harvest_version = stats_version_;
  const double alpha = fb.alpha;
  const double drift_threshold = fb.drift_threshold;
  const double est_cost = optimized.cost;
  std::shared_ptr<QueryState> keep = state;
  cursor.set_on_finish([db, live, tm, freg, cache, truncated, harvest_version,
                        alpha, drift_threshold, est_cost, cached, cache_key,
                        keep](const Status& st, bool drained) {
    db->buffer_pool().PublishMetrics();
    live->fetch_sub(1);
    tm->EndCursor();
    // Only a stream pulled to genuine exhaustion has complete measurements;
    // cancelled, aborted or abandoned cursors teach the registry nothing.
    if (freg == nullptr || !drained || !st.ok() || truncated ||
        FaultInjector::Global().enabled()) {
      return;
    }
    freg->Harvest(FlattenPlanStats(*keep->optimized.plan,
                                   keep->exec.op_stats()),
                  harvest_version, alpha);
    if (cached && !cache_key.empty() && est_cost > 0) {
      const double measured = keep->exec.MeasuredCost();
      if (measured > 0) {
        const double ratio =
            std::max(measured / est_cost, est_cost / measured);
        if (ratio >= drift_threshold && cache->Erase(cache_key)) {
          freg->NoteDemotion(cache_key, ratio);
        }
      }
    }
  });
  cursor.set_keepalive(std::move(state));
  return cursor;
}

ResultCursor Session::Query(const QueryGraph& graph,
                            const QueryOptions& options) {
  return QueryImpl(graph, options, nullptr);
}

ResultCursor Session::Query(const std::string& text,
                            const QueryOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) return ResultCursor(parsed.status);
  return QueryImpl(parsed.graph, options, nullptr);
}

PreparedQuery Session::Prepare(const std::string& text) {
  ParseResult parsed = ParseQuery(text, db_->schema());
  return PreparedQuery(this, parsed.status, std::move(parsed.graph));
}

PreparedQuery Session::Prepare(const QueryGraph& graph) {
  return PreparedQuery(this, Status::Ok(), graph);
}

ExplainResult Session::ExplainImpl(const QueryGraph& graph,
                                   const QueryOptions& options,
                                   const std::string* graph_digest) {
  ExplainResult ex;
  Executor exec(db_, cost_params_);
  exec.CollectOpStats(true);
  QueryRun run = RunImpl(graph, options, &exec, graph_digest);
  ex.status = run.status;
  ex.trace = run.trace;
  if (!run.ok()) return ex;

  ex.stages = run.optimized.stages;
  ex.decisions = std::move(run.decisions);
  ex.plan_text = run.plan_text;
  ex.est_cost = run.optimized.cost;
  ex.measured_cost = run.measured_cost;
  ex.counters = run.counters;
  ex.pushed_variant_cost = run.optimized.pushed_variant_cost;
  ex.unpushed_variant_cost = run.optimized.unpushed_variant_cost;
  ex.chose_push = run.optimized.pushed_sel || run.optimized.pushed_join ||
                  run.optimized.pushed_proj;
  ex.plan_cached = run.plan_cached;
  ex.reoptimized_drift = run.reoptimized_drift;
  ex.plan = BuildExplainNode(*run.optimized.plan, exec.op_stats());
  ex.node_stats_ = FlattenPlanStats(*run.optimized.plan, exec.op_stats());
  // Disassemble what the compiled engine actually ran: the same knob
  // resolution as ExecOptionsFrom (explicit override, else executor/env
  // default), except under legacy_exec, which always interprets.
  const bool compiled =
      !options.legacy_exec &&
      options.compiled_eval.value_or(CompiledEvalEnvDefault());
  if (compiled) ex.vm_disassembly = vm::DisassemblePlan(*run.optimized.plan);
  return ex;
}

ExplainResult Session::Explain(const QueryGraph& graph,
                               const QueryOptions& options) {
  return ExplainImpl(graph, options, nullptr);
}

ExplainResult Session::Explain(const std::string& text,
                               const QueryOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) {
    ExplainResult ex;
    ex.status = parsed.status;
    return ex;
  }
  return ExplainImpl(parsed.graph, options, nullptr);
}

}  // namespace rodin
