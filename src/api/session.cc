#include "api/session.h"

#include "common/check.h"
#include "common/string_util.h"
#include "plan/pt_printer.h"
#include "query/parser.h"

namespace rodin {

namespace {

ExplainNode BuildExplainNode(const PTNode& node,
                             const std::map<const PTNode*, OpStats>& stats) {
  ExplainNode out;
  out.label = PTNodeLabel(node);
  out.est_cost = node.est_cost;
  out.est_rows = node.est_rows;
  auto it = stats.find(&node);
  if (it != stats.end()) {
    out.executed = true;
    out.measured = it->second;
  }
  for (const auto& c : node.children) {
    out.children.push_back(BuildExplainNode(*c, stats));
  }
  return out;
}

void PrintExplainNode(const ExplainNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.label);
  if (node.est_cost >= 0) {
    out->append(StrFormat("   {est cost=%.1f rows=%.1f}", node.est_cost,
                          node.est_rows));
  }
  if (node.executed) {
    out->append(StrFormat(
        "   [measured rows=%llu pages=%llu time=%.0fus calls=%llu]",
        static_cast<unsigned long long>(node.measured.rows),
        static_cast<unsigned long long>(node.measured.pages),
        node.measured.micros,
        static_cast<unsigned long long>(node.measured.invocations)));
  }
  out->append("\n");
  for (const ExplainNode& c : node.children) {
    PrintExplainNode(c, depth + 1, out);
  }
}

/// Maps the session-level run knobs onto the executor's options. Zeroes
/// mean "keep the executor default".
ExecOptions ExecOptionsFrom(const RunOptions& options) {
  ExecOptions exec;
  if (options.batch_rows > 0) exec.batch_rows = options.batch_rows;
  if (options.exec_threads > 0) exec.exec_threads = options.exec_threads;
  exec.use_legacy = options.legacy_exec;
  return exec;
}

}  // namespace

std::string ExplainResult::ToString() const {
  std::string out = "EXPLAIN\n";
  if (!ok()) {
    out += "status: " + status.ToString() + "\n";
    return out;
  }
  out += "stages:\n";
  for (const StageReport& s : stages) {
    out += StrFormat("  %-12s granularity=%-24s strategy=%-32s plans=%zu\n",
                     s.stage.c_str(), s.granularity.c_str(),
                     s.strategy.c_str(), s.plans_explored);
  }
  out += "decisions:\n";
  for (const std::string& line : Split(decisions.ToString(), '\n')) {
    if (!line.empty()) out += "  " + line + "\n";
  }
  if (pushed_variant_cost >= 0 && unpushed_variant_cost >= 0) {
    out += StrFormat("push decision: pushed=%.1f unpushed=%.1f -> %s\n",
                     pushed_variant_cost, unpushed_variant_cost,
                     chose_push ? "pushed" : "unpushed");
  }
  out += "plan:\n";
  std::string tree;
  PrintExplainNode(plan, 1, &tree);
  out += tree;
  out += StrFormat("est_cost: %.1f\n", est_cost);
  if (measured_cost >= 0) {
    out += StrFormat("measured_cost: %.1f\n", measured_cost);
  }
  return out;
}

Session::Session(Database* db, OptimizerOptions options, CostParams cost_params)
    : db_(db), options_(options), cost_params_(cost_params) {
  RODIN_CHECK(db != nullptr && db->finalized(),
              "Session needs a finalized database");
  RefreshStats();
}

void Session::RefreshStats() {
  stats_ = std::make_unique<Stats>(Stats::Derive(*db_));
  cost_ = std::make_unique<CostModel>(db_, stats_.get(), cost_params_);
}

OptimizerOptions Session::EffectiveOptions(const RunOptions& options) const {
  OptimizerOptions opt = options_;
  if (options.search_threads > 0) opt.search_threads = options.search_threads;
  if (options.seed != 0) opt.seed = options.seed;
  return opt;
}

OptimizeResult Session::Optimize(const QueryGraph& graph) {
  Optimizer optimizer(db_, stats_.get(), cost_.get(), options_);
  return optimizer.Optimize(graph);
}

QueryRun Session::RunImpl(const QueryGraph& graph, const RunOptions& options,
                          Executor* exec) {
  QueryRun run;
  run.graph = graph;

  obs::Tracer tracer;
  ObsSink sink;
  sink.decisions = &run.decisions;
  if (options.collect_trace) sink.tracer = &tracer;

  Optimizer optimizer(db_, stats_.get(), cost_.get(),
                      EffectiveOptions(options));
  run.optimized = optimizer.Optimize(graph, sink);
  if (!run.optimized.ok()) {
    run.status = Status::Error(Status::Code::kOptimizeError,
                               run.optimized.error);
    if (options.collect_trace) run.trace = tracer.Finish();
    return run;
  }
  run.plan_text = PrintPT(*run.optimized.plan);

  if (!options.explain_only) {
    Executor local(db_, cost_params_);
    Executor& e = exec != nullptr ? *exec : local;
    if (options.collect_trace) e.set_tracer(&tracer);
    e.ResetMeasurement(options.cold);
    run.answer = e.Execute(*run.optimized.plan, ExecOptionsFrom(options));
    run.measured_cost = e.MeasuredCost();
    run.counters = e.counters();
    e.set_tracer(nullptr);
    db_->buffer_pool().PublishMetrics();
  }
  if (options.collect_trace) run.trace = tracer.Finish();
  return run;
}

QueryRun Session::Run(const QueryGraph& graph, const RunOptions& options) {
  return RunImpl(graph, options, nullptr);
}

QueryRun Session::Run(const std::string& text, const RunOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) {
    QueryRun run;
    run.status = parsed.status;
    return run;
  }
  return RunImpl(parsed.graph, options, nullptr);
}

namespace {

/// Everything a live cursor needs to keep alive: the executor doing the
/// work plus the optimizer artifacts the cursor's accessors reference.
struct QueryState {
  QueryState(Database* db, CostParams params) : exec(db, params) {}
  Executor exec;
  OptimizeResult optimized;
  DecisionLog decisions;
};

}  // namespace

ResultCursor Session::Query(const QueryGraph& graph,
                            const RunOptions& options) {
  auto state = std::make_shared<QueryState>(db_, cost_params_);

  ObsSink sink;
  sink.decisions = &state->decisions;
  Optimizer optimizer(db_, stats_.get(), cost_.get(),
                      EffectiveOptions(options));
  state->optimized = optimizer.Optimize(graph, sink);
  if (!state->optimized.ok()) {
    return ResultCursor(Status::Error(Status::Code::kOptimizeError,
                                      state->optimized.error));
  }

  state->exec.ResetMeasurement(options.cold);
  ResultCursor cursor =
      state->exec.ExecuteStream(*state->optimized.plan, ExecOptionsFrom(options));
  cursor.set_plan_text(PrintPT(*state->optimized.plan));
  Database* db = db_;
  cursor.set_on_finish([db] { db->buffer_pool().PublishMetrics(); });
  cursor.set_keepalive(std::move(state));
  return cursor;
}

ResultCursor Session::Query(const std::string& text,
                            const RunOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) return ResultCursor(parsed.status);
  return Query(parsed.graph, options);
}

ExplainResult Session::Explain(const QueryGraph& graph,
                               const RunOptions& options) {
  ExplainResult ex;
  Executor exec(db_, cost_params_);
  exec.CollectOpStats(true);
  QueryRun run = RunImpl(graph, options, &exec);
  ex.status = run.status;
  ex.trace = run.trace;
  if (!run.ok()) return ex;

  ex.stages = run.optimized.stages;
  ex.decisions = std::move(run.decisions);
  ex.plan_text = run.plan_text;
  ex.est_cost = run.optimized.cost;
  ex.measured_cost = run.measured_cost;
  ex.counters = run.counters;
  ex.pushed_variant_cost = run.optimized.pushed_variant_cost;
  ex.unpushed_variant_cost = run.optimized.unpushed_variant_cost;
  ex.chose_push = run.optimized.pushed_sel || run.optimized.pushed_join ||
                  run.optimized.pushed_proj;
  ex.plan = BuildExplainNode(*run.optimized.plan, exec.op_stats());
  return ex;
}

ExplainResult Session::Explain(const std::string& text,
                               const RunOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) {
    ExplainResult ex;
    ex.status = parsed.status;
    return ex;
  }
  return Explain(parsed.graph, options);
}

}  // namespace rodin
