#include "api/session.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/faults.h"
#include "common/string_util.h"
#include "plan/pt_printer.h"
#include "query/parser.h"

namespace rodin {

namespace {

ExplainNode BuildExplainNode(const PTNode& node,
                             const std::map<const PTNode*, OpStats>& stats) {
  ExplainNode out;
  out.label = PTNodeLabel(node);
  out.est_cost = node.est_cost;
  out.est_rows = node.est_rows;
  auto it = stats.find(&node);
  if (it != stats.end()) {
    out.executed = true;
    out.measured = it->second;
  }
  for (const auto& c : node.children) {
    out.children.push_back(BuildExplainNode(*c, stats));
  }
  return out;
}

void PrintExplainNode(const ExplainNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.label);
  if (node.est_cost >= 0) {
    out->append(StrFormat("   {est cost=%.1f rows=%.1f}", node.est_cost,
                          node.est_rows));
  }
  if (node.executed) {
    out->append(StrFormat(
        "   [measured rows=%llu pages=%llu time=%.0fus calls=%llu]",
        static_cast<unsigned long long>(node.measured.rows),
        static_cast<unsigned long long>(node.measured.pages),
        node.measured.micros,
        static_cast<unsigned long long>(node.measured.invocations)));
  }
  out->append("\n");
  for (const ExplainNode& c : node.children) {
    PrintExplainNode(c, depth + 1, out);
  }
}

/// Maps the session-level run knobs onto the executor's options. Zeroes
/// mean "keep the executor default". `query` is the run's *armed* context
/// (owned by the caller for the duration of the execution), referenced —
/// not copied — per the single-source-of-truth rule.
ExecOptions ExecOptionsFrom(const RunOptions& options,
                            const QueryContext* query) {
  ExecOptions exec;
  if (options.batch_rows > 0) exec.batch_rows = options.batch_rows;
  if (options.exec_threads > 0) exec.exec_threads = options.exec_threads;
  exec.use_legacy = options.legacy_exec;
  exec.query = query;
  return exec;
}

}  // namespace

std::string ExplainResult::ToString() const {
  std::string out = "EXPLAIN\n";
  if (!ok()) {
    out += "status: " + status.ToString() + "\n";
    return out;
  }
  out += "stages:\n";
  for (const StageReport& s : stages) {
    // The truncated marker renders only when set, so untruncated reports
    // stay byte-identical to the pre-anytime format.
    out += StrFormat("  %-12s granularity=%-24s strategy=%-32s plans=%zu%s\n",
                     s.stage.c_str(), s.granularity.c_str(),
                     s.strategy.c_str(), s.plans_explored,
                     s.truncated ? "  [truncated: budget hit]" : "");
  }
  out += "decisions:\n";
  for (const std::string& line : Split(decisions.ToString(), '\n')) {
    if (!line.empty()) out += "  " + line + "\n";
  }
  if (pushed_variant_cost >= 0 && unpushed_variant_cost >= 0) {
    out += StrFormat("push decision: pushed=%.1f unpushed=%.1f -> %s\n",
                     pushed_variant_cost, unpushed_variant_cost,
                     chose_push ? "pushed" : "unpushed");
  }
  out += "plan:\n";
  std::string tree;
  PrintExplainNode(plan, 1, &tree);
  out += tree;
  out += StrFormat("est_cost: %.1f\n", est_cost);
  if (measured_cost >= 0) {
    out += StrFormat("measured_cost: %.1f\n", measured_cost);
  }
  return out;
}

Session::Session(Database* db, OptimizerOptions options, CostParams cost_params)
    : db_(db), options_(options), cost_params_(cost_params) {
  RODIN_CHECK(db != nullptr && db->finalized(),
              "Session needs a finalized database");
  RefreshStats();
}

void Session::RefreshStats() {
  stats_ = std::make_unique<Stats>(Stats::Derive(*db_));
  cost_ = std::make_unique<CostModel>(db_, stats_.get(), cost_params_);
}

OptimizerOptions Session::EffectiveOptions(const RunOptions& options) const {
  OptimizerOptions opt = options_;
  if (options.search_threads > 0) opt.search_threads = options.search_threads;
  if (options.seed != 0) opt.seed = options.seed;
  return opt;
}

OptimizeResult Session::Optimize(const QueryGraph& graph) {
  Optimizer optimizer(db_, stats_.get(), cost_.get(), options_);
  return optimizer.Optimize(graph);
}

QueryRun Session::RunImpl(const QueryGraph& graph, const RunOptions& options,
                          Executor* exec) {
  QueryRun run;
  run.graph = graph;

  // The run's armed lifecycle context: one copy of the caller's budget,
  // deadline clock started here, referenced by pointer from every stage.
  // The cancel token inside still shares the caller's flag.
  QueryContext qctx = options.query;
  qctx.ArmDeadline();

  obs::Tracer tracer;
  ObsSink sink;
  sink.decisions = &run.decisions;
  if (options.collect_trace) sink.tracer = &tracer;

  OptimizerOptions opt_options = EffectiveOptions(options);
  opt_options.query = &qctx;
  // Run/Explain are the retryable, non-streaming paths: they are the only
  // ones that consult the fault injector.
  opt_options.inject_faults = true;
  Optimizer optimizer(db_, stats_.get(), cost_.get(), opt_options);
  run.optimized = optimizer.Optimize(graph, sink);
  if (!run.optimized.ok()) {
    run.status = run.optimized.status;
    if (options.collect_trace) run.trace = tracer.Finish();
    return run;
  }
  run.plan_text = PrintPT(*run.optimized.plan);

  if (!options.explain_only) {
    Executor local(db_, cost_params_);
    Executor& e = exec != nullptr ? *exec : local;
    if (options.collect_trace) e.set_tracer(&tracer);
    ExecOptions exec_options = ExecOptionsFrom(options, &qctx);
    exec_options.inject_faults = true;

    // Retry-with-backoff for transient (kFault) aborts. Only the execution
    // phase re-runs — the optimizer already committed its plan and its
    // metrics. Between attempts every piece of measurement state is
    // restored (counters, fix cache, and for warm runs the resident set),
    // so the surviving attempt's answer, counters and measured cost are
    // bit-identical to a run that never faulted.
    //
    // Injection stops after kFaultedAttemptLimit faulted attempts (a
    // circuit breaker): per-batch fault draws make a long query's per-
    // attempt fault probability approach 1, so without the breaker no
    // number of retries would converge. A clean attempt is unperturbed by
    // the draws, so the breaker never changes a surviving run's results.
    const bool faults_on = FaultInjector::Global().enabled();
    std::vector<PageId> resident;
    if (faults_on && !options.cold) {
      resident = db_->buffer_pool().SnapshotResident();
    }
    constexpr int kMaxAttempts = 16;
    constexpr int kFaultedAttemptLimit = 8;
    Status exec_status;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      if (attempt > 0) {
        e.ClearFixCache();
        if (!options.cold) db_->buffer_pool().RestoreResident(resident);
        std::this_thread::sleep_for(
            std::chrono::microseconds(1u << std::min(attempt, 10)));
      }
      exec_options.inject_faults = attempt < kFaultedAttemptLimit;
      e.ResetMeasurement(options.cold);
      exec_status =
          e.ExecuteInto(*run.optimized.plan, exec_options, &run.answer);
      if (!exec_status.retryable()) break;
    }
    if (!exec_status.ok()) run.status = exec_status;
    run.measured_cost = e.MeasuredCost();
    run.counters = e.counters();
    e.set_tracer(nullptr);
    db_->buffer_pool().PublishMetrics();
  }
  if (options.collect_trace) run.trace = tracer.Finish();
  return run;
}

QueryRun Session::Run(const QueryGraph& graph, const RunOptions& options) {
  return RunImpl(graph, options, nullptr);
}

QueryRun Session::Run(const std::string& text, const RunOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) {
    QueryRun run;
    run.status = parsed.status;
    return run;
  }
  return RunImpl(parsed.graph, options, nullptr);
}

namespace {

/// Everything a live cursor needs to keep alive: the executor doing the
/// work plus the optimizer artifacts the cursor's accessors reference.
struct QueryState {
  QueryState(Database* db, CostParams params) : exec(db, params) {}
  Executor exec;
  OptimizeResult optimized;
  DecisionLog decisions;
  /// The cursor's armed lifecycle context. Lives exactly as long as the
  /// cursor (keepalive), so the engine's per-batch polls stay valid however
  /// long the caller holds the cursor — and a copy of the caller's cancel
  /// token means RequestCancel() from any thread stops the next Next().
  QueryContext qctx;
};

}  // namespace

ResultCursor Session::Query(const QueryGraph& graph,
                            const RunOptions& options) {
  auto state = std::make_shared<QueryState>(db_, cost_params_);
  state->qctx = options.query;
  state->qctx.ArmDeadline();

  ObsSink sink;
  sink.decisions = &state->decisions;
  OptimizerOptions opt_options = EffectiveOptions(options);
  opt_options.query = &state->qctx;
  Optimizer optimizer(db_, stats_.get(), cost_.get(), opt_options);
  state->optimized = optimizer.Optimize(graph, sink);
  if (!state->optimized.ok()) {
    return ResultCursor(state->optimized.status);
  }

  state->exec.ResetMeasurement(options.cold);
  // Streaming runs reference the state-owned context; fault injection stays
  // off (a half-consumed stream cannot be transparently retried).
  ResultCursor cursor = state->exec.ExecuteStream(
      *state->optimized.plan, ExecOptionsFrom(options, &state->qctx));
  cursor.set_plan_text(PrintPT(*state->optimized.plan));
  Database* db = db_;
  cursor.set_on_finish([db] { db->buffer_pool().PublishMetrics(); });
  cursor.set_keepalive(std::move(state));
  return cursor;
}

ResultCursor Session::Query(const std::string& text,
                            const RunOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) return ResultCursor(parsed.status);
  return Query(parsed.graph, options);
}

ExplainResult Session::Explain(const QueryGraph& graph,
                               const RunOptions& options) {
  ExplainResult ex;
  Executor exec(db_, cost_params_);
  exec.CollectOpStats(true);
  QueryRun run = RunImpl(graph, options, &exec);
  ex.status = run.status;
  ex.trace = run.trace;
  if (!run.ok()) return ex;

  ex.stages = run.optimized.stages;
  ex.decisions = std::move(run.decisions);
  ex.plan_text = run.plan_text;
  ex.est_cost = run.optimized.cost;
  ex.measured_cost = run.measured_cost;
  ex.counters = run.counters;
  ex.pushed_variant_cost = run.optimized.pushed_variant_cost;
  ex.unpushed_variant_cost = run.optimized.unpushed_variant_cost;
  ex.chose_push = run.optimized.pushed_sel || run.optimized.pushed_join ||
                  run.optimized.pushed_proj;
  ex.plan = BuildExplainNode(*run.optimized.plan, exec.op_stats());
  return ex;
}

ExplainResult Session::Explain(const std::string& text,
                               const RunOptions& options) {
  const ParseResult parsed = ParseQuery(text, db_->schema());
  if (!parsed.ok()) {
    ExplainResult ex;
    ex.status = parsed.status;
    return ex;
  }
  return Explain(parsed.graph, options);
}

}  // namespace rodin
