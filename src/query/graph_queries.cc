#include "query/graph_queries.h"

#include "query/builder.h"

namespace rodin {

QueryGraph GraphClosureQuery(const GraphConfig& config, const Schema& schema,
                             const std::string& label) {
  QueryGraphBuilder b;
  b.Node("Ancestor", "P1")
      .Input("Node", "x")
      .OutPath("anc", "x", {"parent"})
      .OutPath("node", "x")
      .Out("dist", Expr::Lit(Value::Int(1)));
  b.Node("Ancestor", "P2")
      .Input("Ancestor", "a")
      .Input("Node", "x")
      .Where(Expr::Eq(Expr::Path("a", {"node"}), Expr::Path("x", {"parent"})))
      .OutPath("anc", "a", {"anc"})
      .OutPath("node", "x")
      .Out("dist", Expr::Arith(ArithOp::kAdd, Expr::Path("a", {"dist"}),
                               Expr::Lit(Value::Int(1))));

  std::vector<std::string> sel_path = {"anc"};
  for (const std::string& hop : GraphSelectionPath(config)) {
    sel_path.push_back(hop);
  }
  sel_path.push_back("label");
  b.Node("Answer", "P3")
      .Input("Ancestor", "a")
      .Where(Expr::Eq(Expr::Path("a", sel_path), Expr::Lit(Value::Str(label))))
      .OutPath("n", "a", {"node", "nname"});
  return b.Build(schema);
}

}  // namespace rodin
