#ifndef RODIN_QUERY_GRAPH_QUERIES_H_
#define RODIN_QUERY_GRAPH_QUERIES_H_

#include <string>

#include "catalog/schema.h"
#include "datagen/graph_gen.h"
#include "query/query_graph.h"

namespace rodin {

/// The parameterized recursive query over a GenerateGraphDb() database used
/// by the crossover experiments (E6): the Ancestor closure of Node.parent,
/// filtered by a selection whose evaluation requires `config.path_len`
/// implicit joins:
///
///   Ancestor(anc, node, dist)  — transitive closure over parent
///   Answer: node names where anc.hop1...hopK.label = `label`
///
/// The selection's estimated selectivity is 1 / config.num_labels; its
/// evaluation cost grows with config.path_len — the two axes of the paper's
/// push/no-push trade-off.
QueryGraph GraphClosureQuery(const GraphConfig& config, const Schema& schema,
                             const std::string& label = "label_0");

}  // namespace rodin

#endif  // RODIN_QUERY_GRAPH_QUERIES_H_
