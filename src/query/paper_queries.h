#ifndef RODIN_QUERY_PAPER_QUERIES_H_
#define RODIN_QUERY_PAPER_QUERIES_H_

#include <cstdint>
#include <string>

#include "catalog/schema.h"
#include "query/query_graph.h"

namespace rodin {

/// The paper's running-example queries, stated over the music schema
/// produced by GenerateMusicDb(). (Attribute names follow this library's
/// schema: Person.name, Instrument.iname, Composition.title.)

/// Figure 2: "the title of the works of Bach including a harpsichord and a
/// flute" — path variables t (work), i1, i2 (instruments of that work).
QueryGraph Fig2Query(const Schema& schema);

/// Figure 3: "the names of the composers influenced by composers for
/// harpsichord that lived `generations` generations before". Defines the
/// recursive Influencer view (P1 base, P2 recursive) plus the query node P3.
QueryGraph Fig3Query(const Schema& schema, int64_t generations = 6,
                     const std::string& instrument = "harpsichord");

/// §4.5: "the composers that were influenced by the masters of Bach" — an
/// explicit, highly selective join between Influencer and Composer that is
/// worth pushing through recursion.
QueryGraph PushJoinQuery(const Schema& schema);

}  // namespace rodin

#endif  // RODIN_QUERY_PAPER_QUERIES_H_
