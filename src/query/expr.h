#ifndef RODIN_QUERY_EXPR_H_
#define RODIN_QUERY_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/value.h"

namespace rodin {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kLiteral,  // a constant Value
  kVarPath,  // variable followed by an attribute path: x.master.works.title
  kCompare,  // binary comparison
  kArith,    // binary arithmetic (+, -)
  kAnd,      // n-ary conjunction
  kOr,       // n-ary disjunction
  kNot,      // negation
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub };

const char* CompareOpName(CompareOp op);

/// Immutable boolean/scalar expression over variables bound by query-graph
/// arcs. Path expressions (the paper's O1.A1.A2...An, §1) appear as kVarPath
/// nodes; method calls are paths whose final attribute is computed.
/// Instances are shared via ExprPtr and never mutated — transformations
/// build new nodes.
class Expr {
 public:
  // --- Factories -----------------------------------------------------------
  static ExprPtr Lit(Value v);
  static ExprPtr Path(std::string var, std::vector<std::string> path = {});
  static ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(std::vector<ExprPtr> children);
  static ExprPtr Or(std::vector<ExprPtr> children);
  static ExprPtr Not(ExprPtr child);

  /// Convenience: var.path == "literal" etc.
  static ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
    return Cmp(CompareOp::kEq, std::move(lhs), std::move(rhs));
  }

  ExprKind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& var() const { return var_; }
  const std::vector<std::string>& path() const { return path_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Variables referenced anywhere in the expression.
  std::set<std::string> FreeVars() const;

  /// Splits a top-level conjunction into its conjuncts (a non-AND expression
  /// is its own single conjunct). This is how the optimizer "consumes" the
  /// Boolean predicate of a predicate node (paper §4.4).
  std::vector<ExprPtr> Conjuncts() const;

  /// All (var, attribute-path) pairs referenced in the expression; used to
  /// derive tree labels and translate paths into implicit joins.
  std::vector<std::pair<std::string, std::vector<std::string>>> VarPaths() const;

  /// Returns a copy with variable `from` renamed to `to` everywhere.
  ExprPtr RenameVar(const std::string& from, const std::string& to) const;

  /// Returns a copy where every kVarPath on `var` has `prefix` prepended to
  /// its path (rebasing a predicate onto an upstream object variable).
  ExprPtr PrependPath(const std::string& var,
                      const std::vector<std::string>& prefix) const;

  /// Returns a copy where kVarPath nodes on `var` whose path starts with
  /// `attr` are rewritten to root at `new_var` with the first step dropped
  /// (used after an implicit join materializes var.attr as new_var).
  ExprPtr RebaseStep(const std::string& var, const std::string& attr,
                     const std::string& new_var) const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  std::string var_;
  std::vector<std::string> path_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
};

/// Conjoins a list of conjuncts back into a single predicate; returns
/// nullptr for an empty list (meaning "true").
ExprPtr ConjunctionOf(std::vector<ExprPtr> conjuncts);

}  // namespace rodin

#endif  // RODIN_QUERY_EXPR_H_
