#include "query/expr.h"

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Lit(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Path(std::string var, std::vector<std::string> path) {
  RODIN_CHECK(!var.empty(), "path expression needs a variable");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kVarPath;
  e->var_ = std::move(var);
  e->path_ = std::move(path);
  return e;
}

ExprPtr Expr::Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  RODIN_CHECK(lhs != nullptr && rhs != nullptr, "null comparison operand");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  RODIN_CHECK(lhs != nullptr && rhs != nullptr, "null arithmetic operand");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(std::vector<ExprPtr> children) {
  RODIN_CHECK(!children.empty(), "empty conjunction");
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAnd;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Or(std::vector<ExprPtr> children) {
  RODIN_CHECK(!children.empty(), "empty disjunction");
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kOr;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  RODIN_CHECK(child != nullptr, "null negation operand");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

std::set<std::string> Expr::FreeVars() const {
  std::set<std::string> out;
  if (kind_ == ExprKind::kVarPath) out.insert(var_);
  for (const ExprPtr& c : children_) {
    const std::set<std::string> sub = c->FreeVars();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

std::vector<ExprPtr> Expr::Conjuncts() const {
  std::vector<ExprPtr> out;
  if (kind_ == ExprKind::kAnd) {
    for (const ExprPtr& c : children_) {
      const std::vector<ExprPtr> sub = c->Conjuncts();
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    // Rebuild this node as a shared copy of itself.
    auto self = std::shared_ptr<Expr>(new Expr(*this));
    out.push_back(self);
  }
  return out;
}

std::vector<std::pair<std::string, std::vector<std::string>>> Expr::VarPaths()
    const {
  std::vector<std::pair<std::string, std::vector<std::string>>> out;
  if (kind_ == ExprKind::kVarPath) out.emplace_back(var_, path_);
  for (const ExprPtr& c : children_) {
    auto sub = c->VarPaths();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

ExprPtr Expr::RenameVar(const std::string& from, const std::string& to) const {
  auto e = std::shared_ptr<Expr>(new Expr(*this));
  if (kind_ == ExprKind::kVarPath && var_ == from) e->var_ = to;
  for (ExprPtr& c : e->children_) c = c->RenameVar(from, to);
  return e;
}

ExprPtr Expr::PrependPath(const std::string& var,
                          const std::vector<std::string>& prefix) const {
  auto e = std::shared_ptr<Expr>(new Expr(*this));
  if (kind_ == ExprKind::kVarPath && var_ == var) {
    std::vector<std::string> path = prefix;
    path.insert(path.end(), path_.begin(), path_.end());
    e->path_ = std::move(path);
  }
  for (ExprPtr& c : e->children_) c = c->PrependPath(var, prefix);
  return e;
}

ExprPtr Expr::RebaseStep(const std::string& var, const std::string& attr,
                         const std::string& new_var) const {
  auto e = std::shared_ptr<Expr>(new Expr(*this));
  if (kind_ == ExprKind::kVarPath && var_ == var && !path_.empty() &&
      path_.front() == attr) {
    e->var_ = new_var;
    e->path_.assign(path_.begin() + 1, path_.end());
  }
  for (ExprPtr& c : e->children_) c = c->RebaseStep(var, attr, new_var);
  return e;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kLiteral:
      if (literal_ != other.literal_) return false;
      break;
    case ExprKind::kVarPath:
      if (var_ != other.var_ || path_ != other.path_) return false;
      break;
    case ExprKind::kCompare:
      if (compare_op_ != other.compare_op_) return false;
      break;
    case ExprKind::kArith:
      if (arith_op_ != other.arith_op_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kVarPath: {
      std::string out = var_;
      for (const std::string& a : path_) out += "." + a;
      return out;
    }
    case ExprKind::kCompare:
      return "(" + children_[0]->ToString() + " " +
             CompareOpName(compare_op_) + " " + children_[1]->ToString() + ")";
    case ExprKind::kArith:
      return "(" + children_[0]->ToString() +
             (arith_op_ == ArithOp::kAdd ? " + " : " - ") +
             children_[1]->ToString() + ")";
    case ExprKind::kAnd: {
      std::vector<std::string> parts;
      for (const ExprPtr& c : children_) parts.push_back(c->ToString());
      return "(" + Join(parts, " and ") + ")";
    }
    case ExprKind::kOr: {
      std::vector<std::string> parts;
      for (const ExprPtr& c : children_) parts.push_back(c->ToString());
      return "(" + Join(parts, " or ") + ")";
    }
    case ExprKind::kNot:
      return "not " + children_[0]->ToString();
  }
  return "?";
}

ExprPtr ConjunctionOf(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  return Expr::And(std::move(conjuncts));
}

}  // namespace rodin
