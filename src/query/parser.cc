#include "query/parser.h"

#include <cctype>

#include "common/string_util.h"
#include "query/builder.h"

namespace rodin {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kReal,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double real_value = 0;
  size_t line = 1;
  size_t col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& cur() const { return cur_; }

  void Advance() {
    SkipSpace();
    cur_ = Token{};
    cur_.line = line_;
    cur_.col = col_;
    if (pos_ >= text_.size()) {
      cur_.kind = TokKind::kEnd;
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        Bump();
      }
      cur_.kind = TokKind::kIdent;
      cur_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      bool real = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        // A '.' followed by a non-digit is a path separator, not a decimal
        // point (e.g. in "1.x" — not valid anyway, but keep lexing sane).
        if (text_[pos_] == '.') {
          if (pos_ + 1 >= text_.size() ||
              !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            break;
          }
          real = true;
        }
        Bump();
      }
      cur_.text = text_.substr(start, pos_ - start);
      if (real) {
        cur_.kind = TokKind::kReal;
        cur_.real_value = std::stod(cur_.text);
      } else {
        cur_.kind = TokKind::kInt;
        cur_.int_value = std::stoll(cur_.text);
      }
      return;
    }
    if (c == '"') {
      Bump();
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        out += text_[pos_];
        Bump();
      }
      if (pos_ < text_.size()) Bump();  // closing quote
      cur_.kind = TokKind::kString;
      cur_.text = std::move(out);
      return;
    }
    // Two-character operators first.
    static const char* kTwo[] = {"!=", "<=", ">="};
    for (const char* op : kTwo) {
      if (text_.compare(pos_, 2, op) == 0) {
        cur_.kind = TokKind::kSymbol;
        cur_.text = op;
        Bump();
        Bump();
        return;
      }
    }
    cur_.kind = TokKind::kSymbol;
    cur_.text = std::string(1, c);
    Bump();
  }

 private:
  void Bump() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Bump();
        continue;
      }
      // Comments: -- to end of line.
      if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Bump();
        continue;
      }
      break;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  Token cur_;
};

class Parser {
 public:
  Parser(const std::string& text, const Schema& schema)
      : lexer_(text), schema_(schema) {}

  ParseResult Run() {
    ParseResult result;
    QueryGraphBuilder builder;
    int label = 0;
    while (!failed_ && lexer_.cur().kind != TokKind::kEnd) {
      if (IsKeyword("relation")) {
        ParseRelationDef(&builder, &label);
      } else if (IsKeyword("select")) {
        ParseSelect(&builder, "Answer", StrFormat("P%d", ++label));
        break;  // the final select is the answer
      } else {
        Fail("expected 'relation' or 'select'");
      }
    }
    if (!failed_ && lexer_.cur().kind != TokKind::kEnd) {
      Fail("unexpected trailing input after the answer select");
    }
    if (failed_) {
      result.status = Status::Error(Status::Code::kParse, error_,
                                    err_line_, err_col_);
      return result;
    }
    QueryGraph graph = builder.BuildUnchecked();
    const std::vector<std::string> errors = graph.Validate(schema_);
    if (!errors.empty()) {
      result.status = Status::Error(Status::Code::kSemantic,
                                    "semantic error: " + Join(errors, "; "));
      return result;
    }
    result.graph = std::move(graph);
    return result;
  }

 private:
  // --- Token helpers --------------------------------------------------------

  bool IsKeyword(const char* kw) const {
    return lexer_.cur().kind == TokKind::kIdent && lexer_.cur().text == kw;
  }

  bool IsSymbol(const char* s) const {
    return lexer_.cur().kind == TokKind::kSymbol && lexer_.cur().text == s;
  }

  void Expect(const char* what, bool ok) {
    if (!ok && !failed_) {
      Fail(StrFormat("expected %s, found '%s'", what,
                     lexer_.cur().text.c_str()));
    }
  }

  void ExpectKeyword(const char* kw) {
    Expect(kw, IsKeyword(kw));
    if (!failed_) lexer_.Advance();
  }

  void ExpectSymbol(const char* s) {
    Expect(s, IsSymbol(s));
    if (!failed_) lexer_.Advance();
  }

  std::string ExpectIdent(const char* what) {
    if (lexer_.cur().kind != TokKind::kIdent) {
      Fail(StrFormat("expected %s, found '%s'", what,
                     lexer_.cur().text.c_str()));
      return "";
    }
    std::string out = lexer_.cur().text;
    lexer_.Advance();
    return out;
  }

  void Fail(const std::string& message) {
    if (failed_) return;
    failed_ = true;
    err_line_ = lexer_.cur().line;
    err_col_ = lexer_.cur().col;
    error_ = StrFormat("parse error at %zu:%zu: %s", err_line_, err_col_,
                       message.c_str());
  }

  // --- Grammar ----------------------------------------------------------------

  // relation NAME includes <select-block> { union <select-block> }
  void ParseRelationDef(QueryGraphBuilder* builder, int* label) {
    ExpectKeyword("relation");
    const std::string name = ExpectIdent("view name");
    ExpectKeyword("includes");
    if (failed_) return;
    while (!failed_) {
      const bool parenthesized = IsSymbol("(");
      if (parenthesized) lexer_.Advance();
      ParseSelect(builder, name, StrFormat("P%d", ++*label));
      if (parenthesized) ExpectSymbol(")");
      if (IsKeyword("union")) {
        lexer_.Advance();
        continue;
      }
      break;
    }
  }

  // select [col: expr, ...] from binding {, binding} [where pred]
  void ParseSelect(QueryGraphBuilder* builder, const std::string& output,
                   const std::string& label) {
    ExpectKeyword("select");
    ExpectSymbol("[");
    if (failed_) return;
    NodeBuilder& node = builder->Node(output, label);
    // Output columns.
    while (!failed_) {
      const std::string col = ExpectIdent("output column name");
      ExpectSymbol(":");
      ExprPtr e = ParseSum();
      if (failed_) return;
      node.Out(col, std::move(e));
      if (IsSymbol(",")) {
        lexer_.Advance();
        continue;
      }
      break;
    }
    ExpectSymbol("]");
    ExpectKeyword("from");
    // Bindings.
    while (!failed_) {
      const std::string var = ExpectIdent("variable");
      ExpectKeyword("in");
      if (failed_) return;
      // `x in Composer` (arc) vs `t in x.works` (path variable): a source
      // with a dot, or whose head is an already-bound variable, is a path.
      const std::string head = ExpectIdent("source");
      if (IsSymbol(".")) {
        std::vector<std::string> path;
        while (IsSymbol(".")) {
          lexer_.Advance();
          path.push_back(ExpectIdent("attribute"));
        }
        node.Let(var, head, std::move(path));
      } else {
        node.Input(head, var);
      }
      if (IsSymbol(",")) {
        lexer_.Advance();
        continue;
      }
      break;
    }
    if (IsKeyword("where")) {
      lexer_.Advance();
      ExprPtr pred = ParseOr();
      if (!failed_) node.Where(std::move(pred));
    }
  }

  // or := and { 'or' and }
  ExprPtr ParseOr() {
    std::vector<ExprPtr> parts = {ParseAnd()};
    while (!failed_ && IsKeyword("or")) {
      lexer_.Advance();
      parts.push_back(ParseAnd());
    }
    if (failed_) return Expr::Lit(Value::Bool(true));
    return parts.size() == 1 ? parts[0] : Expr::Or(std::move(parts));
  }

  // and := not { 'and' not }
  ExprPtr ParseAnd() {
    std::vector<ExprPtr> parts = {ParseNot()};
    while (!failed_ && IsKeyword("and")) {
      lexer_.Advance();
      parts.push_back(ParseNot());
    }
    if (failed_) return Expr::Lit(Value::Bool(true));
    return parts.size() == 1 ? parts[0] : Expr::And(std::move(parts));
  }

  ExprPtr ParseNot() {
    if (IsKeyword("not")) {
      lexer_.Advance();
      return failed_ ? Expr::Lit(Value::Bool(true)) : Expr::Not(ParseNot());
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    if (IsSymbol("(")) {
      lexer_.Advance();
      ExprPtr inner = ParseOr();
      ExpectSymbol(")");
      return inner;
    }
    ExprPtr lhs = ParseSum();
    if (failed_) return lhs;
    static const std::pair<const char*, CompareOp> kOps[] = {
        {"!=", CompareOp::kNe}, {"<=", CompareOp::kLe},
        {">=", CompareOp::kGe}, {"=", CompareOp::kEq},
        {"<", CompareOp::kLt},  {">", CompareOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (IsSymbol(sym)) {
        lexer_.Advance();
        ExprPtr rhs = ParseSum();
        if (failed_) return lhs;
        return Expr::Cmp(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;  // bare expression (e.g. a boolean path)
  }

  // sum := term { ('+'|'-') term }
  ExprPtr ParseSum() {
    ExprPtr lhs = ParseTerm();
    while (!failed_ && (IsSymbol("+") || IsSymbol("-"))) {
      const ArithOp op = IsSymbol("+") ? ArithOp::kAdd : ArithOp::kSub;
      lexer_.Advance();
      ExprPtr rhs = ParseTerm();
      if (failed_) break;
      lhs = Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // term := literal | var { '.' attr }
  ExprPtr ParseTerm() {
    const Token& t = lexer_.cur();
    switch (t.kind) {
      case TokKind::kInt: {
        const int64_t v = t.int_value;
        lexer_.Advance();
        return Expr::Lit(Value::Int(v));
      }
      case TokKind::kReal: {
        const double v = t.real_value;
        lexer_.Advance();
        return Expr::Lit(Value::Real(v));
      }
      case TokKind::kString: {
        const std::string v = t.text;
        lexer_.Advance();
        return Expr::Lit(Value::Str(v));
      }
      case TokKind::kIdent: {
        if (t.text == "true" || t.text == "false") {
          const bool v = t.text == "true";
          lexer_.Advance();
          return Expr::Lit(Value::Bool(v));
        }
        const std::string var = t.text;
        lexer_.Advance();
        std::vector<std::string> path;
        while (IsSymbol(".")) {
          lexer_.Advance();
          path.push_back(ExpectIdent("attribute"));
          if (failed_) break;
        }
        return Expr::Path(var, std::move(path));
      }
      default:
        Fail(StrFormat("expected an expression, found '%s'", t.text.c_str()));
        return Expr::Lit(Value::Null());
    }
  }

  Lexer lexer_;
  const Schema& schema_;
  bool failed_ = false;
  std::string error_;
  size_t err_line_ = 0;
  size_t err_col_ = 0;
};

}  // namespace

ParseResult ParseQuery(const std::string& text, const Schema& schema) {
  Parser parser(text, schema);
  return parser.Run();
}

}  // namespace rodin
