#include "query/query_graph.h"

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

const Arc* PredicateNode::FindInput(const std::string& var) const {
  for (const Arc& a : inputs) {
    if (a.var == var) return &a;
  }
  return nullptr;
}

const PathVar* PredicateNode::FindLet(const std::string& var) const {
  for (const PathVar& p : lets) {
    if (p.var == var) return &p;
  }
  return nullptr;
}

std::vector<const PredicateNode*> QueryGraph::ProducersOf(
    const std::string& name) const {
  std::vector<const PredicateNode*> out;
  for (const PredicateNode& n : nodes) {
    if (n.output == name) out.push_back(&n);
  }
  return out;
}

std::set<std::string> QueryGraph::DerivedNames() const {
  std::set<std::string> out;
  for (const PredicateNode& n : nodes) out.insert(n.output);
  return out;
}

bool QueryGraph::IsRecursiveName(const std::string& name) const {
  // BFS over "name A feeds a producer of name B" edges, from `name`.
  std::set<std::string> reached;
  std::vector<std::string> frontier = {name};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& cur : frontier) {
      for (const PredicateNode& n : nodes) {
        bool uses_cur = false;
        for (const Arc& a : n.inputs) {
          if (a.name == cur) uses_cur = true;
        }
        if (!uses_cur) continue;
        if (n.output == name) return true;
        if (reached.insert(n.output).second) next.push_back(n.output);
      }
    }
    frontier = std::move(next);
  }
  return false;
}

bool QueryGraph::TryBindingOf(const PredicateNode& node, const std::string& var,
                              const Schema& schema, VarBinding* out) const {
  if (const Arc* arc = node.FindInput(var)) {
    if (const ClassDef* cls = schema.FindClass(arc->name)) {
      out->kind = NameKind::kClass;
      out->cls = cls;
    } else if (const RelationDef* rel = schema.FindRelation(arc->name)) {
      out->kind = NameKind::kRelation;
      out->rel = rel;
    } else {
      out->kind = NameKind::kDerived;
      out->derived_name = arc->name;
    }
    return true;
  }
  const PathVar* let = node.FindLet(var);
  if (let == nullptr) return false;
  VarBinding root;
  if (!TryBindingOf(node, let->root, schema, &root)) return false;
  const PathTarget t = ResolvePath(root, let->path, schema);
  if (!t.valid || t.cls == nullptr) return false;
  out->kind = NameKind::kClass;
  out->cls = t.cls;
  return true;
}

VarBinding QueryGraph::BindingOf(const PredicateNode& node,
                                 const std::string& var,
                                 const Schema& schema) const {
  VarBinding b;
  RODIN_CHECK(TryBindingOf(node, var, schema, &b),
              "variable unbound or path variable unresolvable");
  return b;
}

namespace {

// Walks `path` starting from class `cls`, filling `target`.
void WalkClassPath(const Schema& schema, const ClassDef* cls,
                   const std::vector<std::string>& path, size_t start,
                   PathTarget* target) {
  const ClassDef* cur = cls;
  for (size_t i = start; i < path.size(); ++i) {
    const Attribute* a = cur->FindAttribute(path[i]);
    if (a == nullptr) {
      target->valid = false;
      target->error = StrFormat("attribute %s not found on class %s",
                                path[i].c_str(), cur->name().c_str());
      return;
    }
    const Type* t = a->type;
    if (t->IsCollection()) {
      target->via_collection = true;
      t = t->elem();
    }
    if (t->kind() == TypeKind::kObject) {
      cur = schema.FindClass(t->class_name());
      if (cur == nullptr) {
        target->valid = false;
        target->error = "dangling class " + t->class_name();
        return;
      }
      continue;
    }
    // Atomic endpoint must be the last step.
    if (i + 1 != path.size()) {
      target->valid = false;
      target->error = StrFormat("path continues past atomic attribute %s",
                                path[i].c_str());
      return;
    }
    target->valid = true;
    target->atomic = true;
    target->cls = nullptr;
    return;
  }
  target->valid = true;
  target->atomic = false;
  target->cls = cur;
}

}  // namespace

PathTarget QueryGraph::ResolvePath(const VarBinding& binding,
                                   const std::vector<std::string>& path,
                                   const Schema& schema) const {
  PathTarget target;
  switch (binding.kind) {
    case NameKind::kClass:
      WalkClassPath(schema, binding.cls, path, 0, &target);
      return target;
    case NameKind::kRelation: {
      if (path.empty()) {
        target.valid = true;
        target.atomic = false;  // whole tuple
        return target;
      }
      const Attribute* a = binding.rel->FindAttribute(path[0]);
      if (a == nullptr) {
        target.error = StrFormat("column %s not in relation %s",
                                 path[0].c_str(), binding.rel->name().c_str());
        return target;
      }
      const Type* t = a->type;
      if (t->IsCollection()) {
        target.via_collection = true;
        t = t->elem();
      }
      if (t->kind() == TypeKind::kObject) {
        const ClassDef* cls = schema.FindClass(t->class_name());
        if (cls == nullptr) {
          target.error = "dangling class " + t->class_name();
          return target;
        }
        WalkClassPath(schema, cls, path, 1, &target);
        return target;
      }
      if (path.size() != 1) {
        target.error = "path continues past atomic column " + path[0];
        return target;
      }
      target.valid = true;
      target.atomic = true;
      return target;
    }
    case NameKind::kDerived: {
      if (path.empty()) {
        target.valid = true;
        target.atomic = false;
        return target;
      }
      const ClassDef* col_cls =
          ColumnClass(binding.derived_name, path[0], schema);
      if (col_cls == nullptr) {
        // Atomic column: path must end here. (An unknown column also lands
        // here; ColumnsOf-based validation reports it.)
        if (path.size() != 1) {
          target.error = StrFormat("path continues past atomic column %s.%s",
                                   binding.derived_name.c_str(),
                                   path[0].c_str());
          return target;
        }
        target.valid = true;
        target.atomic = true;
        return target;
      }
      WalkClassPath(schema, col_cls, path, 1, &target);
      return target;
    }
  }
  return target;
}

std::vector<std::string> QueryGraph::ColumnsOf(const std::string& view) const {
  const std::vector<const PredicateNode*> producers = ProducersOf(view);
  std::vector<std::string> out;
  if (producers.empty()) return out;
  for (const OutCol& c : producers[0]->out) out.push_back(c.name);
  return out;
}

const ClassDef* QueryGraph::ColumnClass(const std::string& view,
                                        const std::string& column,
                                        const Schema& schema) const {
  std::set<std::string> visiting;
  return ColumnClassImpl(view, column, schema, &visiting);
}

const ClassDef* QueryGraph::ColumnClassImpl(
    const std::string& view, const std::string& column, const Schema& schema,
    std::set<std::string>* visiting) const {
  if (!visiting->insert(view).second) return nullptr;  // recursion guard
  // Prefer a base (non-recursive) producer: one whose inputs do not include
  // the view itself.
  const std::vector<const PredicateNode*> producers = ProducersOf(view);
  const PredicateNode* chosen = nullptr;
  for (const PredicateNode* p : producers) {
    bool self = false;
    for (const Arc& a : p->inputs) {
      if (a.name == view) self = true;
    }
    if (!self) {
      chosen = p;
      break;
    }
  }
  if (chosen == nullptr && !producers.empty()) chosen = producers[0];
  if (chosen == nullptr) return nullptr;

  const OutCol* col = nullptr;
  for (const OutCol& c : chosen->out) {
    if (c.name == column) col = &c;
  }
  if (col == nullptr || col->expr == nullptr) return nullptr;
  if (col->expr->kind() != ExprKind::kVarPath) return nullptr;  // atomic

  // The producing expression may be rooted at an arc variable OR a path
  // variable (let); TryBindingOf covers both. Nested derived names keep the
  // visiting guard by resolving their first step through this function.
  if (const Arc* arc = chosen->FindInput(col->expr->var())) {
    if (schema.FindClass(arc->name) == nullptr &&
        schema.FindRelation(arc->name) == nullptr) {
      const std::vector<std::string>& p = col->expr->path();
      if (p.empty()) return nullptr;
      const ClassDef* head = ColumnClassImpl(arc->name, p[0], schema, visiting);
      if (head == nullptr) return nullptr;
      PathTarget t;
      WalkClassPath(schema, head, p, 1, &t);
      return t.valid ? t.cls : nullptr;
    }
  }
  VarBinding binding;
  if (!TryBindingOf(*chosen, col->expr->var(), schema, &binding)) {
    return nullptr;
  }
  PathTarget t = ResolvePath(binding, col->expr->path(), schema);
  return t.valid ? t.cls : nullptr;
}

TreeLabel QueryGraph::DeriveTreeLabel(const PredicateNode& node,
                                      const Arc& arc) const {
  // Rewrites (var, path) into an absolute path from the arc variable,
  // chasing let-roots; returns false when var is not rooted at this arc.
  auto absolute = [&](std::string var, std::vector<std::string> path,
                      std::vector<std::string>* out) -> bool {
    while (var != arc.var) {
      const PathVar* let = node.FindLet(var);
      if (let == nullptr) return false;
      path.insert(path.begin(), let->path.begin(), let->path.end());
      var = let->root;
    }
    *out = std::move(path);
    return true;
  };

  std::vector<std::vector<std::string>> paths;
  // Where along the absolute path each variable sits (path-prefix length).
  std::vector<std::pair<std::vector<std::string>, std::string>> var_sites;

  auto collect = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    for (const auto& [var, path] : e->VarPaths()) {
      std::vector<std::string> abs;
      if (absolute(var, path, &abs)) paths.push_back(std::move(abs));
    }
  };
  collect(node.pred);
  for (const OutCol& c : node.out) collect(c.expr);
  for (const PathVar& let : node.lets) {
    std::vector<std::string> abs;
    if (absolute(let.var, {}, &abs)) {
      paths.push_back(abs);
      var_sites.emplace_back(abs, let.var);
    }
  }

  TreeLabel root = BuildTreeLabel(arc.var, paths);
  // Attach declared variables at their nodes.
  for (const auto& [site, var] : var_sites) {
    TreeLabel* node_ptr = &root;
    bool found = true;
    for (const std::string& step : site) {
      found = false;
      for (TreeLabel& c : node_ptr->children) {
        if (c.attr == step) {
          node_ptr = &c;
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    if (found) node_ptr->var = var;
  }
  return root;
}

std::vector<std::string> QueryGraph::Validate(const Schema& schema) const {
  std::vector<std::string> errors;
  const std::set<std::string> derived = DerivedNames();

  if (ProducersOf(answer).empty()) {
    errors.push_back("answer name node '" + answer + "' has no producer");
  }

  for (const PredicateNode& node : nodes) {
    std::set<std::string> vars;
    for (const Arc& a : node.inputs) {
      if (!vars.insert(a.var).second) {
        errors.push_back(StrFormat("node %s: duplicate variable %s",
                                   node.label.c_str(), a.var.c_str()));
      }
      const bool stored = schema.FindClass(a.name) != nullptr ||
                          schema.FindRelation(a.name) != nullptr;
      if (!stored && derived.count(a.name) == 0) {
        errors.push_back(StrFormat("node %s: unknown name node %s",
                                   node.label.c_str(), a.name.c_str()));
      }
    }
    // Path variables: unique names, resolvable acyclic roots, object-valued
    // endpoints. Roots must be declared before use (no forward references).
    std::set<std::string> declared = vars;
    for (const PathVar& let : node.lets) {
      if (!vars.insert(let.var).second) {
        errors.push_back(StrFormat("node %s: duplicate variable %s",
                                   node.label.c_str(), let.var.c_str()));
        continue;
      }
      if (declared.count(let.root) == 0) {
        errors.push_back(StrFormat(
            "node %s: path variable %s has undeclared root %s",
            node.label.c_str(), let.var.c_str(), let.root.c_str()));
        declared.insert(let.var);
        continue;
      }
      if (let.path.empty()) {
        errors.push_back(StrFormat("node %s: path variable %s has empty path",
                                   node.label.c_str(), let.var.c_str()));
        declared.insert(let.var);
        continue;
      }
      const VarBinding root = BindingOf(node, let.root, schema);
      const PathTarget t = ResolvePath(root, let.path, schema);
      if (!t.valid) {
        errors.push_back(StrFormat("node %s: path variable %s: %s",
                                   node.label.c_str(), let.var.c_str(),
                                   t.error.c_str()));
      } else if (t.cls == nullptr) {
        errors.push_back(StrFormat(
            "node %s: path variable %s does not end on an object",
            node.label.c_str(), let.var.c_str()));
      }
      declared.insert(let.var);
    }
    auto check_expr = [&](const ExprPtr& e, const char* what) {
      if (e == nullptr) return;
      for (const auto& [var, path] : e->VarPaths()) {
        if (node.FindInput(var) == nullptr && node.FindLet(var) == nullptr) {
          errors.push_back(StrFormat("node %s: %s references unbound %s",
                                     node.label.c_str(), what, var.c_str()));
          continue;
        }
        VarBinding b;
        if (!TryBindingOf(node, var, schema, &b)) continue;  // let reported
        // Columns of derived names are validated by name membership.
        if (b.kind == NameKind::kDerived && !path.empty()) {
          std::vector<std::string> cols = ColumnsOf(b.derived_name);
          bool found = false;
          for (const std::string& c : cols) {
            if (c == path[0]) found = true;
          }
          if (!found) {
            errors.push_back(StrFormat("node %s: %s.%s is not a column of %s",
                                       node.label.c_str(), var.c_str(),
                                       path[0].c_str(),
                                       b.derived_name.c_str()));
            continue;
          }
        }
        const PathTarget t = ResolvePath(b, path, schema);
        if (!t.valid) {
          errors.push_back(StrFormat("node %s: %s: %s", node.label.c_str(),
                                     what, t.error.c_str()));
        }
      }
    };
    check_expr(node.pred, "predicate");
    for (const OutCol& c : node.out) check_expr(c.expr, "projection");
    if (node.out.empty()) {
      errors.push_back(StrFormat("node %s: empty output projection",
                                 node.label.c_str()));
    }
    std::set<std::string> colnames;
    for (const OutCol& c : node.out) {
      if (!colnames.insert(c.name).second) {
        errors.push_back(StrFormat("node %s: duplicate output column %s",
                                   node.label.c_str(), c.name.c_str()));
      }
    }
  }

  // Producers of one derived name must agree on columns (union semantics).
  for (const std::string& name : derived) {
    const std::vector<const PredicateNode*> producers = ProducersOf(name);
    for (size_t i = 1; i < producers.size(); ++i) {
      if (producers[i]->out.size() != producers[0]->out.size()) {
        errors.push_back("producers of " + name + " disagree on column count");
        continue;
      }
      for (size_t c = 0; c < producers[0]->out.size(); ++c) {
        if (producers[i]->out[c].name != producers[0]->out[c].name) {
          errors.push_back("producers of " + name + " disagree on column " +
                           producers[0]->out[c].name);
        }
      }
    }
  }
  return errors;
}

std::string QueryGraph::ToString() const {
  std::string out;
  for (const PredicateNode& node : nodes) {
    std::string arcs;
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      if (i > 0) arcs += ", ";
      arcs += "(" + node.inputs[i].name + ", " + node.inputs[i].var + ")";
    }
    for (const PathVar& let : node.lets) {
      arcs += StrFormat(", %s in %s.%s", let.var.c_str(), let.root.c_str(),
                        Join(let.path, ".").c_str());
    }
    std::string proj;
    for (size_t i = 0; i < node.out.size(); ++i) {
      if (i > 0) proj += ", ";
      proj += node.out[i].name + ": " + node.out[i].expr->ToString();
    }
    out += node.output + " <- SPJ";
    if (!node.label.empty()) out += "[" + node.label + "]";
    out += "({" + arcs + "}, " +
           (node.pred == nullptr ? std::string("true") : node.pred->ToString()) +
           ", [" + proj + "])\n";
  }
  return out;
}

}  // namespace rodin
