#ifndef RODIN_QUERY_TREE_LABEL_H_
#define RODIN_QUERY_TREE_LABEL_H_

#include <string>
#include <vector>

namespace rodin {

/// Tree-shaped adornment on a query-graph arc (paper §2.2): indicates which
/// sub-objects of the arc's name node the predicate node needs. In the
/// relational model adornments are strings; over objects they are trees,
/// and overlapping path expressions *factorize* into a shared subtree — the
/// property the paper credits for optimizing overlapping paths without
/// rewriting.
///
/// The root has an empty `attr` and carries the arc variable; each child
/// names an attribute step. A leaf is an atomic attribute (or an object
/// node none of whose sub-attributes are needed).
struct TreeLabel {
  std::string attr;                 // "" at the root
  std::string var;                  // variable bound here ("" if none)
  std::vector<TreeLabel> children;  // ordered by first use

  /// Rendering like "x(works(<elem>(instruments(<elem>(iname)))), name)".
  std::string ToString() const;

  /// Number of nodes (root included).
  size_t NodeCount() const;

  /// Maximum attribute depth below this node.
  size_t Depth() const;
};

/// Merges the attribute paths used from variable `var` into one tree label;
/// `paths` is typically Expr::VarPaths() filtered to `var` plus the paths of
/// the output projection. Duplicate prefixes share nodes.
TreeLabel BuildTreeLabel(
    const std::string& var,
    const std::vector<std::vector<std::string>>& paths);

}  // namespace rodin

#endif  // RODIN_QUERY_TREE_LABEL_H_
