#ifndef RODIN_QUERY_BUILDER_H_
#define RODIN_QUERY_BUILDER_H_

#include <deque>
#include <string>
#include <vector>

#include "query/query_graph.h"

namespace rodin {

/// Fluent construction of one predicate node. Obtained from
/// QueryGraphBuilder::Node(); all methods return *this for chaining.
class NodeBuilder {
 public:
  NodeBuilder& Input(std::string name, std::string var);
  NodeBuilder& Let(std::string var, std::string root,
                   std::vector<std::string> path);
  /// Conjoins `pred` onto the node's predicate.
  NodeBuilder& Where(ExprPtr pred);
  NodeBuilder& Out(std::string col, ExprPtr expr);
  /// Shorthand for Out(col, Expr::Path(var, path)).
  NodeBuilder& OutPath(std::string col, std::string var,
                       std::vector<std::string> path = {});

 private:
  friend class QueryGraphBuilder;
  PredicateNode node_;
};

/// Builds query graphs through the typed API (the library has no textual
/// query language; see DESIGN.md §6).
class QueryGraphBuilder {
 public:
  explicit QueryGraphBuilder(std::string answer = "Answer")
      : answer_(std::move(answer)) {}

  /// Starts a predicate node producing name node `output`.
  NodeBuilder& Node(std::string output, std::string label = "");

  /// Assembles the graph and validates it against `schema`; aborts with the
  /// violation list on invalid graphs (tests use QueryGraph::Validate
  /// directly for negative cases).
  QueryGraph Build(const Schema& schema) const;

  /// Assembles without validation.
  QueryGraph BuildUnchecked() const;

 private:
  std::string answer_;
  std::deque<NodeBuilder> nodes_;
};

}  // namespace rodin

#endif  // RODIN_QUERY_BUILDER_H_
