#include "query/builder.h"

#include <cstdio>

#include "common/check.h"

namespace rodin {

NodeBuilder& NodeBuilder::Input(std::string name, std::string var) {
  node_.inputs.push_back(Arc{std::move(name), std::move(var)});
  return *this;
}

NodeBuilder& NodeBuilder::Let(std::string var, std::string root,
                              std::vector<std::string> path) {
  node_.lets.push_back(PathVar{std::move(var), std::move(root), std::move(path)});
  return *this;
}

NodeBuilder& NodeBuilder::Where(ExprPtr pred) {
  RODIN_CHECK(pred != nullptr, "null predicate");
  if (node_.pred == nullptr) {
    node_.pred = std::move(pred);
  } else {
    node_.pred = Expr::And({node_.pred, std::move(pred)});
  }
  return *this;
}

NodeBuilder& NodeBuilder::Out(std::string col, ExprPtr expr) {
  RODIN_CHECK(expr != nullptr, "null output expression");
  node_.out.push_back(OutCol{std::move(col), std::move(expr)});
  return *this;
}

NodeBuilder& NodeBuilder::OutPath(std::string col, std::string var,
                                  std::vector<std::string> path) {
  return Out(std::move(col), Expr::Path(std::move(var), std::move(path)));
}

NodeBuilder& QueryGraphBuilder::Node(std::string output, std::string label) {
  nodes_.emplace_back();
  nodes_.back().node_.output = std::move(output);
  nodes_.back().node_.label = std::move(label);
  return nodes_.back();
}

QueryGraph QueryGraphBuilder::BuildUnchecked() const {
  QueryGraph graph;
  graph.answer = answer_;
  for (const NodeBuilder& nb : nodes_) graph.nodes.push_back(nb.node_);
  return graph;
}

QueryGraph QueryGraphBuilder::Build(const Schema& schema) const {
  QueryGraph graph = BuildUnchecked();
  const std::vector<std::string> errors = graph.Validate(schema);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "QueryGraph error: %s\n", e.c_str());
  }
  RODIN_CHECK(errors.empty(), "invalid query graph");
  return graph;
}

}  // namespace rodin
