#include "query/paper_queries.h"

#include "query/builder.h"

namespace rodin {

QueryGraph Fig2Query(const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Answer", "P")
      .Input("Composer", "x")
      .Let("t", "x", {"works"})
      .Let("i1", "t", {"instruments"})
      .Let("i2", "t", {"instruments"})
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .Where(Expr::Eq(Expr::Path("i1", {"iname"}),
                      Expr::Lit(Value::Str("harpsichord"))))
      .Where(Expr::Eq(Expr::Path("i2", {"iname"}),
                      Expr::Lit(Value::Str("flute"))))
      .OutPath("title", "t", {"title"});
  return b.Build(schema);
}

QueryGraph Fig3Query(const Schema& schema, int64_t generations,
                     const std::string& instrument) {
  QueryGraphBuilder b;
  // P1 — base: select [master: x.master, disciple: x, gen: 1] from Composer.
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  // P2 — recursive: join Influencer with Composer on disciple = master.
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));
  // P3 — the query on the view: the selective path expression
  // master.works.instruments.iname plus the gen threshold.
  b.Node("Answer", "P3")
      .Input("Influencer", "j")
      .Where(Expr::Eq(Expr::Path("j", {"master", "works", "instruments", "iname"}),
                      Expr::Lit(Value::Str(instrument))))
      .Where(Expr::Cmp(CompareOp::kGe, Expr::Path("j", {"gen"}),
                       Expr::Lit(Value::Int(generations))))
      .OutPath("dname", "j", {"disciple", "name"});
  return b.Build(schema);
}

QueryGraph PushJoinQuery(const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));
  // P3 — Influencer.master = Composer.master and Composer.name = "Bach":
  // very selective, restricting the recursion to Bach's own lineage.
  b.Node("Answer", "P3")
      .Input("Influencer", "j")
      .Input("Composer", "y")
      .Where(Expr::Eq(Expr::Path("j", {"master"}), Expr::Path("y", {"master"})))
      .Where(Expr::Eq(Expr::Path("y", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("dname", "j", {"disciple", "name"});
  return b.Build(schema);
}

}  // namespace rodin
