#ifndef RODIN_QUERY_QUERY_GRAPH_H_
#define RODIN_QUERY_QUERY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "query/expr.h"
#include "query/tree_label.h"

namespace rodin {

/// An incoming arc of a predicate node: the name node it reads and the
/// variable bound to one element of that name node's extension. The arc's
/// tree label (adornment) is derived — see DeriveTreeLabel().
struct Arc {
  std::string name;
  std::string var;
};

/// One column of a predicate node's output projection.
struct OutCol {
  std::string name;
  ExprPtr expr;
};

/// A variable bound along a path (the paper's tree-label variables, §2.2:
/// `t`, `i1`, `i2` in Figure 2): `var` ranges over the objects reached from
/// `root` (an arc variable or another path variable) through `path`. Two
/// path variables with the same root share the traversal prefix — the
/// factorization of overlapping paths the query-graph model is built for.
struct PathVar {
  std::string var;
  std::string root;
  std::vector<std::string> path;
};

/// A predicate node (paper §2.2): an spj over the extensions of its input
/// arcs — the order of operations inside it is deliberately *not* fixed;
/// picking it is generatePT's job.
struct PredicateNode {
  std::string label;  // "P1", "P2", ... (display only)
  std::vector<Arc> inputs;
  std::vector<PathVar> lets;  // declared path variables
  ExprPtr pred;  // nullptr means "true"
  std::vector<OutCol> out;
  std::string output;  // output name node

  const Arc* FindInput(const std::string& var) const;
  const PathVar* FindLet(const std::string& var) const;
};

/// What a name node denotes.
enum class NameKind { kClass, kRelation, kDerived };

/// Resolved binding of a variable: either a stored class instance, a stored
/// relation tuple, or a derived (view / answer) tuple.
struct VarBinding {
  NameKind kind = NameKind::kDerived;
  const ClassDef* cls = nullptr;       // kClass
  const RelationDef* rel = nullptr;    // kRelation
  std::string derived_name;            // kDerived
};

/// Resolved type of a path's endpoint.
struct PathTarget {
  bool valid = false;
  const ClassDef* cls = nullptr;  // non-null if the path ends on an object
  bool atomic = false;            // true if the path ends on an atomic value
  bool via_collection = false;    // some step traversed a set/list
  std::string error;              // when !valid
};

/// A query graph Q = { (Name <- p)_i } (paper §2.2): predicate nodes wired
/// through name nodes. Recursion appears as a name node that is reachable
/// from itself (e.g. Influencer, Figure 3).
class QueryGraph {
 public:
  std::vector<PredicateNode> nodes;
  std::string answer = "Answer";

  /// Predicate nodes producing `name`.
  std::vector<const PredicateNode*> ProducersOf(const std::string& name) const;

  /// Name nodes that are outputs of some predicate node.
  std::set<std::string> DerivedNames() const;

  /// True if `name` can reach itself through predicate nodes.
  bool IsRecursiveName(const std::string& name) const;

  /// Resolves what a variable of predicate node `node` denotes: an arc
  /// variable, or a path variable (whose binding is the class reached by its
  /// path). Aborts if the variable is bound by neither.
  VarBinding BindingOf(const PredicateNode& node, const std::string& var,
                       const Schema& schema) const;

  /// Non-aborting variant; returns false if the variable is unbound or a
  /// path variable fails to resolve.
  bool TryBindingOf(const PredicateNode& node, const std::string& var,
                    const Schema& schema, VarBinding* out) const;

  /// Resolves the endpoint of `path` starting from `binding`.
  PathTarget ResolvePath(const VarBinding& binding,
                         const std::vector<std::string>& path,
                         const Schema& schema) const;

  /// The class an output column of derived name `view` holds, or nullptr if
  /// the column is atomic. Uses the base (non-recursive) producer.
  const ClassDef* ColumnClass(const std::string& view,
                              const std::string& column,
                              const Schema& schema) const;

  /// Column names of a derived name (from its first producer).
  std::vector<std::string> ColumnsOf(const std::string& view) const;

  /// Derives the tree label (adornment) of one input arc of `node`: all
  /// paths the predicate and output projection use from the arc's variable,
  /// factorized (paper §2.2, footnote 1).
  TreeLabel DeriveTreeLabel(const PredicateNode& node, const Arc& arc) const;

  /// Structural and type validation; returns human-readable errors.
  std::vector<std::string> Validate(const Schema& schema) const;

  /// Rendering in the paper's notation, e.g.
  /// "Answer <- SPJ({(Composer, x)}, (x.name = "Bach"), [t: x.works.title])".
  std::string ToString() const;

 private:
  const ClassDef* ColumnClassImpl(const std::string& view,
                                  const std::string& column,
                                  const Schema& schema,
                                  std::set<std::string>* visiting) const;
};

}  // namespace rodin

#endif  // RODIN_QUERY_QUERY_GRAPH_H_
