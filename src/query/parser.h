#ifndef RODIN_QUERY_PARSER_H_
#define RODIN_QUERY_PARSER_H_

#include <string>

#include "catalog/schema.h"
#include "common/status.h"
#include "query/query_graph.h"

namespace rodin {

/// Parser for the ESQL-flavoured surface syntax the paper uses to define
/// recursive views (§2.3):
///
///   relation Influencer includes
///     (select [master: x.master, disciple: x, gen: 1] from x in Composer)
///     union
///     (select [master: i.master, disciple: x, gen: i.gen + 1]
///      from i in Influencer, x in Composer where i.disciple = x.master)
///
///   select [dname: j.disciple.name] from j in Influencer
///   where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
///
/// A query text is a sequence of `relation <Name> includes <select> [union
/// <select>]...` view definitions followed by one final select (the
/// answer). `from` bindings are either arcs (`x in Composer`) or path
/// variables (`t in x.works`, the paper's tree-label variables). The result
/// is a QueryGraph identical to what the typed builder would produce.
struct ParseResult {
  /// kParse carries the offending source position (status.line /
  /// status.col, 1-based) of the token the parser rejected; kSemantic
  /// reports post-parse validation failures.
  Status status;
  QueryGraph graph;

  bool ok() const { return status.ok(); }
  const std::string& error() const { return status.message; }
};

/// Parses `text` against `schema`. On success the graph is also validated.
ParseResult ParseQuery(const std::string& text, const Schema& schema);

}  // namespace rodin

#endif  // RODIN_QUERY_PARSER_H_
