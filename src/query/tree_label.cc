#include "query/tree_label.h"

namespace rodin {

std::string TreeLabel::ToString() const {
  std::string out = attr.empty() ? (var.empty() ? "*" : var) : attr;
  if (!attr.empty() && !var.empty()) out += ":" + var;
  if (!children.empty()) {
    out += "(";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ", ";
      out += children[i].ToString();
    }
    out += ")";
  }
  return out;
}

size_t TreeLabel::NodeCount() const {
  size_t n = 1;
  for (const TreeLabel& c : children) n += c.NodeCount();
  return n;
}

size_t TreeLabel::Depth() const {
  size_t d = 0;
  for (const TreeLabel& c : children) d = std::max(d, 1 + c.Depth());
  return d;
}

TreeLabel BuildTreeLabel(const std::string& var,
                         const std::vector<std::vector<std::string>>& paths) {
  TreeLabel root;
  root.var = var;
  for (const std::vector<std::string>& path : paths) {
    TreeLabel* node = &root;
    for (const std::string& step : path) {
      TreeLabel* next = nullptr;
      for (TreeLabel& c : node->children) {
        if (c.attr == step) {
          next = &c;
          break;
        }
      }
      if (next == nullptr) {
        TreeLabel child;
        child.attr = step;
        node->children.push_back(std::move(child));
        next = &node->children.back();
      }
      node = next;
    }
  }
  return root;
}

}  // namespace rodin
