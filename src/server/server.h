#ifndef RODIN_SERVER_SERVER_H_
#define RODIN_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "server/governor.h"
#include "server/wire.h"

namespace rodin::server {

/// How one rodin_serve instance listens and schedules. The engine itself
/// (dataset, optimizer, plan cache) is configured separately through
/// EngineOptions — a Server multiplexes whatever EngineHandle it is given.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (query it back via Server::port()
  /// — this is how in-process tests avoid port collisions).
  uint16_t port = 0;
  /// Worker threads executing queries (the I/O loop is one extra thread).
  size_t workers = 4;
  /// Admission slots: queries running or queued for a worker. Beyond this
  /// the governor sheds with kOverloaded. Also the session-pool size, so a
  /// checked-out session always exists for an admitted query.
  size_t max_in_flight = 64;
  int listen_backlog = 512;
  /// Per-frame write stall budget towards one client. A client that stops
  /// reading mid-stream for longer than this gets its connection dropped
  /// (and its query cancelled) instead of parking a worker forever.
  uint64_t send_timeout_ms = 10000;
  std::string banner = "rodin_serve/1";
};

/// The multi-tenant query server: one epoll I/O thread owning every
/// connection, a ThreadPool of query workers, and a pool of shared-db
/// Sessions over one EngineHandle (one Database, one buffer pool, one plan
/// cache). Protocol: see server/wire.h and docs/SERVER.md.
///
/// Threading model, in one paragraph: the I/O thread accepts, reads and
/// parses frames, answers the cheap ones inline (HELLO, shed/refused
/// requests, protocol errors) and hands QUERY / PREPARE / EXECUTE to the
/// worker pool. Workers check a Session out of the pool, stream
/// SCHEMA/ROWS/STATUS frames directly to the socket (per-connection write
/// mutex), and return the session. Cancellation flows the other way: the
/// I/O thread observes a CANCEL frame or a client disconnect and trips the
/// in-flight request's CancelToken, which the engine polls per morsel
/// batch — a vanished client stops costing CPU within one batch.
///
/// Stats are plain relaxed atomics (not obs metrics) so they stay truthful
/// under RODIN_OBS=OFF; server_test asserts against this snapshot.
class Server {
 public:
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_active = 0;
    uint64_t protocol_errors = 0;
    uint64_t queries_started = 0;  // admitted and handed to a worker
    uint64_t queries_ok = 0;
    uint64_t queries_failed = 0;   // terminal STATUS carried a non-OK code
    uint64_t rows_streamed = 0;    // rows actually written to sockets
    uint64_t cancel_frames = 0;    // CANCEL frames that matched a request
    /// Requests retired after their client vanished mid-flight: exactly one
    /// count per such request, recorded when the worker retires it, whether
    /// the I/O thread's hangup handler (which trips the CancelToken) or the
    /// worker's own failed write observed the disconnect first. The
    /// disconnect=>cancel guarantee is asserted through this counter.
    uint64_t disconnect_cancels = 0;
    // Write path (protocol v2): MUTATE frames staged ok, and COMMIT
    // outcomes split three ways — conflicts (retryable refusals: another
    // writer or live cursors) are not failures.
    uint64_t mutates_staged = 0;
    uint64_t commits_ok = 0;
    uint64_t commit_conflicts = 0;
    uint64_t commits_failed = 0;
    Governor::Snapshot admission;
  };

  /// Binds, listens and spawns the I/O thread and workers. Returns null and
  /// fills *status on socket errors (kInternal) or bad options
  /// (kInvalidArgument). `engine` must outlive the server.
  static std::unique_ptr<Server> Start(EngineHandle* engine,
                                       const ServerOptions& options,
                                       Status* status);

  ~Server();

  /// Stops accepting, cancels every in-flight query, closes every
  /// connection and joins all threads. Idempotent; the destructor calls it.
  void Stop();

  /// The bound port (resolves option port 0 to the actual ephemeral port).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  Stats stats() const;

 private:
  struct Connection;

  Server(EngineHandle* engine, ServerOptions options);

  Status Listen();
  void EventLoop();
  void AcceptAll();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleDisconnect(const std::shared_ptr<Connection>& conn);
  /// Slices complete frames off conn->inbuf; returns false on a protocol
  /// error (the connection has been dropped).
  bool ParseFrames(const std::shared_ptr<Connection>& conn);
  bool DispatchFrame(const std::shared_ptr<Connection>& conn,
                     const FrameHeader& header, const std::string& payload);
  /// Admission + handoff for QUERY / EXECUTE. `text` xor `graph`.
  void StartQuery(const std::shared_ptr<Connection>& conn,
                  uint64_t request_id, std::string text,
                  std::shared_ptr<const QueryGraph> graph,
                  const WireQueryOptions& wire);
  /// Worker-side: runs one admitted query and streams the reply.
  void RunQuery(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                const std::string& text,
                std::shared_ptr<const QueryGraph> graph,
                const WireQueryOptions& wire, CancelToken token);
  /// Worker-side: parses a PREPARE and replies PREPARE_OK / STATUS.
  void RunPrepare(const std::shared_ptr<Connection>& conn,
                  uint64_t request_id, const std::string& text);
  /// I/O-thread-side (v2): stage a MUTATE on the connection's transaction
  /// (implicit Begin on the first one) and reply STATUS inline. Resolves
  /// slot-only targets (class_id == UINT32_MAX) against the op's extent.
  void HandleMutate(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, MutationBatch batch);
  /// Busy-flag admission + worker handoff for COMMIT.
  void StartCommit(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id);
  /// Worker-side: commits the connection's transaction and replies STATUS.
  void RunCommit(const std::shared_ptr<Connection>& conn, uint64_t request_id);
  /// Rolls back the connection's open transaction, if any (disconnect,
  /// server stop).
  void RollbackConnTxn(const std::shared_ptr<Connection>& conn);

  /// Serialized, timeout-bounded frame write; returns false (and poisons
  /// the connection) on failure.
  bool WriteToConnection(const std::shared_ptr<Connection>& conn,
                         const std::string& frame);
  void SendStatus(const std::shared_ptr<Connection>& conn,
                  uint64_t request_id, const Status& status,
                  uint64_t rows_produced = 0, double measured_cost = -1);
  /// Replies kInvalidArgument and drops the connection.
  void ProtocolError(const std::shared_ptr<Connection>& conn,
                     uint64_t request_id, const std::string& message);

  std::unique_ptr<Session> CheckOutSession();
  void ReturnSession(std::unique_ptr<Session> session);

  EngineHandle* engine_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: kicks the I/O thread out of epoll_wait
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;

  Governor governor_;

  /// Idle sessions (all shared_db mode). Size == max_in_flight, so an
  /// admitted query never waits for a session.
  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  /// Live connections, keyed by fd. I/O thread only, except Stop().
  std::mutex connections_mu_;
  std::map<int, std::shared_ptr<Connection>> connections_;
  std::atomic<uint64_t> next_connection_id_{1};

  // Stats counters (see Stats).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> queries_started_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> rows_streamed_{0};
  std::atomic<uint64_t> cancel_frames_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};
  std::atomic<uint64_t> mutates_staged_{0};
  std::atomic<uint64_t> commits_ok_{0};
  std::atomic<uint64_t> commit_conflicts_{0};
  std::atomic<uint64_t> commits_failed_{0};
};

}  // namespace rodin::server

#endif  // RODIN_SERVER_SERVER_H_
