#ifndef RODIN_SERVER_WIRE_H_
#define RODIN_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "api/query_options.h"
#include "common/status.h"
#include "storage/value.h"
#include "txn/mutation.h"

namespace rodin::server {

/// rodin_serve's wire protocol, v3 (full spec: docs/SERVER.md).
///
/// Every message is one length-prefixed frame:
///
///   u32  payload_length   (little-endian, excludes this 13-byte header)
///   u8   frame_type       (FrameType)
///   u64  request_id       (little-endian; client-assigned, echoed on every
///                          frame the server sends for that request)
///   ...  payload_length bytes of payload
///
/// Integers are little-endian, doubles are 8-byte IEEE-754 little-endian,
/// strings are u32 length + bytes (no terminator). The payload of each
/// frame type is documented on the enumerator. A request is one QUERY or
/// EXECUTE frame; the server answers with SCHEMA, zero or more ROWS, and a
/// terminal STATUS (wire code 0 = ok). Errors at any point short-circuit to
/// the STATUS frame. HELLO/PREPARE get HELLO_OK/PREPARE_OK or STATUS.
///
/// Version negotiation: the client's HELLO carries the highest version it
/// speaks; the server replies with min(client, kProtocolVersion) and both
/// sides speak that. v1 clients therefore connect to a v2+ server and see
/// byte-identical v1 behaviour; the v2 additions (MUTATE/COMMIT and the
/// structural kTagRef/kTagSet value tags inside their payloads) are only
/// legal on a connection that negotiated >= 2 — on a v1 connection they are
/// an unexpected frame type, answered with an error STATUS. The v3 addition
/// is the feedback option block inside WireQueryOptions (three new flag
/// bits plus an optional tuning tail); a v3 client encodes it only on a
/// connection that negotiated >= 3, so older servers never see the bits.
/// The v4 addition is the spill option block inside WireQueryOptions (one
/// flag bit gating a tri-state byte + ledger-budget tail), following the
/// same rule: encoded only on a connection that negotiated >= 4.
constexpr uint32_t kProtocolVersion = 4;
/// Oldest client version the server still accepts.
constexpr uint32_t kMinProtocolVersion = 1;

/// Upper bound on a single frame's payload; a length prefix beyond this is
/// a protocol error and the connection is dropped (a corrupt or hostile
/// length must not drive a multi-gigabyte allocation).
constexpr uint32_t kMaxFramePayloadBytes = 16u << 20;

constexpr size_t kFrameHeaderBytes = 4 + 1 + 8;

enum class FrameType : uint8_t {
  /// c->s, first frame on a connection. Payload: u32 protocol version.
  kHello = 1,
  /// s->c. Payload: u32 protocol version, str banner, u64 connection id.
  kHelloOk = 2,
  /// c->s: parse + optimize + execute, streaming. Payload: str query text,
  /// WireQueryOptions.
  kQuery = 3,
  /// c->s: parse and validate once. Payload: str query text.
  kPrepare = 4,
  /// s->c. Payload: u64 statement id (scope: this connection).
  kPrepareOk = 5,
  /// c->s: run a prepared statement. Payload: u64 statement id,
  /// WireQueryOptions.
  kExecute = 6,
  /// c->s: cancel the in-flight request with this id. Payload: u64 target
  /// request id. No direct reply — the cancelled request's STATUS frame
  /// (wire code `cancelled`) is the acknowledgement; unknown targets are
  /// ignored.
  kCancel = 7,
  /// s->c: result column layout, sent once before the first ROWS frame.
  /// Payload: u32 ncols, then ncols strings (column names).
  kSchema = 8,
  /// s->c: a batch of result rows. Payload: u32 nrows, then nrows * ncols
  /// values (see EncodeValue).
  kRows = 9,
  /// s->c: terminal frame of a request (also the error reply to any
  /// malformed/failed request). Payload: u8 wire status code
  /// (WireCodeForStatus), str message, u64 detail, u64 rows_produced,
  /// f64 measured_cost (-1 when not executed).
  kStatus = 10,
  /// c->s: clean shutdown; the server closes after any in-flight request
  /// finishes. Payload: empty.
  kGoodbye = 11,
  /// c->s (v2+): stage a mutation batch on this connection's transaction
  /// (opened implicitly on the first MUTATE). Payload: EncodeMutationBatch.
  /// Reply: STATUS — ok with rows_produced = ops staged, or kConflict
  /// (retryable) when another connection holds the write slot.
  kMutate = 12,
  /// c->s (v2+): commit this connection's transaction. Payload: empty.
  /// Reply: STATUS — ok with detail = new stats version and rows_produced =
  /// ops applied, kConflict (retryable; transaction stays open) while
  /// streaming cursors are live, or the validation error that rolled the
  /// transaction back.
  kCommit = 13,
};

struct FrameHeader {
  uint32_t payload_length = 0;
  FrameType type = FrameType::kHello;
  uint64_t request_id = 0;
};

/// Serializes header + payload into one wire-ready buffer.
std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload);

/// Parses a header from `data` (must hold >= kFrameHeaderBytes). Returns
/// false when the length prefix exceeds kMaxFramePayloadBytes.
bool DecodeFrameHeader(const char* data, FrameHeader* out);

/// Append-only payload builder.
class PayloadWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(const std::string& s);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked payload reader: every Read* returns false (and poisons
/// the reader) on truncation, so frame handlers check once at the end.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool F64(double* v);
  bool Str(std::string* s);
  /// Reads the next byte without consuming it (tag dispatch).
  bool Peek(uint8_t* v);

  bool ok() const { return ok_; }
  /// True when the whole payload was consumed (trailing garbage is a
  /// protocol error).
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Take(size_t n, const char** out);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// The per-request knobs that travel in QUERY / EXECUTE frames — the wire
/// mapping of the QueryOptions facade. The wire has no optional type, so 0
/// means "inherit the server-side default" for the numeric knobs (the same
/// inherit rule QueryOptions spells as nullopt; an explicit zero therefore
/// cannot be sent — it would be rejected server-side anyway). Deliberately
/// absent: cold (a single-tenant measurement knob; the server is always
/// warm), collect_trace/explain_only (not meaningful over this protocol),
/// legacy_exec and seed (operator-side knobs, fixed by server config).
struct WireQueryOptions {
  uint64_t deadline_ms = 0;          // 0 = no deadline
  uint64_t memory_budget_pages = 0;  // 0 = unlimited
  uint32_t exec_threads = 0;         // 0 = inherit executor default
  uint32_t batch_rows = 0;           // 0 = inherit executor default
  bool bypass_plan_cache = false;
  /// Tri-state compiled-eval override (nullopt = inherit).
  std::optional<bool> compiled_eval;
  /// Tri-state adaptive-feedback override (v3+; nullopt = inherit the
  /// server's RODIN_FEEDBACK default). The tuning knobs follow the facade's
  /// inherit rule: 0 = server default (kDefaultDriftThreshold /
  /// kDefaultFeedbackAlpha). Encoded as flag bits + an optional two-F64
  /// tail; Encode omits all of it when the negotiated version is < 3.
  std::optional<bool> feedback;
  double feedback_drift = 0;
  double feedback_alpha = 0;
  /// Tri-state spill override (v4+; nullopt = inherit the server's
  /// RODIN_SPILL default) and the temp-ledger budget override (0 =
  /// inherit; see QueryContext::spill_budget_pages). Encoded as one flag
  /// bit gating a u8 tri-state + u64 budget tail; Encode omits the block
  /// when the negotiated version is < 4.
  std::optional<bool> spill;
  uint64_t spill_budget_pages = 0;

  /// `version` is the connection's negotiated protocol version: v3 fields
  /// are silently dropped when encoding for an older peer.
  void Encode(PayloadWriter* w, uint32_t version = kProtocolVersion) const;
  bool Decode(PayloadReader* r);

  /// Lowers onto the facade. The returned options carry a fresh
  /// QueryContext (deadline/budget from the wire; the caller installs the
  /// cancel token it wants to keep).
  QueryOptions ToQueryOptions() const;
  /// Inverse, for clients that already hold a QueryOptions.
  static WireQueryOptions FromQueryOptions(const QueryOptions& options);
};

/// Value serialization for ROWS frames. Atoms round-trip exactly; refs and
/// collections are rendered to their ToString() form and decode as strings
/// (the protocol is a result transport, not an object transport).
void EncodeValue(const Value& value, PayloadWriter* w);
bool DecodeValue(PayloadReader* r, Value* out);

/// Mutation-batch serialization for MUTATE frames (v2+):
///
///   u32 nops, then per op:
///     u8 kind (MutationOpKind)
///     str extent
///     insert: u32 nvalues, then nvalues * (str attr, mutation value)
///     delete: u32 class_id, u32 slot (the target oid)
///     update: u32 class_id, u32 slot, u32 nassigns, then nassigns *
///             (str attr, mutation value)
///
/// Mutation values reuse the ROWS tags for atoms but — unlike result
/// transport — encode refs and sets *structurally* (kTagRef: u32 class_id,
/// u32 slot; kTagSet: u32 count + elements), because a mutation payload
/// must round-trip exactly, not render. Set nesting is capped at depth 32
/// on decode: the payload-size cap bounds element count, not depth, so a
/// hostile all-headers frame could otherwise recurse off the stack.
///
/// Slot-only addressing: a delete/update target sent with class_id ==
/// 0xFFFFFFFF and a real slot means "slot N of this op's extent" — the
/// server resolves it by extent name, so clients never need to learn
/// server-side class ids (see Server::HandleMutate).
void EncodeMutationBatch(const MutationBatch& batch, PayloadWriter* w);
bool DecodeMutationBatch(PayloadReader* r, MutationBatch* out);

/// Builds the terminal STATUS payload for `status` (see FrameType::kStatus).
std::string EncodeStatusPayload(const Status& status, uint64_t rows_produced,
                                double measured_cost);

/// Parses a STATUS payload back into a Status (+ the result figures).
bool DecodeStatusPayload(PayloadReader* r, Status* status,
                         uint64_t* rows_produced, double* measured_cost);

}  // namespace rodin::server

#endif  // RODIN_SERVER_WIRE_H_
