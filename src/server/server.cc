#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "query/parser.h"
#include "txn/txn_manager.h"

namespace rodin::server {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Status SysError(const std::string& what) {
  return Status::Error(Status::Code::kInternal,
                       StrFormat("%s: %s", what.c_str(), strerror(errno)));
}

}  // namespace

/// Per-connection state. Ownership: the I/O thread holds the map entry; a
/// worker streaming a reply holds a second shared_ptr, so the struct (and
/// the fd) outlive an epoll-side disconnect until the worker lets go. The
/// fd is closed exactly once, by the destructor.
///
/// Thread roles: inbuf / hello_done / statements / active_request /
/// active_cancel are I/O-thread-only (Stop() touches active_cancel after
/// the I/O thread has been joined). `busy` and `open` are cross-thread
/// atomics. Writes to the socket are serialized by write_mu.
struct Server::Connection {
  explicit Connection(int fd, uint64_t id) : fd(fd), id(id) {}
  ~Connection() {
    if (fd >= 0) close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  const uint64_t id;

  std::string inbuf;
  bool hello_done = false;
  /// Negotiated protocol version (min(client, kProtocolVersion), set by
  /// HELLO). v2 features (MUTATE/COMMIT) are refused below 2.
  uint32_t proto_version = kProtocolVersion;

  std::mutex write_mu;
  std::atomic<bool> open{true};

  /// One request may be in flight per connection. Set true at dispatch (I/O
  /// thread), cleared by the worker after the terminal STATUS.
  std::atomic<bool> busy{false};
  uint64_t active_request = 0;
  CancelToken active_cancel;

  /// GOODBYE arrived while a request was in flight: the worker shuts the
  /// socket down after finishing instead of the I/O thread doing it now.
  std::atomic<bool> close_after_drain{false};

  /// Prepared statements of this connection. Inserted by workers (PREPARE),
  /// read by the I/O thread (EXECUTE dispatch) — hence the mutex. Graphs
  /// are shared_ptr so EXECUTE can hand one to a worker without copying
  /// under the lock.
  std::mutex stmt_mu;
  uint64_t next_statement = 1;
  std::map<uint64_t, std::shared_ptr<const QueryGraph>> statements;

  /// This connection's open transaction (0 = none), opened implicitly by
  /// the first MUTATE. Staged on the I/O thread, committed by a worker,
  /// rolled back by the I/O thread on disconnect — hence the mutex.
  std::mutex txn_mu;
  uint64_t open_txn = 0;
};

Server::Server(EngineHandle* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      governor_(options_.max_in_flight) {}

Server::~Server() { Stop(); }

std::unique_ptr<Server> Server::Start(EngineHandle* engine,
                                      const ServerOptions& options,
                                      Status* status) {
  *status = Status::Ok();
  if (engine == nullptr) {
    *status = Status::Error(Status::Code::kInvalidArgument,
                            "Server::Start: null engine");
    return nullptr;
  }
  if (options.workers == 0 || options.max_in_flight == 0) {
    *status = Status::Error(Status::Code::kInvalidArgument,
                            "Server::Start: workers and max_in_flight must "
                            "be positive");
    return nullptr;
  }
  std::unique_ptr<Server> server(new Server(engine, options));
  *status = server->Listen();
  if (!status->ok()) return nullptr;

  for (size_t i = 0; i < options.max_in_flight; ++i) {
    std::unique_ptr<Session> session = engine->NewSession();
    session->set_shared_db(true);
    server->sessions_.push_back(std::move(session));
  }
  server->workers_ = std::make_unique<ThreadPool>(options.workers);
  server->io_thread_ = std::thread([s = server.get()] { s->EventLoop(); });
  return server;
}

Status Server::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return SysError("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::Error(Status::Code::kInvalidArgument,
                         StrFormat("bad listen host: %s",
                                   options_.host.c_str()));
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return SysError("bind");
  }
  if (listen(listen_fd_, options_.listen_backlog) < 0) {
    return SysError("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return SysError("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) return SysError("fcntl(listen)");

  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) return SysError("epoll_create1");
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return SysError("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return SysError("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return SysError("epoll_ctl(wake)");
  }
  return Status::Ok();
}

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
  if (io_thread_.joinable()) io_thread_.join();

  // Cancel every in-flight query and poison every socket so streaming
  // workers bail out within one batch, then drain the worker pool.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& [fd, conn] : connections_) conns.push_back(conn);
    connections_.clear();
  }
  for (auto& conn : conns) {
    if (conn->busy.load()) conn->active_cancel.RequestCancel();
    RollbackConnTxn(conn);
    conn->open.store(false);
    shutdown(conn->fd, SHUT_RDWR);
  }
  workers_.reset();  // drains the queue, joins the workers
  conns.clear();
  connections_active_.store(0);

  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

void Server::EventLoop() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load()) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r = read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(connections_mu_);
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;  // raced with removal
        conn = it->second;
      }
      HandleReadable(conn);
    }
  }
}

void Server::AcceptAll() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: wait for the next event
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>(
        fd, next_connection_id_.fetch_add(1, std::memory_order_relaxed));
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) continue;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_[fd] = conn;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  bool eof = false;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard error (ECONNRESET, ...): same as a disconnect
    break;
  }
  if (!conn->inbuf.empty() && !ParseFrames(conn)) return;  // already dropped
  if (eof) HandleDisconnect(conn);
}

void Server::RollbackConnTxn(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->txn_mu);
  if (conn->open_txn != 0) {
    // Best-effort: an in-flight worker commit may have already closed it
    // (Rollback then reports unknown id, which is fine).
    TxnManager::For(engine_->db())->Rollback(conn->open_txn);
    conn->open_txn = 0;
  }
}

void Server::HandleDisconnect(const std::shared_ptr<Connection>& conn) {
  RollbackConnTxn(conn);
  if (conn->busy.load()) {
    // Trip the token only; `disconnect_cancels` is accounted by the worker
    // when the orphaned request retires. Counting here would be racy: the
    // worker's own failed write can observe the hangup first, clear `busy`,
    // and this branch would never run.
    conn->active_cancel.RequestCancel();
  }
  conn->open.store(false);
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections_.erase(conn->fd);
  }
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::ParseFrames(const std::shared_ptr<Connection>& conn) {
  size_t pos = 0;
  bool ok = true;
  while (conn->inbuf.size() - pos >= kFrameHeaderBytes) {
    FrameHeader header;
    if (!DecodeFrameHeader(conn->inbuf.data() + pos, &header)) {
      ProtocolError(conn, header.request_id, "frame exceeds 16 MiB limit");
      ok = false;
      break;
    }
    if (conn->inbuf.size() - pos <
        kFrameHeaderBytes + header.payload_length) {
      break;  // incomplete frame: wait for more bytes
    }
    const std::string payload = conn->inbuf.substr(
        pos + kFrameHeaderBytes, header.payload_length);
    pos += kFrameHeaderBytes + header.payload_length;
    if (!DispatchFrame(conn, header, payload)) {
      ok = false;
      break;
    }
  }
  if (ok && pos > 0) conn->inbuf.erase(0, pos);
  return ok;
}

bool Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           const FrameHeader& header,
                           const std::string& payload) {
  PayloadReader r(payload.data(), payload.size());
  if (!conn->hello_done) {
    if (header.type != FrameType::kHello) {
      ProtocolError(conn, header.request_id, "expected HELLO");
      return false;
    }
    uint32_t version = 0;
    if (!r.U32(&version) || !r.AtEnd()) {
      ProtocolError(conn, header.request_id, "malformed HELLO");
      return false;
    }
    if (version < kMinProtocolVersion) {
      ProtocolError(conn, header.request_id,
                    StrFormat("unsupported protocol version %u", version));
      return false;
    }
    // Negotiate down to what both sides speak. A v1 client gets the exact
    // v1 HELLO_OK bytes back; a newer-than-us client is served at v2.
    conn->proto_version = std::min(version, kProtocolVersion);
    conn->hello_done = true;
    PayloadWriter w;
    w.U32(conn->proto_version);
    w.Str(options_.banner);
    w.U64(conn->id);
    WriteToConnection(
        conn, EncodeFrame(FrameType::kHelloOk, header.request_id, w.Take()));
    return true;
  }

  switch (header.type) {
    case FrameType::kQuery: {
      std::string text;
      WireQueryOptions wire;
      if (!r.Str(&text) || !wire.Decode(&r) || !r.AtEnd()) {
        ProtocolError(conn, header.request_id, "malformed QUERY");
        return false;
      }
      StartQuery(conn, header.request_id, std::move(text), nullptr, wire);
      return true;
    }
    case FrameType::kPrepare: {
      std::string text;
      if (!r.Str(&text) || !r.AtEnd()) {
        ProtocolError(conn, header.request_id, "malformed PREPARE");
        return false;
      }
      workers_->Submit([this, conn, request_id = header.request_id,
                        text = std::move(text)] {
        RunPrepare(conn, request_id, text);
      });
      return true;
    }
    case FrameType::kExecute: {
      uint64_t statement_id = 0;
      WireQueryOptions wire;
      if (!r.U64(&statement_id) || !wire.Decode(&r) || !r.AtEnd()) {
        ProtocolError(conn, header.request_id, "malformed EXECUTE");
        return false;
      }
      std::shared_ptr<const QueryGraph> graph;
      {
        std::lock_guard<std::mutex> lock(conn->stmt_mu);
        auto it = conn->statements.find(statement_id);
        if (it != conn->statements.end()) graph = it->second;
      }
      if (graph == nullptr) {
        SendStatus(conn, header.request_id,
                   Status::Error(Status::Code::kInvalidArgument,
                                 StrFormat("unknown statement id %llu",
                                           static_cast<unsigned long long>(
                                               statement_id))));
        return true;
      }
      StartQuery(conn, header.request_id, std::string(), std::move(graph),
                 wire);
      return true;
    }
    case FrameType::kCancel: {
      uint64_t target = 0;
      if (!r.U64(&target) || !r.AtEnd()) {
        ProtocolError(conn, header.request_id, "malformed CANCEL");
        return false;
      }
      if (conn->busy.load() && conn->active_request == target) {
        conn->active_cancel.RequestCancel();
        cancel_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    case FrameType::kGoodbye: {
      if (conn->busy.load()) {
        conn->close_after_drain.store(true);
        // Re-check: the worker may have finished between the two loads, in
        // which case nobody else will act on the flag.
        if (!conn->busy.load()) shutdown(conn->fd, SHUT_RDWR);
      } else {
        shutdown(conn->fd, SHUT_RDWR);
      }
      return true;
    }
    case FrameType::kMutate: {
      if (conn->proto_version < 2) break;  // v1: unexpected frame type
      MutationBatch batch;
      if (!DecodeMutationBatch(&r, &batch) || !r.AtEnd()) {
        ProtocolError(conn, header.request_id, "malformed MUTATE");
        return false;
      }
      HandleMutate(conn, header.request_id, batch);
      return true;
    }
    case FrameType::kCommit: {
      if (conn->proto_version < 2) break;  // v1: unexpected frame type
      if (!r.AtEnd()) {
        ProtocolError(conn, header.request_id, "malformed COMMIT");
        return false;
      }
      StartCommit(conn, header.request_id);
      return true;
    }
    default:
      break;
  }
  ProtocolError(conn, header.request_id,
                StrFormat("unexpected frame type %u",
                          static_cast<unsigned>(header.type)));
  return false;
}

void Server::HandleMutate(const std::shared_ptr<Connection>& conn,
                          uint64_t request_id, MutationBatch batch) {
  // MUTATE obeys the same one-request-in-flight rule as QUERY/COMMIT: a
  // MUTATE pipelined behind a COMMIT would otherwise stage into the very
  // transaction the commit worker is flushing (Commit drops the TxnManager
  // mutex while draining readers), committing ops the client meant for the
  // next transaction.
  if (conn->busy.load()) {
    SendStatus(conn, request_id,
               Status::Error(Status::Code::kInvalidArgument,
                             "one request may be in flight per connection; "
                             "wait for the previous STATUS frame"));
    return;
  }
  // Staging is a handful of vector appends under the TxnManager mutex —
  // cheap enough to answer inline on the I/O thread, like HELLO. Only
  // COMMIT (which validates, applies and drains readers) rates a worker.
  //
  // Slot-only addressing: clients do not know server-side class ids, so a
  // delete/update target sent with class_id == UINT32_MAX means "slot N of
  // this op's extent" and is resolved here. Unknown extents stay invalid and
  // are rejected by commit-time validation like any other bad target.
  for (MutationOp& op : batch.ops) {
    if (op.kind != MutationOpKind::kInsert &&
        op.target.class_id == UINT32_MAX && op.target.slot != UINT32_MAX &&
        engine_->db()->FindExtent(op.extent) != nullptr) {
      op.target = engine_->db()->PayloadToOid(op.extent, op.target.slot);
    }
  }
  TxnManager* tm = TxnManager::For(engine_->db());
  Status st = Status::Ok();
  uint64_t staged_ops = 0;
  {
    std::lock_guard<std::mutex> lock(conn->txn_mu);
    if (conn->open_txn == 0) st = tm->Begin(&conn->open_txn);
    if (st.ok()) {
      MutationResult staged;
      st = tm->Stage(conn->open_txn, batch, &staged);
      if (st.ok()) staged_ops = batch.size();
    }
  }
  if (st.ok()) mutates_staged_.fetch_add(1, std::memory_order_relaxed);
  SendStatus(conn, request_id, st, staged_ops);
}

void Server::StartCommit(const std::shared_ptr<Connection>& conn,
                         uint64_t request_id) {
  if (conn->busy.load()) {
    SendStatus(conn, request_id,
               Status::Error(Status::Code::kInvalidArgument,
                             "one request may be in flight per connection; "
                             "wait for the previous STATUS frame"));
    return;
  }
  conn->active_request = request_id;
  conn->busy.store(true);
  workers_->Submit([this, conn, request_id] { RunCommit(conn, request_id); });
}

void Server::RunCommit(const std::shared_ptr<Connection>& conn,
                       uint64_t request_id) {
  TxnManager* tm = TxnManager::For(engine_->db());
  uint64_t txn_id = 0;
  {
    std::lock_guard<std::mutex> lock(conn->txn_mu);
    txn_id = conn->open_txn;
  }
  CommitResult res;
  if (txn_id == 0) {
    res.status = Status::Error(
        Status::Code::kInvalidArgument,
        "COMMIT without an open transaction (stage a MUTATE first)");
  } else {
    res = tm->Commit(txn_id);
    // kConflict leaves the transaction open for a retry; everything else
    // (success, validation failure, rollback race) closed it.
    if (res.status.code != Status::Code::kConflict) {
      std::lock_guard<std::mutex> lock(conn->txn_mu);
      if (conn->open_txn == txn_id) conn->open_txn = 0;
    }
  }
  if (res.ok()) {
    commits_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (res.status.code == Status::Code::kConflict) {
    commit_conflicts_.fetch_add(1, std::memory_order_relaxed);
  } else {
    commits_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  conn->busy.store(false);
  Status st = res.status;
  if (st.ok()) st.detail = res.stats_version;  // per the kCommit frame spec
  SendStatus(conn, request_id, st, res.ops_applied);
  if (conn->close_after_drain.load()) shutdown(conn->fd, SHUT_RDWR);
}

void Server::StartQuery(const std::shared_ptr<Connection>& conn,
                        uint64_t request_id, std::string text,
                        std::shared_ptr<const QueryGraph> graph,
                        const WireQueryOptions& wire) {
  if (conn->busy.load()) {
    SendStatus(conn, request_id,
               Status::Error(Status::Code::kInvalidArgument,
                             "one request may be in flight per connection; "
                             "wait for the previous STATUS frame"));
    return;
  }
  Status admit = governor_.Admit();
  if (!admit.ok()) {
    SendStatus(conn, request_id, admit);
    return;
  }
  // Install the cancel token *before* the handoff so a CANCEL frame or a
  // disconnect cancels the request even while it is still queued.
  CancelToken token;
  conn->active_request = request_id;
  conn->active_cancel = token;
  conn->busy.store(true);
  queries_started_.fetch_add(1, std::memory_order_relaxed);
  workers_->Submit([this, conn, request_id, text = std::move(text),
                    graph = std::move(graph), wire, token] {
    RunQuery(conn, request_id, text, graph, wire, token);
  });
}

void Server::RunQuery(const std::shared_ptr<Connection>& conn,
                      uint64_t request_id, const std::string& text,
                      std::shared_ptr<const QueryGraph> graph,
                      const WireQueryOptions& wire, CancelToken token) {
  QueryOptions options = wire.ToQueryOptions();
  options.query.cancel = token;

  std::unique_ptr<Session> session = CheckOutSession();
  Status final_status;
  uint64_t rows_produced = 0;
  double measured_cost = -1;
  bool client_gone = false;
  {
    ResultCursor cursor = graph != nullptr ? session->Query(*graph, options)
                                           : session->Query(text, options);
    if (!cursor.ok()) {
      final_status = cursor.status();
    } else {
      PayloadWriter schema;
      const auto& cols = cursor.schema().cols;
      schema.U32(static_cast<uint32_t>(cols.size()));
      for (const auto& col : cols) schema.Str(col.name);
      bool writable = WriteToConnection(
          conn, EncodeFrame(FrameType::kSchema, request_id, schema.Take()));

      uint64_t streamed = 0;
      RowBatch batch;
      while (writable && conn->open.load() && cursor.Next(&batch)) {
        PayloadWriter rows;
        rows.U32(static_cast<uint32_t>(batch.size()));
        for (const Row& row : batch.rows) {
          for (const Value& value : row) EncodeValue(value, &rows);
        }
        writable = WriteToConnection(
            conn, EncodeFrame(FrameType::kRows, request_id, rows.Take()));
        if (writable) streamed += batch.size();
      }
      // Finalize the cursor's accounting whether we drained it or bailed
      // out on a dead connection; the terminal figures are then valid.
      cursor.Finish();
      rows_streamed_.fetch_add(streamed, std::memory_order_relaxed);
      final_status = cursor.status();
      rows_produced = cursor.counters().rows_produced;
      measured_cost = cursor.measured_cost();
      client_gone = !writable;
    }
  }
  // The disconnect may have been observed by a failed write above or by the
  // I/O thread's hangup handler (which covers the queued-then-disconnected
  // case, where no write ever probed the socket).
  if (!conn->open.load()) client_gone = true;
  if (client_gone && final_status.ok()) {
    // The client vanished mid-request. Even when the cursor raced to a
    // clean finish before the disconnect cancel tripped it, the request
    // did not deliver its answer — account it cancelled, never ok.
    final_status = Status::Error(Status::Code::kCancelled,
                                 "client disconnected mid-stream");
  }
  // Free the slot *before* writing the terminal STATUS: the client is
  // allowed to pitch its next request the instant it reads that frame, and
  // the I/O thread must not see a stale `busy` when the request lands. A
  // client that pipelines *without* waiting for STATUS is out of spec and
  // may see its streams interleaved — its own problem, not a server hazard
  // (frame writes stay atomic under the write mutex).
  ReturnSession(std::move(session));
  conn->busy.store(false);
  governor_.Release();

  // Count before writing the STATUS frame: a client that reads the frame
  // and immediately asks stats() must see this query accounted for.
  // `disconnect_cancels` is counted here — exactly once per retired request
  // whose client vanished — regardless of whether the I/O thread's hangup
  // handler or this worker's failed write observed the disconnect first.
  if (client_gone) {
    disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
  }
  if (final_status.ok()) {
    queries_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  SendStatus(conn, request_id, final_status, rows_produced, measured_cost);
  if (conn->close_after_drain.load()) shutdown(conn->fd, SHUT_RDWR);
}

void Server::RunPrepare(const std::shared_ptr<Connection>& conn,
                        uint64_t request_id, const std::string& text) {
  ParseResult parsed = ParseQuery(text, engine_->schema());
  if (!parsed.ok()) {
    SendStatus(conn, request_id, parsed.status);
    return;
  }
  uint64_t statement_id;
  {
    std::lock_guard<std::mutex> lock(conn->stmt_mu);
    statement_id = conn->next_statement++;
    conn->statements[statement_id] =
        std::make_shared<const QueryGraph>(std::move(parsed.graph));
  }
  PayloadWriter w;
  w.U64(statement_id);
  WriteToConnection(
      conn, EncodeFrame(FrameType::kPrepareOk, request_id, w.Take()));
}

bool Server::WriteToConnection(const std::shared_ptr<Connection>& conn,
                               const std::string& frame) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open.load()) return false;
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = send(conn->fd, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{};
      p.fd = conn->fd;
      p.events = POLLOUT;
      const int r = poll(&p, 1, static_cast<int>(options_.send_timeout_ms));
      if (r > 0) continue;
      // Stalled past the budget (or poll error): drop the slow client.
    }
    conn->open.store(false);
    shutdown(conn->fd, SHUT_RDWR);  // the I/O thread observes and cleans up
    return false;
  }
  return true;
}

void Server::SendStatus(const std::shared_ptr<Connection>& conn,
                        uint64_t request_id, const Status& status,
                        uint64_t rows_produced, double measured_cost) {
  WriteToConnection(
      conn, EncodeFrame(FrameType::kStatus, request_id,
                        EncodeStatusPayload(status, rows_produced,
                                            measured_cost)));
}

void Server::ProtocolError(const std::shared_ptr<Connection>& conn,
                           uint64_t request_id, const std::string& message) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  SendStatus(conn, request_id,
             Status::Error(Status::Code::kInvalidArgument, message));
  HandleDisconnect(conn);
}

std::unique_ptr<Session> Server::CheckOutSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  // Admission (<= max_in_flight) guarantees a free session.
  std::unique_ptr<Session> session = std::move(sessions_.back());
  sessions_.pop_back();
  return session;
}

void Server::ReturnSession(std::unique_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.push_back(std::move(session));
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_active = connections_active_.load();
  s.protocol_errors = protocol_errors_.load();
  s.queries_started = queries_started_.load();
  s.queries_ok = queries_ok_.load();
  s.queries_failed = queries_failed_.load();
  s.rows_streamed = rows_streamed_.load();
  s.cancel_frames = cancel_frames_.load();
  s.disconnect_cancels = disconnect_cancels_.load();
  s.mutates_staged = mutates_staged_.load();
  s.commits_ok = commits_ok_.load();
  s.commit_conflicts = commit_conflicts_.load();
  s.commits_failed = commits_failed_.load();
  s.admission = governor_.snapshot();
  return s;
}

}  // namespace rodin::server
