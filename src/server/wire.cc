#include "server/wire.h"

#include <cstring>

namespace rodin::server {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

// Value wire tags (stable; new tags append only).
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagReal = 3;
constexpr uint8_t kTagStr = 4;
// Refs and collections: rendered server-side, decoded as strings. The tag is
// kept distinct so a client can tell "this string is a rendering".
constexpr uint8_t kTagRendered = 5;
// Mutation payloads only (v2+): structural ref / set encodings. Result
// transport (ROWS) keeps rendering — these tags never appear there.
constexpr uint8_t kTagRef = 6;
constexpr uint8_t kTagSet = 7;

// WireQueryOptions flag bits.
constexpr uint8_t kFlagBypassPlanCache = 1u << 0;
constexpr uint8_t kFlagCompiledEvalSet = 1u << 1;
constexpr uint8_t kFlagCompiledEvalOn = 1u << 2;
// v3: adaptive-feedback override. Tuning flag gates a two-F64 tail (drift
// threshold, EWMA alpha) appended after the flags byte — old payloads never
// carry the flag, so they decode unchanged.
constexpr uint8_t kFlagFeedbackSet = 1u << 3;
constexpr uint8_t kFlagFeedbackOn = 1u << 4;
constexpr uint8_t kFlagFeedbackTuning = 1u << 5;
// v4: spill override. Gates a tail (after the feedback tuning tail, when
// both are present): u8 tri-state (0 = inherit, 1 = off, 2 = on) + u64
// spill-ledger budget pages. Old payloads never carry the flag, so they
// decode unchanged.
constexpr uint8_t kFlagSpill = 1u << 6;
constexpr uint8_t kSpillInherit = 0;
constexpr uint8_t kSpillOff = 1;
constexpr uint8_t kSpillOn = 2;

}  // namespace

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  out.push_back(static_cast<char>(type));
  AppendU64(&out, request_id);
  out.append(payload);
  return out;
}

bool DecodeFrameHeader(const char* data, FrameHeader* out) {
  out->payload_length = LoadU32(data);
  out->type = static_cast<FrameType>(static_cast<uint8_t>(data[4]));
  out->request_id = LoadU64(data + 5);
  return out->payload_length <= kMaxFramePayloadBytes;
}

void PayloadWriter::U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
void PayloadWriter::U32(uint32_t v) { AppendU32(&out_, v); }
void PayloadWriter::U64(uint64_t v) { AppendU64(&out_, v); }

void PayloadWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(&out_, bits);
}

void PayloadWriter::Str(const std::string& s) {
  AppendU32(&out_, static_cast<uint32_t>(s.size()));
  out_.append(s);
}

bool PayloadReader::Take(size_t n, const char** out) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

bool PayloadReader::U8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool PayloadReader::Peek(uint8_t* v) {
  if (!ok_ || pos_ >= size_) {
    ok_ = false;
    return false;
  }
  *v = static_cast<uint8_t>(data_[pos_]);
  return true;
}

bool PayloadReader::U32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  *v = LoadU32(p);
  return true;
}

bool PayloadReader::U64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  *v = LoadU64(p);
  return true;
}

bool PayloadReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool PayloadReader::Str(std::string* s) {
  uint32_t len;
  if (!U32(&len)) return false;
  const char* p;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

void WireQueryOptions::Encode(PayloadWriter* w, uint32_t version) const {
  w->U64(deadline_ms);
  w->U64(memory_budget_pages);
  w->U32(exec_threads);
  w->U32(batch_rows);
  uint8_t flags = 0;
  if (bypass_plan_cache) flags |= kFlagBypassPlanCache;
  if (compiled_eval.has_value()) {
    flags |= kFlagCompiledEvalSet;
    if (*compiled_eval) flags |= kFlagCompiledEvalOn;
  }
  const bool tuning = feedback_drift != 0 || feedback_alpha != 0;
  if (version >= 3) {
    if (feedback.has_value()) {
      flags |= kFlagFeedbackSet;
      if (*feedback) flags |= kFlagFeedbackOn;
    }
    if (tuning) flags |= kFlagFeedbackTuning;
  }
  const bool spill_block = spill.has_value() || spill_budget_pages != 0;
  if (version >= 4 && spill_block) flags |= kFlagSpill;
  w->U8(flags);
  if (version >= 3 && tuning) {
    w->F64(feedback_drift);
    w->F64(feedback_alpha);
  }
  if (version >= 4 && spill_block) {
    w->U8(!spill.has_value() ? kSpillInherit
                             : (*spill ? kSpillOn : kSpillOff));
    w->U64(spill_budget_pages);
  }
}

bool WireQueryOptions::Decode(PayloadReader* r) {
  uint8_t flags;
  if (!r->U64(&deadline_ms) || !r->U64(&memory_budget_pages) ||
      !r->U32(&exec_threads) || !r->U32(&batch_rows) || !r->U8(&flags)) {
    return false;
  }
  bypass_plan_cache = (flags & kFlagBypassPlanCache) != 0;
  if ((flags & kFlagCompiledEvalSet) != 0) {
    compiled_eval = (flags & kFlagCompiledEvalOn) != 0;
  } else {
    compiled_eval.reset();
  }
  if ((flags & kFlagFeedbackSet) != 0) {
    feedback = (flags & kFlagFeedbackOn) != 0;
  } else {
    feedback.reset();
  }
  feedback_drift = 0;
  feedback_alpha = 0;
  if ((flags & kFlagFeedbackTuning) != 0) {
    if (!r->F64(&feedback_drift) || !r->F64(&feedback_alpha)) return false;
  }
  spill.reset();
  spill_budget_pages = 0;
  if ((flags & kFlagSpill) != 0) {
    uint8_t state;
    if (!r->U8(&state) || !r->U64(&spill_budget_pages)) return false;
    if (state == kSpillOff) spill = false;
    if (state == kSpillOn) spill = true;
  }
  return true;
}

QueryOptions WireQueryOptions::ToQueryOptions() const {
  QueryOptions options;
  options.query.deadline_ms = deadline_ms;
  options.query.memory_budget_pages = memory_budget_pages;
  if (exec_threads != 0) options.exec_threads = exec_threads;
  if (batch_rows != 0) options.batch_rows = batch_rows;
  options.compiled_eval = compiled_eval;
  options.bypass_plan_cache = bypass_plan_cache;
  options.feedback.enabled = feedback;
  options.feedback.drift_threshold = feedback_drift;
  options.feedback.ewma_alpha = feedback_alpha;
  options.query.spill = spill;
  options.query.spill_budget_pages =
      static_cast<size_t>(spill_budget_pages);
  return options;
}

WireQueryOptions WireQueryOptions::FromQueryOptions(
    const QueryOptions& options) {
  WireQueryOptions wire;
  wire.deadline_ms = options.query.deadline_ms;
  wire.memory_budget_pages = options.query.memory_budget_pages;
  wire.exec_threads = options.exec_threads
                          ? static_cast<uint32_t>(*options.exec_threads)
                          : 0;
  wire.batch_rows =
      options.batch_rows ? static_cast<uint32_t>(*options.batch_rows) : 0;
  wire.bypass_plan_cache = options.bypass_plan_cache;
  wire.compiled_eval = options.compiled_eval;
  wire.feedback = options.feedback.enabled;
  wire.feedback_drift = options.feedback.drift_threshold;
  wire.feedback_alpha = options.feedback.ewma_alpha;
  wire.spill = options.query.spill;
  wire.spill_budget_pages = options.query.spill_budget_pages;
  return wire;
}

void EncodeValue(const Value& value, PayloadWriter* w) {
  if (value.is_null()) {
    w->U8(kTagNull);
  } else if (value.is_bool()) {
    w->U8(kTagBool);
    w->U8(value.AsBool() ? 1 : 0);
  } else if (value.is_int()) {
    w->U8(kTagInt);
    w->U64(static_cast<uint64_t>(value.AsInt()));
  } else if (value.is_real()) {
    w->U8(kTagReal);
    w->F64(value.AsReal());
  } else if (value.is_string()) {
    w->U8(kTagStr);
    w->Str(value.AsString());
  } else {
    w->U8(kTagRendered);
    w->Str(value.ToString());
  }
}

bool DecodeValue(PayloadReader* r, Value* out) {
  uint8_t tag;
  if (!r->U8(&tag)) return false;
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagBool: {
      uint8_t b;
      if (!r->U8(&b)) return false;
      *out = Value::Bool(b != 0);
      return true;
    }
    case kTagInt: {
      uint64_t v;
      if (!r->U64(&v)) return false;
      *out = Value::Int(static_cast<int64_t>(v));
      return true;
    }
    case kTagReal: {
      double d;
      if (!r->F64(&d)) return false;
      *out = Value::Real(d);
      return true;
    }
    case kTagStr:
    case kTagRendered: {
      std::string s;
      if (!r->Str(&s)) return false;
      *out = Value::Str(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

namespace {

// Mutation values: atoms as in ROWS, refs and sets structural (must
// round-trip exactly). Nested sets are legal but depth-capped on decode:
// payload size bounds the element *count*, not the nesting depth — a frame
// of nothing but set headers (5 bytes/level) could otherwise recurse
// millions of levels deep and overflow the stack.
constexpr int kMaxMutationValueDepth = 32;

void EncodeMutationValue(const Value& value, PayloadWriter* w) {
  if (value.is_ref()) {
    const Oid oid = value.AsRef();
    w->U8(kTagRef);
    w->U32(oid.class_id);
    w->U32(oid.slot);
  } else if (value.is_collection()) {
    const auto& elems = value.AsCollection().elems;
    w->U8(kTagSet);
    w->U32(static_cast<uint32_t>(elems.size()));
    for (const Value& e : elems) EncodeMutationValue(e, w);
  } else {
    EncodeValue(value, w);
  }
}

bool DecodeMutationValue(PayloadReader* r, Value* out, int depth = 0) {
  if (depth > kMaxMutationValueDepth) return false;
  uint8_t tag;
  if (!r->Peek(&tag)) return false;
  if (tag == kTagRef) {
    uint32_t class_id, slot;
    if (!r->U8(&tag) || !r->U32(&class_id) || !r->U32(&slot)) return false;
    Oid oid;
    oid.class_id = class_id;
    oid.slot = slot;
    *out = Value::Ref(oid);
    return true;
  }
  if (tag == kTagSet) {
    uint32_t count;
    if (!r->U8(&tag) || !r->U32(&count)) return false;
    std::vector<Value> elems;
    for (uint32_t i = 0; i < count; ++i) {
      Value e;
      if (!DecodeMutationValue(r, &e, depth + 1)) return false;
      elems.push_back(std::move(e));
    }
    *out = Value::MakeSet(std::move(elems));
    return true;
  }
  return DecodeValue(r, out);
}

bool DecodeAssigns(PayloadReader* r,
                   std::vector<std::pair<std::string, Value>>* out) {
  uint32_t count;
  if (!r->U32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    std::string attr;
    Value v;
    if (!r->Str(&attr) || !DecodeMutationValue(r, &v)) return false;
    out->emplace_back(std::move(attr), std::move(v));
  }
  return true;
}

}  // namespace

void EncodeMutationBatch(const MutationBatch& batch, PayloadWriter* w) {
  w->U32(static_cast<uint32_t>(batch.ops.size()));
  for (const MutationOp& op : batch.ops) {
    w->U8(static_cast<uint8_t>(op.kind));
    w->Str(op.extent);
    switch (op.kind) {
      case MutationOpKind::kInsert:
        w->U32(static_cast<uint32_t>(op.values.size()));
        for (const auto& [attr, v] : op.values) {
          w->Str(attr);
          EncodeMutationValue(v, w);
        }
        break;
      case MutationOpKind::kDelete:
        w->U32(op.target.class_id);
        w->U32(op.target.slot);
        break;
      case MutationOpKind::kUpdate:
        w->U32(op.target.class_id);
        w->U32(op.target.slot);
        w->U32(static_cast<uint32_t>(op.values.size()));
        for (const auto& [attr, v] : op.values) {
          w->Str(attr);
          EncodeMutationValue(v, w);
        }
        break;
    }
  }
}

bool DecodeMutationBatch(PayloadReader* r, MutationBatch* out) {
  out->ops.clear();
  uint32_t nops;
  if (!r->U32(&nops)) return false;
  for (uint32_t i = 0; i < nops; ++i) {
    uint8_t kind;
    MutationOp op;
    if (!r->U8(&kind) || !r->Str(&op.extent)) return false;
    switch (kind) {
      case static_cast<uint8_t>(MutationOpKind::kInsert):
        op.kind = MutationOpKind::kInsert;
        if (!DecodeAssigns(r, &op.values)) return false;
        break;
      case static_cast<uint8_t>(MutationOpKind::kDelete):
        op.kind = MutationOpKind::kDelete;
        if (!r->U32(&op.target.class_id) || !r->U32(&op.target.slot)) {
          return false;
        }
        break;
      case static_cast<uint8_t>(MutationOpKind::kUpdate):
        op.kind = MutationOpKind::kUpdate;
        if (!r->U32(&op.target.class_id) || !r->U32(&op.target.slot) ||
            !DecodeAssigns(r, &op.values)) {
          return false;
        }
        break;
      default:
        return false;  // unknown op kind is a protocol error
    }
    out->ops.push_back(std::move(op));
  }
  return true;
}

std::string EncodeStatusPayload(const Status& status, uint64_t rows_produced,
                                double measured_cost) {
  PayloadWriter w;
  w.U8(WireCodeForStatus(status));
  w.Str(status.message);
  w.U64(status.detail);
  w.U64(rows_produced);
  w.F64(measured_cost);
  return w.Take();
}

bool DecodeStatusPayload(PayloadReader* r, Status* status,
                         uint64_t* rows_produced, double* measured_cost) {
  uint8_t wire_code;
  std::string message;
  uint64_t detail;
  if (!r->U8(&wire_code) || !r->Str(&message) || !r->U64(&detail) ||
      !r->U64(rows_produced) || !r->F64(measured_cost)) {
    return false;
  }
  bool known = false;
  const Status::Code code = StatusCodeFromWire(wire_code, &known);
  if (!known) return false;
  if (code == Status::Code::kOk) {
    *status = Status::Ok();
  } else {
    *status = Status::Error(code, std::move(message));
  }
  status->detail = detail;
  return true;
}

}  // namespace rodin::server
