#ifndef RODIN_SERVER_GOVERNOR_H_
#define RODIN_SERVER_GOVERNOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace rodin::server {

/// Admission control for the query server: a fixed number of concurrent
/// query slots, shed-immediately beyond that. There is deliberately no
/// admission queue — a queued request under overload only grows its own
/// latency, and the client is better placed to decide between backoff and
/// giving up. A shed request costs one frame round-trip and no engine work.
///
/// Shedding returns Status::Code::kOverloaded, the *retryable* overload
/// signal, with Status::detail = the in-flight count at refusal. It is
/// distinct from kResourceExhausted (a per-query memory budget verdict:
/// retrying the identical query yields the identical refusal), so clients
/// can branch on Status::retryable() alone.
///
/// Counters are plain relaxed atomics, not obs metrics, so the server's
/// stats endpoint stays truthful under RODIN_OBS=OFF builds.
class Governor {
 public:
  explicit Governor(size_t max_in_flight) : max_in_flight_(max_in_flight) {}

  /// Takes a query slot, or sheds with kOverloaded (never blocks).
  Status Admit();

  /// Returns a slot taken by a successful Admit().
  void Release();

  struct Snapshot {
    uint64_t in_flight = 0;
    uint64_t admitted = 0;  // lifetime successful admissions
    uint64_t shed = 0;      // lifetime kOverloaded refusals
    uint64_t peak_in_flight = 0;
  };
  Snapshot snapshot() const;

  size_t max_in_flight() const { return max_in_flight_; }

 private:
  const size_t max_in_flight_;
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> peak_in_flight_{0};
};

}  // namespace rodin::server

#endif  // RODIN_SERVER_GOVERNOR_H_
