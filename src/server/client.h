#ifndef RODIN_SERVER_CLIENT_H_
#define RODIN_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "api/query_options.h"
#include "common/status.h"
#include "server/wire.h"
#include "storage/value.h"

namespace rodin::server {

/// What one round-trip produced. `rows_streamed` counts rows received over
/// the wire (fewer than rows_produced when the caller stopped early);
/// `rows_produced` / `measured_cost` are the server-side figures from the
/// terminal STATUS frame.
struct ClientResult {
  Status status;
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  uint64_t rows_streamed = 0;
  uint64_t rows_produced = 0;
  double measured_cost = -1;

  bool ok() const { return status.ok(); }
};

/// A blocking rodin_serve client over one TCP connection: Connect performs
/// the HELLO handshake, Query / Prepare / Execute are synchronous
/// request/response round-trips. This is the reference protocol
/// implementation — server_test, the tutorial and rodin_load all speak
/// through it.
///
/// Thread model: one request at a time from one thread (matching the
/// server's one-in-flight-per-connection rule). The single exception is
/// CancelActive(), which may be called from another thread to cancel the
/// request currently blocking in Query/Execute — frame *writes* are
/// serialized internally so the CANCEL may interleave safely.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and completes the HELLO handshake.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  /// Server-assigned connection id (from HELLO_OK).
  uint64_t connection_id() const { return connection_id_; }
  /// Negotiated protocol version (min(ours, server's), from HELLO_OK).
  uint32_t protocol_version() const { return proto_version_; }

  /// Runs a query and streams the reply until the terminal STATUS frame.
  /// `stop_after_rows` > 0 abruptly closes the socket once that many rows
  /// have arrived — the test hook for "client vanishes mid-stream"; the
  /// result then reports kCancelled locally. `collect_rows` false discards
  /// row data after counting (load-driver mode).
  ClientResult Query(const std::string& text,
                     const QueryOptions& options = {},
                     uint64_t stop_after_rows = 0, bool collect_rows = true);

  /// PREPARE round-trip; fills *statement_id on success.
  Status Prepare(const std::string& text, uint64_t* statement_id);

  /// Runs a prepared statement (same streaming semantics as Query).
  ClientResult Execute(uint64_t statement_id,
                       const QueryOptions& options = {},
                       uint64_t stop_after_rows = 0,
                       bool collect_rows = true);

  /// MUTATE round-trip (protocol v2): stages `batch` on this connection's
  /// server-side transaction (opened implicitly by the first Mutate).
  /// Fills *ops_staged with the ops accepted. kConflict (retryable) when
  /// another connection holds the write slot.
  Status Mutate(const MutationBatch& batch, uint64_t* ops_staged = nullptr);

  /// COMMIT round-trip (protocol v2). On success fills *ops_applied and
  /// *stats_version (the post-commit engine stats version). kConflict
  /// (retryable; the transaction stays open server-side) while streaming
  /// cursors are live.
  Status Commit(uint64_t* ops_applied = nullptr,
                uint64_t* stats_version = nullptr);

  /// Sends CANCEL for the request currently in flight (if any). Safe from
  /// another thread while this client blocks in Query/Execute.
  void CancelActive();

  /// Polite shutdown: sends GOODBYE and closes.
  void Goodbye();

  /// Abrupt close, no GOODBYE — from the server's point of view this is a
  /// client crash/disconnect.
  void Close();

 private:
  Status SendFrame(FrameType type, uint64_t request_id,
                   const std::string& payload);
  Status ReadFrame(FrameHeader* header, std::string* payload);
  /// Shared SCHEMA/ROWS/STATUS consumption loop for Query and Execute.
  ClientResult ReadQueryReply(uint64_t request_id, uint64_t stop_after_rows,
                              bool collect_rows);
  /// Shared STATUS-only round-trip for Mutate and Commit.
  Status StatusRoundTrip(FrameType type, const std::string& payload,
                         uint64_t* rows, uint64_t* detail);

  int fd_ = -1;
  uint64_t connection_id_ = 0;
  uint32_t proto_version_ = 0;
  uint64_t next_request_ = 1;
  std::mutex write_mu_;
  std::atomic<uint64_t> active_request_{0};
};

}  // namespace rodin::server

#endif  // RODIN_SERVER_CLIENT_H_
