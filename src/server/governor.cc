#include "server/governor.h"

#include "common/string_util.h"

namespace rodin::server {

Status Governor::Admit() {
  // Optimistic increment, undo on overflow: cheaper than a CAS loop and the
  // transient overshoot is bounded by the number of racing acceptors.
  const uint64_t now = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > max_in_flight_) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    Status s = Status::Error(
        Status::Code::kOverloaded,
        StrFormat("server overloaded: %zu queries in flight; retry with "
                  "backoff",
                  max_in_flight_));
    s.detail = max_in_flight_;
    return s;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  uint64_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (now > peak && !peak_in_flight_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return Status::Ok();
}

void Governor::Release() {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

Governor::Snapshot Governor::snapshot() const {
  Snapshot s;
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.peak_in_flight = peak_in_flight_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rodin::server
