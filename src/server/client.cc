#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace rodin::server {

namespace {

Status SysError(const std::string& what) {
  return Status::Error(Status::Code::kInternal,
                       StrFormat("%s: %s", what.c_str(), strerror(errno)));
}

Status ProtocolViolation(const std::string& what) {
  return Status::Error(Status::Code::kInternal,
                       StrFormat("protocol violation: %s", what.c_str()));
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      connection_id_(other.connection_id_),
      proto_version_(other.proto_version_),
      next_request_(other.next_request_),
      active_request_(other.active_request_.load()) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    connection_id_ = other.connection_id_;
    proto_version_ = other.proto_version_;
    next_request_ = other.next_request_;
    active_request_.store(other.active_request_.load());
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return SysError("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error(Status::Code::kInvalidArgument,
                         StrFormat("bad host: %s", host.c_str()));
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = SysError("connect");
    Close();
    return s;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  PayloadWriter hello;
  hello.U32(kProtocolVersion);
  const uint64_t request_id = next_request_++;
  Status s = SendFrame(FrameType::kHello, request_id, hello.Take());
  if (!s.ok()) {
    Close();
    return s;
  }
  FrameHeader header;
  std::string payload;
  s = ReadFrame(&header, &payload);
  if (!s.ok()) {
    Close();
    return s;
  }
  if (header.type == FrameType::kStatus) {
    PayloadReader r(payload.data(), payload.size());
    Status refusal;
    uint64_t rows;
    double cost;
    if (DecodeStatusPayload(&r, &refusal, &rows, &cost)) {
      Close();
      return refusal;
    }
  }
  if (header.type != FrameType::kHelloOk) {
    Close();
    return ProtocolViolation("expected HELLO_OK");
  }
  PayloadReader r(payload.data(), payload.size());
  uint32_t version;
  std::string banner;
  if (!r.U32(&version) || !r.Str(&banner) || !r.U64(&connection_id_) ||
      !r.AtEnd()) {
    Close();
    return ProtocolViolation("malformed HELLO_OK");
  }
  if (version == 0 || version > kProtocolVersion) {
    Close();
    return ProtocolViolation("server negotiated an unknown version");
  }
  proto_version_ = version;
  return Status::Ok();
}

Status Client::StatusRoundTrip(FrameType type, const std::string& payload,
                               uint64_t* rows, uint64_t* detail) {
  if (!connected()) {
    return Status::Error(Status::Code::kInvalidArgument, "not connected");
  }
  if (proto_version_ < 2) {
    return Status::Error(Status::Code::kInvalidArgument,
                         "server negotiated protocol v1, which has no "
                         "mutation frames");
  }
  const uint64_t request_id = next_request_++;
  Status s = SendFrame(type, request_id, payload);
  if (!s.ok()) return s;
  FrameHeader header;
  std::string reply;
  s = ReadFrame(&header, &reply);
  if (!s.ok()) return s;
  if (header.type != FrameType::kStatus || header.request_id != request_id) {
    return ProtocolViolation("expected STATUS");
  }
  PayloadReader r(reply.data(), reply.size());
  Status outcome;
  uint64_t rows_produced;
  double cost;
  if (!DecodeStatusPayload(&r, &outcome, &rows_produced, &cost) ||
      !r.AtEnd()) {
    return ProtocolViolation("malformed STATUS");
  }
  if (rows != nullptr) *rows = rows_produced;
  if (detail != nullptr) *detail = outcome.detail;
  return outcome;
}

Status Client::Mutate(const MutationBatch& batch, uint64_t* ops_staged) {
  PayloadWriter w;
  EncodeMutationBatch(batch, &w);
  return StatusRoundTrip(FrameType::kMutate, w.Take(), ops_staged, nullptr);
}

Status Client::Commit(uint64_t* ops_applied, uint64_t* stats_version) {
  return StatusRoundTrip(FrameType::kCommit, std::string(), ops_applied,
                         stats_version);
}

ClientResult Client::Query(const std::string& text,
                           const QueryOptions& options,
                           uint64_t stop_after_rows, bool collect_rows) {
  ClientResult result;
  if (!connected()) {
    result.status =
        Status::Error(Status::Code::kInvalidArgument, "not connected");
    return result;
  }
  const uint64_t request_id = next_request_++;
  PayloadWriter w;
  w.Str(text);
  WireQueryOptions::FromQueryOptions(options).Encode(&w, proto_version_);
  active_request_.store(request_id);
  result.status = SendFrame(FrameType::kQuery, request_id, w.Take());
  if (!result.status.ok()) return result;
  return ReadQueryReply(request_id, stop_after_rows, collect_rows);
}

Status Client::Prepare(const std::string& text, uint64_t* statement_id) {
  if (!connected()) {
    return Status::Error(Status::Code::kInvalidArgument, "not connected");
  }
  const uint64_t request_id = next_request_++;
  PayloadWriter w;
  w.Str(text);
  Status s = SendFrame(FrameType::kPrepare, request_id, w.Take());
  if (!s.ok()) return s;

  FrameHeader header;
  std::string payload;
  s = ReadFrame(&header, &payload);
  if (!s.ok()) return s;
  PayloadReader r(payload.data(), payload.size());
  if (header.type == FrameType::kStatus) {
    Status refusal;
    uint64_t rows;
    double cost;
    if (!DecodeStatusPayload(&r, &refusal, &rows, &cost)) {
      return ProtocolViolation("malformed STATUS");
    }
    return refusal;
  }
  if (header.type != FrameType::kPrepareOk) {
    return ProtocolViolation("expected PREPARE_OK");
  }
  if (!r.U64(statement_id) || !r.AtEnd()) {
    return ProtocolViolation("malformed PREPARE_OK");
  }
  return Status::Ok();
}

ClientResult Client::Execute(uint64_t statement_id,
                             const QueryOptions& options,
                             uint64_t stop_after_rows, bool collect_rows) {
  ClientResult result;
  if (!connected()) {
    result.status =
        Status::Error(Status::Code::kInvalidArgument, "not connected");
    return result;
  }
  const uint64_t request_id = next_request_++;
  PayloadWriter w;
  w.U64(statement_id);
  WireQueryOptions::FromQueryOptions(options).Encode(&w, proto_version_);
  active_request_.store(request_id);
  result.status = SendFrame(FrameType::kExecute, request_id, w.Take());
  if (!result.status.ok()) return result;
  return ReadQueryReply(request_id, stop_after_rows, collect_rows);
}

ClientResult Client::ReadQueryReply(uint64_t request_id,
                                    uint64_t stop_after_rows,
                                    bool collect_rows) {
  ClientResult result;
  while (true) {
    FrameHeader header;
    std::string payload;
    result.status = ReadFrame(&header, &payload);
    if (!result.status.ok()) break;
    if (header.request_id != request_id) {
      result.status = ProtocolViolation("reply for a different request");
      break;
    }
    PayloadReader r(payload.data(), payload.size());
    if (header.type == FrameType::kSchema) {
      uint32_t ncols;
      bool ok = r.U32(&ncols);
      for (uint32_t i = 0; ok && i < ncols; ++i) {
        std::string name;
        ok = r.Str(&name);
        if (ok) result.columns.push_back(std::move(name));
      }
      if (!ok || !r.AtEnd()) {
        result.status = ProtocolViolation("malformed SCHEMA");
        break;
      }
      continue;
    }
    if (header.type == FrameType::kRows) {
      uint32_t nrows;
      if (!r.U32(&nrows)) {
        result.status = ProtocolViolation("malformed ROWS");
        break;
      }
      const size_t ncols = result.columns.size();
      bool ok = true;
      for (uint32_t i = 0; ok && i < nrows; ++i) {
        std::vector<Value> row(ncols);
        for (size_t c = 0; ok && c < ncols; ++c) {
          ok = DecodeValue(&r, &row[c]);
        }
        if (ok) {
          ++result.rows_streamed;
          if (collect_rows) result.rows.push_back(std::move(row));
        }
      }
      if (!ok || !r.AtEnd()) {
        result.status = ProtocolViolation("malformed ROWS");
        break;
      }
      if (stop_after_rows > 0 && result.rows_streamed >= stop_after_rows) {
        // The disconnect-mid-stream hook: vanish without a GOODBYE. The
        // server must observe the hangup and cancel the running query.
        Close();
        result.status = Status::Error(Status::Code::kCancelled,
                                      "client disconnected mid-stream");
        return result;
      }
      continue;
    }
    if (header.type == FrameType::kStatus) {
      if (!DecodeStatusPayload(&r, &result.status, &result.rows_produced,
                               &result.measured_cost) ||
          !r.AtEnd()) {
        result.status = ProtocolViolation("malformed STATUS");
      }
      break;
    }
    result.status = ProtocolViolation(
        StrFormat("unexpected frame type %u",
                  static_cast<unsigned>(header.type)));
    break;
  }
  active_request_.store(0);
  return result;
}

void Client::CancelActive() {
  const uint64_t target = active_request_.load();
  if (target == 0 || !connected()) return;
  PayloadWriter w;
  w.U64(target);
  // Header request id 0: CANCEL has no reply, so the id is never echoed
  // (and next_request_ belongs to the thread blocked in Query/Execute).
  SendFrame(FrameType::kCancel, 0, w.Take());
}

void Client::Goodbye() {
  if (!connected()) return;
  SendFrame(FrameType::kGoodbye, next_request_++, std::string());
  Close();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  active_request_.store(0);
}

Status Client::SendFrame(FrameType type, uint64_t request_id,
                         const std::string& payload) {
  const std::string frame = EncodeFrame(type, request_id, payload);
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ < 0) {
    return Status::Error(Status::Code::kInvalidArgument, "not connected");
  }
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return SysError("send");
  }
  return Status::Ok();
}

Status Client::ReadFrame(FrameHeader* header, std::string* payload) {
  char head[kFrameHeaderBytes];
  size_t off = 0;
  while (off < sizeof(head)) {
    const ssize_t n = recv(fd_, head + off, sizeof(head) - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      return Status::Error(Status::Code::kInternal,
                           "server closed the connection");
    }
    return SysError("recv");
  }
  if (!DecodeFrameHeader(head, header)) {
    return ProtocolViolation("oversized frame");
  }
  payload->resize(header->payload_length);
  off = 0;
  while (off < payload->size()) {
    const ssize_t n =
        recv(fd_, payload->data() + off, payload->size() - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      return Status::Error(Status::Code::kInternal,
                           "server closed the connection mid-frame");
    }
    return SysError("recv");
  }
  return Status::Ok();
}

}  // namespace rodin::server
