#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace rodin {

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rodin
