#ifndef RODIN_COMMON_QUERY_CONTEXT_H_
#define RODIN_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rodin {

/// Cooperative cancellation handle. Copies share one flag, so the caller
/// keeps a copy and the running query polls another — including from
/// different threads (the flag is a relaxed atomic; there is no data to
/// publish, only the request itself).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Safe from any thread, any number of times.
  void RequestCancel() const { flag_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The lifecycle budget of one query: deadline, cancel token and memory
/// budget. This is the *single definition* of these knobs — QueryOptions
/// carries one by value, and ExecOptions / OptimizerOptions / the executor
/// engines reference it by pointer (never copy the fields), so there is
/// exactly one source of truth per run.
///
/// The deadline is armed per attempt: `Session` copies the caller's context
/// (the cancel token still shares its flag), calls ArmDeadline() at run
/// start, and threads `const QueryContext*` through every stage. Check() is
/// then a relaxed atomic load plus, when a deadline is set, one clock read —
/// cheap enough for per-morsel and per-move polling, and thread-safe, so
/// parallel search restarts and the streaming cursor's coordinator can all
/// poll the same context.
struct QueryContext {
  /// Wall-clock budget for the whole run (optimize + execute), in
  /// milliseconds. 0 = no deadline.
  uint64_t deadline_ms = 0;

  /// Cancellation handle; keep a copy and RequestCancel() from any thread.
  CancelToken cancel;

  /// Per-query resident-page budget for the buffer pool. The pool degrades
  /// gracefully (its effective LRU capacity is clamped to the budget, so
  /// evicted pages are simply re-charged as misses — accounting stays
  /// exact). The same figure budgets the query's *cumulative live* temp
  /// pages: an operator working set that would exceed the remainder spills
  /// to disk (when `spill` resolves on) or returns a typed
  /// kResourceExhausted (when it resolves off); only a single row too large
  /// for the whole budget is refused unconditionally — no partitioning can
  /// split one row. 0 = unlimited.
  size_t memory_budget_pages = 0;

  /// Tri-state spill override: nullopt inherits the RODIN_SPILL environment
  /// default (on unless RODIN_SPILL=0/off). Engaged true/false forces the
  /// over-budget behaviour above for this run. Spilling never changes rows,
  /// row order, ExecCounters or MeasuredCost — only where row bytes live.
  std::optional<bool> spill;

  /// Temp-page ledger budget override for the spill decision only. Unlike
  /// memory_budget_pages it does NOT clamp the buffer pool's LRU capacity,
  /// so accounting stays bit-identical to an unlimited run while spilling
  /// is forced — the knob CI uses to exercise spill paths everywhere.
  /// Precedence: this value when nonzero, else memory_budget_pages, else
  /// the RODIN_SPILL_BUDGET environment default. 0 = inherit.
  size_t spill_budget_pages = 0;

  /// Starts the deadline clock. Called once per run attempt by Session;
  /// a context that was never armed has no deadline even if deadline_ms is
  /// set (so an unarmed default context checks as kOk everywhere).
  void ArmDeadline() {
    if (deadline_ms == 0) return;
    armed_ = true;
    deadline_at_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(deadline_ms);
  }

  bool has_deadline() const { return armed_; }

  /// The poll: kCancelled beats kDeadlineExceeded beats kOk.
  Status Check() const {
    if (cancel.cancelled()) {
      return Status::Error(Status::Code::kCancelled, "query cancelled");
    }
    if (armed_ && std::chrono::steady_clock::now() >= deadline_at_) {
      return Status::Error(Status::Code::kDeadlineExceeded,
                           "deadline exceeded");
    }
    return Status::Ok();
  }

  /// True when the poll would return non-OK; avoids constructing a Status
  /// on hot paths that only need the boolean.
  bool Expired() const {
    return cancel.cancelled() ||
           (armed_ && std::chrono::steady_clock::now() >= deadline_at_);
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_at_{};
};

}  // namespace rodin

#endif  // RODIN_COMMON_QUERY_CONTEXT_H_
