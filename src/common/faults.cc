#include "common/faults.h"

#include <cstdlib>
#include <sstream>

namespace rodin {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double ToUnit(uint64_t bits) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

FaultInjector::FaultInjector() { ConfigureFromEnv(); }

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

FaultConfig FaultInjector::ParseEnvValue(const std::string& value) {
  FaultConfig config;
  if (value.empty() || value == "0") return config;  // disabled
  config.enabled = true;
  if (value == "1") return config;  // defaults
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "page_fetch") {
      config.page_fetch_fail = std::strtod(val.c_str(), nullptr);
    } else if (key == "alloc") {
      config.alloc_fail = std::strtod(val.c_str(), nullptr);
    } else if (key == "seed") {
      config.seed = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "max") {
      config.max_faults = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "stage") {
      config.force_deadline_stage =
          static_cast<int>(std::strtol(val.c_str(), nullptr, 10));
    } else if (key == "fix_iter") {
      config.force_deadline_fix_iter =
          static_cast<int>(std::strtol(val.c_str(), nullptr, 10));
    }
  }
  return config;
}

void FaultInjector::ConfigureFromEnv() {
  const char* env = std::getenv("RODIN_FAULTS");
  Configure(ParseEnvValue(env != nullptr ? env : ""));
}

void FaultInjector::Configure(const FaultConfig& config) {
  config_ = config;
  rng_state_.store(config.seed, std::memory_order_relaxed);
  faults_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::Draw(double probability) {
  if (!config_.enabled || probability <= 0) return false;
  if (config_.max_faults != 0 &&
      faults_.load(std::memory_order_relaxed) >= config_.max_faults) {
    return false;
  }
  uint64_t state = rng_state_.load(std::memory_order_relaxed);
  uint64_t next;
  uint64_t bits;
  do {
    next = state;
    bits = SplitMix64(&next);
  } while (!rng_state_.compare_exchange_weak(state, next,
                                             std::memory_order_relaxed));
  if (ToUnit(bits) >= probability) return false;
  faults_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::InjectPageFetchFault() {
  return Draw(config_.page_fetch_fail);
}

bool FaultInjector::InjectAllocFault() { return Draw(config_.alloc_fail); }

bool FaultInjector::ForceDeadlineAtStage(int stage) const {
  return config_.enabled && config_.force_deadline_stage == stage;
}

bool FaultInjector::ForceDeadlineAtFixIter(int iter) const {
  return config_.enabled && config_.force_deadline_fix_iter == iter;
}

}  // namespace rodin
