#ifndef RODIN_COMMON_RNG_H_
#define RODIN_COMMON_RNG_H_

#include <cstdint>

namespace rodin {

/// Deterministic 64-bit PRNG (xorshift128+ seeded via SplitMix64).
///
/// Every randomized component of the library (data generators, the
/// Iterative Improvement / Simulated Annealing strategies) takes an
/// explicit `Rng` so that experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the two lanes.
    uint64_t z = seed;
    s0_ = SplitMix(&z);
    s1_ = SplitMix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift128+ forbids the zero state
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Derives an independent, reproducible substream: the (seed, stream)
  /// pair is hashed through SplitMix64 into a fresh generator state, so
  /// streams for different indices are decorrelated and a given pair always
  /// yields the same sequence. This is how parallel search gives each
  /// restart its own RNG — results depend only on (seed, stream index),
  /// never on which worker runs the restart or in what order.
  static Rng Stream(uint64_t seed, uint64_t stream) {
    uint64_t z = seed;
    (void)SplitMix(&z);           // decouple from Rng(seed)'s own lanes
    z ^= 0x9e3779b97f4a7c15ULL * (stream + 1);
    return Rng(SplitMix(&z));
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace rodin

#endif  // RODIN_COMMON_RNG_H_
