#ifndef RODIN_COMMON_STRING_UTIL_H_
#define RODIN_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace rodin {

/// Joins `parts` with `sep` ("a", "b" -> "a.b").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` on the single-character separator `sep`; no empty trimming.
std::vector<std::string> Split(const std::string& s, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rodin

#endif  // RODIN_COMMON_STRING_UTIL_H_
