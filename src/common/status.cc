#include "common/status.h"

namespace rodin {

const char* Status::code_name() const {
  switch (code) {
    case Code::kOk:
      return "ok";
    case Code::kParseError:
      return "parse_error";
    case Code::kSemanticError:
      return "semantic_error";
    case Code::kOptimizeError:
      return "optimize_error";
    case Code::kExecError:
      return "exec_error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  return std::string("[") + code_name() + "] " + message;
}

}  // namespace rodin
