#include "common/status.h"

namespace rodin {

const char* Status::code_name() const {
  switch (code) {
    case Code::kOk:
      return "ok";
    case Code::kParse:
      return "parse";
    case Code::kSemantic:
      return "semantic";
    case Code::kOptimize:
      return "optimize";
    case Code::kExec:
      return "exec";
    case Code::kCancelled:
      return "cancelled";
    case Code::kDeadlineExceeded:
      return "deadline_exceeded";
    case Code::kResourceExhausted:
      return "resource_exhausted";
    case Code::kFault:
      return "fault";
    case Code::kInternal:
      return "internal";
    case Code::kInvalidArgument:
      return "invalid_argument";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  return std::string("[") + code_name() + "] " + message;
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code) {
    case Status::Code::kOk:
      return 0;
    case Status::Code::kParse:
      return 3;
    case Status::Code::kSemantic:
      return 4;
    case Status::Code::kOptimize:
      return 5;
    case Status::Code::kExec:
      return 6;
    case Status::Code::kCancelled:
      return 7;
    case Status::Code::kDeadlineExceeded:
      return 8;
    case Status::Code::kResourceExhausted:
      return 9;
    case Status::Code::kFault:
      return 10;
    case Status::Code::kInternal:
      return 11;
    case Status::Code::kInvalidArgument:
      return 12;
  }
  return 1;
}

}  // namespace rodin
