#include "common/status.h"

namespace rodin {

const char* Status::code_name() const {
  switch (code) {
#define RODIN_STATUS_NAME(code_, name_, exit_, wire_, retry_) \
  case Code::code_:                                           \
    return name_;
    RODIN_STATUS_CODES(RODIN_STATUS_NAME)
#undef RODIN_STATUS_NAME
  }
  return "unknown";
}

bool Status::retryable() const {
  switch (code) {
#define RODIN_STATUS_RETRY(code_, name_, exit_, wire_, retry_) \
  case Code::code_:                                            \
    return retry_;
    RODIN_STATUS_CODES(RODIN_STATUS_RETRY)
#undef RODIN_STATUS_RETRY
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  return std::string("[") + code_name() + "] " + message;
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code) {
#define RODIN_STATUS_EXIT(code_, name_, exit_, wire_, retry_) \
  case Status::Code::code_:                                   \
    return exit_;
    RODIN_STATUS_CODES(RODIN_STATUS_EXIT)
#undef RODIN_STATUS_EXIT
  }
  return 1;
}

uint8_t WireCodeForStatus(const Status& status) {
  switch (status.code) {
#define RODIN_STATUS_WIRE(code_, name_, exit_, wire_, retry_) \
  case Status::Code::code_:                                   \
    return wire_;
    RODIN_STATUS_CODES(RODIN_STATUS_WIRE)
#undef RODIN_STATUS_WIRE
  }
  return 9;  // kInternal's wire code: an unmapped status is a bug
}

Status::Code StatusCodeFromWire(uint8_t wire, bool* ok) {
  if (ok != nullptr) *ok = true;
#define RODIN_STATUS_FROM_WIRE(code_, name_, exit_, wire_, retry_) \
  if (wire == wire_) return Status::Code::code_;
  RODIN_STATUS_CODES(RODIN_STATUS_FROM_WIRE)
#undef RODIN_STATUS_FROM_WIRE
  if (ok != nullptr) *ok = false;
  return Status::Code::kInternal;
}

}  // namespace rodin
