#ifndef RODIN_COMMON_FAULTS_H_
#define RODIN_COMMON_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rodin {

/// Fault-injection configuration. Off by default; enabled by the
/// RODIN_FAULTS environment variable or programmatically (tests).
///
/// RODIN_FAULTS grammar:
///   unset, "" or "0"      — disabled
///   "1"                   — enabled with the defaults below
///   "k=v,k=v,..."         — enabled with overrides, e.g.
///                           "page_fetch=0.01,alloc=0.005,seed=7,max=3,
///                            stage=3,fix_iter=2"
/// Keys: page_fetch (probability a page fetch fails with kFault),
/// alloc (probability a temp-file allocation fails with kFault),
/// seed (RNG seed), max (cap on total injected faults, 0 = unlimited),
/// stage (force kDeadlineExceeded when optimizer stage N starts, 1-based,
/// -1 = off), fix_iter (force kDeadlineExceeded when semi-naive iteration N
/// starts, 1-based, -1 = off).
struct FaultConfig {
  bool enabled = false;
  double page_fetch_fail = 0.01;
  double alloc_fail = 0.005;
  uint64_t seed = 0x5eedfau;
  /// Stop injecting after this many faults (0 = unlimited). Lets tests
  /// force exactly one fault and then observe a clean retry.
  uint64_t max_faults = 0;
  int force_deadline_stage = -1;     // 1-based optimizer stage, -1 = off
  int force_deadline_fix_iter = -1;  // 1-based fixpoint iteration, -1 = off
};

/// Process-global fault injector. Probabilistic decisions draw from one
/// atomic splitmix64 stream, so they are thread-safe; the *sequence* of
/// faults is deterministic for a fixed seed only under single-threaded
/// execution, which is why the injection sites all live on the coordinator
/// thread (page-fetch faults fire at batch boundaries, alloc faults at
/// temp-file allocation — never inside worker morsels).
///
/// The injector is consulted only where ExecOptions::inject_faults /
/// OptimizerOptions wiring turned it on — Session's non-streaming paths.
/// Raw Executor use (differential tests, benches) and streaming cursors
/// never inject, so RODIN_FAULTS=1 leaves their behaviour untouched.
class FaultInjector {
 public:
  /// The singleton, configured from RODIN_FAULTS on first use.
  static FaultInjector& Global();

  /// Replaces the configuration and resets the RNG and fault counter.
  void Configure(const FaultConfig& config);

  /// Re-reads RODIN_FAULTS (test hook; also used by Global() once).
  void ConfigureFromEnv();

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// True if this page fetch should fail with kFault.
  bool InjectPageFetchFault();

  /// True if this temp-file allocation should fail with kFault.
  bool InjectAllocFault();

  /// True if a forced deadline fires at the start of optimizer stage
  /// `stage` (1-based).
  bool ForceDeadlineAtStage(int stage) const;

  /// True if a forced deadline fires at the start of semi-naive iteration
  /// `iter` (1-based).
  bool ForceDeadlineAtFixIter(int iter) const;

  /// Total faults injected since the last Configure().
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

  /// Parses a RODIN_FAULTS value. Exposed for tests.
  static FaultConfig ParseEnvValue(const std::string& value);

 private:
  FaultInjector();

  /// Draws a uniform double in [0,1) and charges one fault against
  /// max_faults if it is below `probability`.
  bool Draw(double probability);

  FaultConfig config_;
  std::atomic<uint64_t> rng_state_{0};
  std::atomic<uint64_t> faults_{0};
};

}  // namespace rodin

#endif  // RODIN_COMMON_FAULTS_H_
