#ifndef RODIN_COMMON_THREAD_POOL_H_
#define RODIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rodin {

/// A small fixed-size worker pool for embarrassingly parallel search work
/// (independent restarts of the §4.5 randomized strategies).
///
/// Tasks are plain `void()` closures; Submit() never blocks the caller
/// (unbounded queue) and Wait() blocks until every submitted task has
/// finished running, after which the pool can be reused for another wave.
/// Determinism is the *caller's* job: tasks must not share mutable state
/// except through their own synchronization, and anything order-dependent
/// (RNG streams, result slots) must be keyed by task index, never by worker
/// or completion order.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one). A pool of one worker is the
  /// degenerate sequential case — same code path, same results.
  explicit ThreadPool(size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  /// Enqueues one task. Never blocks; tasks may run on any worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight.
  void Wait();

  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;   // workers wait for tasks / shutdown
  std::condition_variable all_idle_;     // Wait() waits for drain
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, n) across `threads` workers and blocks
/// until all calls return. With threads <= 1 the calls happen inline, in
/// order, on the calling thread — byte-identical behaviour for deterministic
/// workloads whose tasks are index-keyed.
void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& fn);

}  // namespace rodin

#endif  // RODIN_COMMON_THREAD_POOL_H_
