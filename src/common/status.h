#ifndef RODIN_COMMON_STATUS_H_
#define RODIN_COMMON_STATUS_H_

#include <cstddef>
#include <string>
#include <utility>

namespace rodin {

/// Outcome of one pipeline step (parser, optimizer, executor, session).
/// Replaces the loose `bool ok; std::string error;` pairs: callers branch on
/// the code instead of string-matching error text, and parse errors carry
/// the offending source span.
///
/// The taxonomy distinguishes *why* a query stopped, not merely *where*:
/// budget violations (kCancelled, kDeadlineExceeded, kResourceExhausted)
/// and injected transient faults (kFault, the only retryable code) are
/// separate from genuine parse/semantic/optimize/exec failures, so callers
/// — including rodin_cli's exit codes — can react per class.
struct Status {
  enum class Code {
    kOk,
    kParse,              // surface-syntax error (line/col populated)
    kSemantic,           // query validated against the schema and failed
    kOptimize,           // no plan could be produced
    kExec,               // execution failed
    kCancelled,          // CancelToken fired
    kDeadlineExceeded,   // QueryContext deadline elapsed
    kResourceExhausted,  // memory budget could not be honoured
    kFault,              // injected transient fault (retryable)
    kInternal,           // invariant violation; a bug, never retryable
    kInvalidArgument,    // caller passed an unusable option/knob combination
  };

  Code code = Code::kOk;
  std::string message;
  /// Source span of the offending token (parse errors only; 0 = unknown).
  size_t line = 0;
  size_t col = 0;

  bool ok() const { return code == Code::kOk; }

  /// Only kFault is transient: retrying the same work can succeed.
  bool retryable() const { return code == Code::kFault; }

  static Status Ok() { return Status{}; }
  static Status Error(Code code, std::string message, size_t line = 0,
                      size_t col = 0) {
    return Status{code, std::move(message), line, col};
  }

  /// "ok", "parse", "semantic", "optimize", "exec", "cancelled",
  /// "deadline_exceeded", "resource_exhausted", "fault", "internal",
  /// "invalid_argument".
  const char* code_name() const;

  /// "[parse] parse error at 3:7: expected ..." — the code name prefixed
  /// to the message (which already carries the span for parse errors).
  std::string ToString() const;
};

/// Maps a status to rodin_cli's process exit code: 0 ok, 3 parse,
/// 4 semantic, 5 optimize, 6 exec, 7 cancelled, 8 deadline_exceeded,
/// 9 resource_exhausted, 10 fault, 11 internal, 12 invalid_argument. (1 is
/// the generic shell failure and 2 is reserved for usage errors, so real
/// codes start at 3.)
int ExitCodeForStatus(const Status& status);

}  // namespace rodin

#endif  // RODIN_COMMON_STATUS_H_
