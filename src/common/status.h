#ifndef RODIN_COMMON_STATUS_H_
#define RODIN_COMMON_STATUS_H_

#include <cstddef>
#include <string>
#include <utility>

namespace rodin {

/// Outcome of one pipeline step (parser, optimizer, executor, session).
/// Replaces the loose `bool ok; std::string error;` pairs: callers branch on
/// the code instead of string-matching error text, and parse errors carry
/// the offending source span.
struct Status {
  enum class Code {
    kOk,
    kParseError,     // surface-syntax error (line/col populated)
    kSemanticError,  // query validated against the schema and failed
    kOptimizeError,  // no plan could be produced
    kExecError,      // execution failed
  };

  Code code = Code::kOk;
  std::string message;
  /// Source span of the offending token (parse errors only; 0 = unknown).
  size_t line = 0;
  size_t col = 0;

  bool ok() const { return code == Code::kOk; }

  static Status Ok() { return Status{}; }
  static Status Error(Code code, std::string message, size_t line = 0,
                      size_t col = 0) {
    return Status{code, std::move(message), line, col};
  }

  /// "ok", "parse_error", "semantic_error", "optimize_error", "exec_error".
  const char* code_name() const;

  /// "[parse_error] parse error at 3:7: expected ..." — the code name
  /// prefixed to the message (which already carries the span for parse
  /// errors).
  std::string ToString() const;
};

}  // namespace rodin

#endif  // RODIN_COMMON_STATUS_H_
