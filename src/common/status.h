#ifndef RODIN_COMMON_STATUS_H_
#define RODIN_COMMON_STATUS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace rodin {

/// The single source of truth for the status taxonomy. Every per-code
/// constant — the enumerator, its printable name, rodin_cli's process exit
/// code, the server's on-the-wire error code, and whether a retry of the
/// same work can succeed — lives in this one table, so the CLI and the wire
/// protocol can never drift from each other or from the enum.
///
///   X(enumerator, name, exit_code, wire_code, retryable)
///
/// Exit codes: 0 ok; 1 is the generic shell failure and 2 is reserved for
/// usage errors, so real codes start at 3. Wire codes are part of the
/// server protocol (docs/SERVER.md) and must stay stable forever: append
/// new codes, never renumber.
#define RODIN_STATUS_CODES(X)                           \
  X(kOk, "ok", 0, 0, false)                             \
  X(kParse, "parse", 3, 1, false)                       \
  X(kSemantic, "semantic", 4, 2, false)                 \
  X(kOptimize, "optimize", 5, 3, false)                 \
  X(kExec, "exec", 6, 4, false)                         \
  X(kCancelled, "cancelled", 7, 5, false)               \
  X(kDeadlineExceeded, "deadline_exceeded", 8, 6, false)\
  X(kResourceExhausted, "resource_exhausted", 9, 7, false) \
  X(kFault, "fault", 10, 8, true)                       \
  X(kInternal, "internal", 11, 9, false)                \
  X(kInvalidArgument, "invalid_argument", 12, 10, false)\
  X(kOverloaded, "overloaded", 13, 11, true)             \
  X(kConflict, "conflict", 14, 12, true)

/// Outcome of one pipeline step (parser, optimizer, executor, session,
/// server). Replaces the loose `bool ok; std::string error;` pairs: callers
/// branch on the code instead of string-matching error text, and parse
/// errors carry the offending source span.
///
/// The taxonomy distinguishes *why* a query stopped, not merely *where*:
/// budget violations (kCancelled, kDeadlineExceeded, kResourceExhausted),
/// admission-control shedding (kOverloaded — the server is healthy but
/// full; retry after backoff), injected transient faults (kFault) and
/// write-path contention (kConflict — another writer holds the single
/// mutation slot, or a commit raced a live streaming cursor; retry after
/// the other side finishes) are separate from genuine
/// parse/semantic/optimize/exec failures, so callers — including
/// rodin_cli's exit codes and rodin_serve's error frames — can react per
/// class.
struct Status {
  enum class Code {
#define RODIN_STATUS_ENUMERATOR(code, name, exit_code, wire, retry) code,
    RODIN_STATUS_CODES(RODIN_STATUS_ENUMERATOR)
#undef RODIN_STATUS_ENUMERATOR
  };

  Code code = Code::kOk;
  std::string message;
  /// Source span of the offending token (parse errors only; 0 = unknown).
  size_t line = 0;
  size_t col = 0;
  /// Machine-readable payload for statuses whose *cause* has a magnitude:
  /// the live-streaming-cursor count on Session's retryable-path refusal
  /// (docs/ROBUSTNESS.md), the in-flight query count on a kOverloaded shed.
  /// 0 when the code carries no payload. Travels in the wire STATUS frame.
  uint64_t detail = 0;

  bool ok() const { return code == Code::kOk; }

  /// Transient outcomes where retrying the same work can succeed: an
  /// injected fault (kFault), an admission-control shed (kOverloaded —
  /// back off first; the server refused the work without starting it), or
  /// a write-path conflict (kConflict — the single-writer slot or a live
  /// cursor blocked the mutation; retry once it drains). Distinct from
  /// kResourceExhausted, which means *this query's* budget cannot be
  /// honoured — retrying without a bigger budget cannot succeed.
  bool retryable() const;

  static Status Ok() { return Status{}; }
  static Status Error(Code code, std::string message, size_t line = 0,
                      size_t col = 0) {
    return Status{code, std::move(message), line, col};
  }

  /// "ok", "parse", "semantic", "optimize", "exec", "cancelled",
  /// "deadline_exceeded", "resource_exhausted", "fault", "internal",
  /// "invalid_argument", "overloaded", "conflict".
  const char* code_name() const;

  /// "[parse] parse error at 3:7: expected ..." — the code name prefixed
  /// to the message (which already carries the span for parse errors).
  std::string ToString() const;
};

/// Maps a status to rodin_cli's process exit code (the exit_code column of
/// RODIN_STATUS_CODES): 0 ok, 3 parse, 4 semantic, 5 optimize, 6 exec,
/// 7 cancelled, 8 deadline_exceeded, 9 resource_exhausted, 10 fault,
/// 11 internal, 12 invalid_argument, 13 overloaded, 14 conflict.
int ExitCodeForStatus(const Status& status);

/// Maps a status code to the stable wire error code carried in the server's
/// STATUS frames (the wire_code column of RODIN_STATUS_CODES). Same table
/// as ExitCodeForStatus by construction, so the two surfaces cannot drift.
uint8_t WireCodeForStatus(const Status& status);

/// Inverse of WireCodeForStatus. Unknown wire codes (a newer server than
/// client) conservatively map to kInternal; *ok is set false in that case.
Status::Code StatusCodeFromWire(uint8_t wire, bool* ok = nullptr);

}  // namespace rodin

#endif  // RODIN_COMMON_STATUS_H_
