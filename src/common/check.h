#ifndef RODIN_COMMON_CHECK_H_
#define RODIN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// RODIN_CHECK(cond, msg): invariant check that aborts with a location
/// message on failure. Used for programmer errors (schema misuse, malformed
/// plans); data-dependent failures surface through status returns instead.
#define RODIN_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RODIN_CHECK failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // RODIN_COMMON_CHECK_H_
