#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace rodin {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  RODIN_CHECK(task != nullptr, "null task");
  {
    std::unique_lock<std::mutex> lock(mu_);
    RODIN_CHECK(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace rodin
