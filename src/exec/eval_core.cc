#include "exec/eval_core.h"

#include "common/check.h"

namespace rodin {

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  const int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

void ExpandValue(const Value& v, std::vector<Value>* out) {
  if (v.is_null()) return;
  if (v.is_collection()) {
    for (const Value& e : v.AsCollection().elems) ExpandValue(e, out);
    return;
  }
  out->push_back(v);
}

bool SplitProbe(const Expr& cmp, Value* literal, bool* path_on_left) {
  if (cmp.kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = cmp.children()[0];
  const ExprPtr& r = cmp.children()[1];
  if (l->kind() == ExprKind::kVarPath && r->kind() == ExprKind::kLiteral) {
    *literal = r->literal();
    *path_on_left = true;
    return true;
  }
  if (r->kind() == ExprKind::kVarPath && l->kind() == ExprKind::kLiteral) {
    *literal = l->literal();
    *path_on_left = false;
    return true;
  }
  return false;
}

void Navigate(EvalContext* ctx, const Value& start,
              const std::vector<std::string>& path, size_t step,
              std::vector<Value>* out) {
  if (start.is_null()) return;
  if (start.is_collection()) {
    for (const Value& e : start.AsCollection().elems) {
      Navigate(ctx, e, path, step, out);
    }
    return;
  }
  if (step == path.size()) {
    out->push_back(start);
    return;
  }
  if (!start.is_ref()) return;  // atomic value with residual path: no match
  const Oid oid = start.AsRef();
  const std::string& attr = path[step];
  const std::string& extent = ctx->db->ExtentNameOf(oid);
  const ClassDef* cls = ctx->db->schema().FindClass(extent);
  if (cls != nullptr) {
    const Attribute* a = cls->FindAttribute(attr);
    if (a != nullptr && a->computed) {
      ++*ctx->method_calls;
      *ctx->method_cost_fp += MethodCostToFp(a->method_cost);
      // Methods read their receiver: charge the record access.
      ctx->db->ChargeRecordAccess(oid, {}, ctx->charger);
      const Value v = ctx->db->InvokeMethod(oid, attr);
      Navigate(ctx, v, path, step + 1, out);
      return;
    }
  }
  const Value v = ctx->db->GetCharged(oid, attr, ctx->charger);
  Navigate(ctx, v, path, step + 1, out);
}

std::vector<Value> EvalMulti(EvalContext* ctx, const RowSchema& schema,
                             const Row& row, const ExprPtr& expr) {
  std::vector<Value> out;
  if (expr == nullptr) return out;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      out.push_back(expr->literal());
      return out;
    case ExprKind::kVarPath: {
      int col = -1;
      std::vector<std::string> rest;
      RODIN_CHECK(schema.ResolveVarPath(expr->var(), expr->path(), &col, &rest),
                  "unresolvable variable path in executor");
      Navigate(ctx, row[col], rest, 0, &out);
      return out;
    }
    case ExprKind::kArith: {
      const std::vector<Value> l =
          EvalMulti(ctx, schema, row, expr->children()[0]);
      const std::vector<Value> r =
          EvalMulti(ctx, schema, row, expr->children()[1]);
      for (const Value& a : l) {
        for (const Value& b : r) {
          if (a.is_int() && b.is_int()) {
            out.push_back(Value::Int(expr->arith_op() == ArithOp::kAdd
                                         ? a.AsInt() + b.AsInt()
                                         : a.AsInt() - b.AsInt()));
          } else {
            const double x = a.AsNumber();
            const double y = b.AsNumber();
            out.push_back(Value::Real(
                expr->arith_op() == ArithOp::kAdd ? x + y : x - y));
          }
        }
      }
      return out;
    }
    case ExprKind::kCompare:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
      out.push_back(Value::Bool(EvalPred(ctx, schema, row, expr)));
      return out;
  }
  return out;
}

bool EvalPred(EvalContext* ctx, const RowSchema& schema, const Row& row,
              const ExprPtr& pred) {
  if (pred == nullptr) return true;
  switch (pred->kind()) {
    case ExprKind::kAnd:
      for (const ExprPtr& c : pred->children()) {
        if (!EvalPred(ctx, schema, row, c)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const ExprPtr& c : pred->children()) {
        if (EvalPred(ctx, schema, row, c)) return true;
      }
      return false;
    case ExprKind::kNot:
      return !EvalPred(ctx, schema, row, pred->children()[0]);
    case ExprKind::kCompare: {
      const std::vector<Value> l =
          EvalMulti(ctx, schema, row, pred->children()[0]);
      const std::vector<Value> r =
          EvalMulti(ctx, schema, row, pred->children()[1]);
      // Exists-semantics over multi-valued paths.
      for (const Value& a : l) {
        for (const Value& b : r) {
          if (CompareValues(pred->compare_op(), a, b)) return true;
        }
      }
      return false;
    }
    case ExprKind::kLiteral:
      return pred->literal().is_bool() && pred->literal().AsBool();
    case ExprKind::kArith:
      return false;  // a bare arithmetic expression is not a predicate
    case ExprKind::kVarPath: {
      const std::vector<Value> vals = EvalMulti(ctx, schema, row, pred);
      for (const Value& v : vals) {
        if (v.is_bool() && v.AsBool()) return true;
      }
      return false;
    }
  }
  return false;
}

ExprPtr ExtractIndexProbe(const PTNode& node, const std::string& inner_binding,
                          ExprPtr* residual_pred) {
  ExprPtr probe;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c :
       (node.pred == nullptr ? std::vector<ExprPtr>{} : node.pred->Conjuncts())) {
    if (probe == nullptr && c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq) {
      const ExprPtr& l = c->children()[0];
      const ExprPtr& r = c->children()[1];
      auto is_inner_attr = [&](const ExprPtr& e) {
        return e->kind() == ExprKind::kVarPath && e->var() == inner_binding &&
               e->path().size() == 1 && e->path()[0] == node.join_index_attr;
      };
      if (is_inner_attr(l) && r->FreeVars().count(inner_binding) == 0) {
        probe = r;
        continue;
      }
      if (is_inner_attr(r) && l->FreeVars().count(inner_binding) == 0) {
        probe = l;
        continue;
      }
    }
    residual.push_back(c);
  }
  *residual_pred = ConjunctionOf(std::move(residual));
  return probe;
}

bool HasForeignDelta(const PTNode& tree, const std::string& own) {
  if (tree.kind == PTKind::kDelta && tree.fix_name != own) return true;
  for (const auto& c : tree.children) {
    if (HasForeignDelta(*c, own)) return true;
  }
  return false;
}

}  // namespace rodin
