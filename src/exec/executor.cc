#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/faults.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "exec/batch_engine.h"
#include "exec/exec_abort.h"
#include "exec/eval_core.h"
#include "exec/row_batch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/spill_file.h"

namespace rodin {

TempFile AllocateTempFile(Database* db, size_t rows, size_t ncols) {
  const uint64_t bytes =
      static_cast<uint64_t>(rows) * 16 * std::max<size_t>(1, ncols);
  TempFile temp;
  temp.pages =
      std::max<uint64_t>(1, (bytes + kPageSizeBytes - 1) / kPageSizeBytes);
  temp.first = db->AllocatePages(temp.pages);
  return temp;
}

void ChargeTempScan(const TempFile& temp, PageCharger* charger) {
  for (uint64_t p = 0; p < temp.pages; ++p) charger->Charge(temp.first + p);
}

Executor::Executor(Database* db, CostParams params)
    : db_(db), params_(params) {
  RODIN_CHECK(db != nullptr, "null database");
  RODIN_CHECK(db->finalized(), "executor needs a finalized database");
  start_misses_ = db_->buffer_pool().stats().misses;
}

Executor::~Executor() = default;

double Executor::MeasuredCost() const {
  // Saturating delta: a concurrent session's ResetMeasurement can move the
  // shared pool's miss counter below this executor's watermark; clamp to 0
  // instead of wrapping into an absurd cost.
  const uint64_t now = db_->buffer_pool().stats().misses;
  const double misses =
      now >= start_misses_ ? static_cast<double>(now - start_misses_) : 0.0;
  return misses * params_.pr +
         static_cast<double>(counters_.predicate_evals) * params_.ev_tuple +
         counters_.method_cost * params_.method_weight;
}

void Executor::ResetMeasurement(bool clear_buffer) {
  counters_ = ExecCounters{};
  method_cost_fp_ = 0;
  spill_stats_ = SpillStats{};
  op_stats_.clear();
  if (clear_buffer) {
    db_->buffer_pool().Clear();
  } else {
    db_->buffer_pool().ResetStats();
  }
  start_misses_ = db_->buffer_pool().stats().misses;
}

void Executor::ResetMeasurementShared() {
  counters_ = ExecCounters{};
  method_cost_fp_ = 0;
  spill_stats_ = SpillStats{};
  op_stats_.clear();
  start_misses_ = db_->buffer_pool().stats().misses;
}

ThreadPool* Executor::PoolFor(size_t threads) {
  if (threads <= 1) return nullptr;
  for (const auto& pool : pools_) {
    if (pool->thread_count() == threads) return pool.get();
  }
  pools_.push_back(std::make_unique<ThreadPool>(threads));
  return pools_.back().get();
}

void Executor::CheckLegacyBudget(int fix_iter) {
  if (inject_faults_) {
    FaultInjector& fi = FaultInjector::Global();
    if (fix_iter > 0 && fi.ForceDeadlineAtFixIter(fix_iter)) {
      throw internal::ExecAbort(Status::Error(
          Status::Code::kDeadlineExceeded,
          StrFormat("deadline exceeded (forced at fix iteration %d)",
                    fix_iter)));
    }
    if (fi.InjectPageFetchFault()) {
      throw internal::ExecAbort(Status::Error(
          Status::Code::kFault, "injected page-fetch failure"));
    }
  }
  if (query_ != nullptr) {
    if (Status s = query_->Check(); !s.ok()) {
      throw internal::ExecAbort(std::move(s));
    }
  }
}

namespace {

const char* SpillOpName(SpillOpTag tag) {
  switch (tag) {
    case SpillOpTag::kJoinBuild:
      return "join-build";
    case SpillOpTag::kFixDelta:
      return "fix-delta";
    case SpillOpTag::kDedup:
      return "dedup";
    case SpillOpTag::kFixCache:
      return "fix-cache";
    case SpillOpTag::kUnion:
      return "union";
  }
  return "unknown";
}

}  // namespace

Status MakeResourceExhausted(SpillOpTag tag, uint64_t requested,
                             uint64_t budget, uint64_t live, bool row_refusal) {
  const uint64_t remaining = budget > live ? budget - live : 0;
  Status s = Status::Error(
      Status::Code::kResourceExhausted,
      row_refusal
          ? StrFormat("%s: a single row needs %llu page(s), more than the "
                      "whole %llu-page budget — no partitioning can split "
                      "one row",
                      SpillOpName(tag),
                      static_cast<unsigned long long>(requested),
                      static_cast<unsigned long long>(budget))
          : StrFormat("%s: temp file of %llu pages exceeds the remaining "
                      "budget (%llu of %llu pages live) and spilling is off",
                      SpillOpName(tag),
                      static_cast<unsigned long long>(requested),
                      static_cast<unsigned long long>(live),
                      static_cast<unsigned long long>(budget)));
  s.detail = PackResourceDetail(tag, requested, remaining);
  return s;
}

/// Pages one row of `ncols` columns occupies in the 16-bytes-per-value temp
/// model; a row wider than the whole budget cannot be spilled around.
uint64_t TempRowPages(size_t ncols) {
  const uint64_t bytes = 16 * std::max<size_t>(1, ncols);
  return std::max<uint64_t>(1, (bytes + kPageSizeBytes - 1) / kPageSizeBytes);
}

TempFile Executor::AllocTempChecked(size_t rows, size_t ncols, SpillOpTag tag,
                                    bool* spilled) {
  if (spilled != nullptr) *spilled = false;
  if (inject_faults_ && FaultInjector::Global().InjectAllocFault()) {
    throw internal::ExecAbort(Status::Error(
        Status::Code::kFault, "injected allocation failure"));
  }
  TempFile temp = AllocateTempFile(db_, rows, ncols);
  const size_t budget = ledger_budget_pages_;
  if (budget == 0) return temp;
  // A single oversized row is a typed refusal even with spilling on.
  const uint64_t row_pages = TempRowPages(ncols);
  if (row_pages > budget) {
    throw internal::ExecAbort(MakeResourceExhausted(
        tag, row_pages, budget, live_temp_pages_, /*row_refusal=*/true));
  }
  if (live_temp_pages_ + temp.pages > budget) {
    if (!spill_enabled_) {
      throw internal::ExecAbort(MakeResourceExhausted(
          tag, temp.pages, budget, live_temp_pages_, /*row_refusal=*/false));
    }
    // Logical spill: the legacy engine is the oracle, so its rows stay in
    // memory — the ledger just stops charging, exactly as if the payload
    // had moved to disk. Answers and accounting are untouched.
    ++spill_stats_.spills;
    static obs::Counter* spills =
        obs::MetricsRegistry::Global().GetCounter("rodin.spill.spills");
    spills->Add(1);
    if (spilled != nullptr) *spilled = true;
    return temp;
  }
  live_temp_pages_ += temp.pages;
  return temp;
}

void Executor::ReleaseTempPages(uint64_t pages) {
  live_temp_pages_ -= std::min<uint64_t>(live_temp_pages_, pages);
}

bool CompiledEvalEnvDefault() {
  static const bool on = [] {
    const char* v = std::getenv("RODIN_COMPILED_EVAL");
    return v != nullptr && v[0] != '\0' && std::string(v) != "0";
  }();
  return on;
}

bool SpillEnvDefault() {
  static const bool on = [] {
    const char* v = std::getenv("RODIN_SPILL");
    if (v == nullptr || v[0] == '\0') return true;
    const std::string s(v);
    return s != "0" && s != "off";
  }();
  return on;
}

size_t SpillBudgetEnvDefault() {
  static const size_t pages = [] {
    const char* v = std::getenv("RODIN_SPILL_BUDGET");
    if (v == nullptr || v[0] == '\0') return size_t{0};
    return static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }();
  return pages;
}

bool EffectiveSpillEnabled(const QueryContext* query) {
  if (query != nullptr && query->spill.has_value()) return *query->spill;
  return SpillEnvDefault();
}

size_t EffectiveSpillBudgetPages(const QueryContext* query) {
  if (query != nullptr) {
    if (query->spill_budget_pages > 0) return query->spill_budget_pages;
    if (query->memory_budget_pages > 0) return query->memory_budget_pages;
  }
  return SpillBudgetEnvDefault();
}

void Executor::EmitExecMetrics(size_t rows) {
  static obs::Counter* execs =
      obs::MetricsRegistry::Global().GetCounter("rodin.exec.executions");
  static obs::Counter* produced =
      obs::MetricsRegistry::Global().GetCounter("rodin.exec.rows_produced");
  execs->Add(1);
  produced->Add(rows);
}

// --- Legacy whole-table evaluator (ExecOptions::use_legacy) ----------------
//
// The pre-batching engine: every node materializes its full result in one
// recursive call. Kept as the differential-testing oracle and the bench
// baseline; the batched engine reproduces its accounting bit for bit.
// Expression evaluation and counting go through eval_core with an
// EvalContext wired directly at the executor's counters and buffer pool.

Table Executor::EvalEntity(const PTNode& node) {
  Table out;
  out.schema.cols = node.cols;
  db_->ScanEntity(node.entity, [&](Oid oid, const std::vector<Value>&) {
    out.rows.push_back({Value::Ref(oid)});
  });
  return out;
}

Table Executor::EvalDelta(const PTNode& node) {
  auto it = deltas_.find(node.fix_name);
  RODIN_CHECK(it != deltas_.end(), "delta referenced outside its fixpoint");
  const Table* delta = it->second.first;
  ChargeTempScan(it->second.second, &db_->buffer_pool());
  Table out;
  out.schema.cols = node.cols;
  RODIN_CHECK(delta->schema.cols.size() == node.cols.size(),
              "delta column arity mismatch");
  out.rows = delta->rows;
  return out;
}

Table Executor::EvalSel(const PTNode& node) {
  EvalContext ec{db_, &db_->buffer_pool(), &counters_.predicate_evals,
                 &counters_.method_calls, &method_cost_fp_};
  const PTNode& child = *node.children[0];
  Table out;
  out.schema.cols = node.cols;

  if (node.sel_access != SelAccess::kSeqScan) {
    RODIN_CHECK(child.kind == PTKind::kEntity, "index access needs entity");
    RODIN_CHECK(node.sel_index != nullptr, "index access without an index");
    Value literal;
    bool path_left = true;
    RODIN_CHECK(node.sel_index_pred != nullptr &&
                    SplitProbe(*node.sel_index_pred, &literal, &path_left),
                "malformed index probe predicate");
    std::vector<uint64_t> payloads;
    if (node.sel_access == SelAccess::kIndexEq) {
      payloads = node.sel_index->Lookup(literal, &db_->buffer_pool());
    } else {
      // One-sided range: orient by operator and which side the path is on.
      const CompareOp op = node.sel_index_pred->compare_op();
      const bool upper = path_left ? (op == CompareOp::kLt || op == CompareOp::kLe)
                                   : (op == CompareOp::kGt || op == CompareOp::kGe);
      const bool strict = op == CompareOp::kLt || op == CompareOp::kGt;
      if (upper) {
        payloads = node.sel_index->RangeLookup(Value::Null(), false, literal,
                                               strict, &db_->buffer_pool());
      } else {
        payloads = node.sel_index->RangeLookup(literal, strict, Value::Null(),
                                               false, &db_->buffer_pool());
      }
    }
    for (uint64_t p : payloads) {
      const Oid oid = db_->PayloadToOid(child.entity.extent, p);
      db_->ChargeRecordAccess(oid, {});
      Row row = {Value::Ref(oid)};
      ++counters_.predicate_evals;
      if (EvalPred(&ec, out.schema, row, node.pred)) {
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }

  if (child.kind == PTKind::kEntity) {
    // Fused scan + filter: one pass over the extent (Figure 5's Sel(C)).
    db_->ScanEntity(child.entity, [&](Oid oid, const std::vector<Value>&) {
      Row row = {Value::Ref(oid)};
      ++counters_.predicate_evals;
      if (EvalPred(&ec, out.schema, row, node.pred)) {
        out.rows.push_back(std::move(row));
      }
    });
    return out;
  }

  Table input = Eval(child);
  for (Row& row : input.rows) {
    ++counters_.predicate_evals;
    if (EvalPred(&ec, input.schema, row, node.pred)) {
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Table Executor::EvalProj(const PTNode& node) {
  EvalContext ec{db_, &db_->buffer_pool(), &counters_.predicate_evals,
                 &counters_.method_calls, &method_cost_fp_};
  Table input = Eval(*node.children[0]);
  Table out;
  out.schema.cols = node.cols;
  for (const Row& row : input.rows) {
    // Cartesian product of the (possibly multi-valued) projections.
    std::vector<std::vector<Value>> cols;
    bool any_empty = false;
    for (const OutCol& c : node.proj) {
      cols.push_back(EvalMulti(&ec, input.schema, row, c.expr));
      if (cols.back().empty()) any_empty = true;
    }
    if (any_empty) continue;
    std::vector<size_t> idx(cols.size(), 0);
    bool done = false;
    while (!done) {
      Row r;
      r.reserve(cols.size());
      for (size_t i = 0; i < cols.size(); ++i) r.push_back(cols[i][idx[i]]);
      out.rows.push_back(std::move(r));
      // Odometer increment, rightmost column fastest.
      size_t k = cols.size();
      while (true) {
        if (k == 0) {
          done = true;
          break;
        }
        --k;
        if (++idx[k] < cols[k].size()) break;
        idx[k] = 0;
      }
    }
  }
  if (node.dedup) out.Dedup();
  return out;
}

Table Executor::EvalEJ(const PTNode& node) {
  EvalContext ec{db_, &db_->buffer_pool(), &counters_.predicate_evals,
                 &counters_.method_calls, &method_cost_fp_};
  const PTNode& left_node = *node.children[0];
  const PTNode& right_node = *node.children[1];
  Table left = Eval(left_node);
  Table out;
  out.schema.cols = node.cols;

  if (node.algo == JoinAlgo::kIndexJoin) {
    RODIN_CHECK(right_node.kind == PTKind::kEntity,
                "index join needs an entity inner");
    RODIN_CHECK(node.join_index != nullptr, "index join without an index");
    ExprPtr residual_pred;
    const ExprPtr probe =
        ExtractIndexProbe(node, right_node.binding, &residual_pred);
    RODIN_CHECK(probe != nullptr, "index join probe not found in predicate");

    for (const Row& lrow : left.rows) {
      const std::vector<Value> keys = EvalMulti(&ec, left.schema, lrow, probe);
      for (const Value& key : keys) {
        const std::vector<uint64_t> payloads =
            node.join_index->Lookup(key, &db_->buffer_pool());
        for (uint64_t p : payloads) {
          const Oid oid = db_->PayloadToOid(right_node.entity.extent, p);
          db_->ChargeRecordAccess(oid, {});
          Row row = lrow;
          row.push_back(Value::Ref(oid));
          ++counters_.predicate_evals;
          if (EvalPred(&ec, out.schema, row, residual_pred)) {
            out.rows.push_back(std::move(row));
          }
        }
      }
    }
    return out;
  }

  // Nested loop. The inner is evaluated once; re-scans of an entity inner
  // charge its pages per outer row (buffer hits when it fits).
  Table right = Eval(right_node);
  const bool inner_entity =
      right_node.kind == PTKind::kEntity || right_node.kind == PTKind::kDelta;
  TempFile temp;
  std::vector<PageId> inner_pages;
  if (inner_entity && right_node.kind == PTKind::kEntity) {
    const Extent* e = db_->FindExtent(right_node.entity.extent);
    inner_pages = e->ScanPages(right_node.entity.vfrag, right_node.entity.hfrag);
  } else if (!inner_entity) {
    temp = AllocTempChecked(right.rows.size(), right.schema.cols.size(),
                            SpillOpTag::kJoinBuild);
  }

  bool first_outer = true;
  for (const Row& lrow : left.rows) {
    if (!first_outer) {
      // Re-scan charge for the inner.
      if (!inner_pages.empty()) {
        for (PageId p : inner_pages) db_->buffer_pool().Fetch(p);
      } else if (temp.pages > 0) {
        ChargeTempScan(temp, &db_->buffer_pool());
      }
      // Delta inners are charged by EvalDelta once; re-scans of the delta
      // temp are charged here through deltas_.
      if (right_node.kind == PTKind::kDelta) {
        auto it = deltas_.find(right_node.fix_name);
        if (it != deltas_.end()) {
          ChargeTempScan(it->second.second, &db_->buffer_pool());
        }
      }
    }
    first_outer = false;
    for (const Row& rrow : right.rows) {
      Row row = lrow;
      row.insert(row.end(), rrow.begin(), rrow.end());
      ++counters_.predicate_evals;
      if (EvalPred(&ec, out.schema, row, node.pred)) {
        out.rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

Table Executor::EvalIJ(const PTNode& node) {
  EvalContext ec{db_, &db_->buffer_pool(), &counters_.predicate_evals,
                 &counters_.method_calls, &method_cost_fp_};
  Table input = Eval(*node.children[0]);
  Table out;
  out.schema.cols = node.cols;
  int col = -1;
  std::vector<std::string> rest;
  RODIN_CHECK(input.schema.ResolveVarPath(node.src_var, {node.attr}, &col, &rest),
              "IJ source unresolvable at runtime");
  for (const Row& row : input.rows) {
    std::vector<Value> targets;
    if (rest.empty()) {
      // Dotted column: the reference is already materialized in the row.
      ExpandValue(row[col], &targets);
    } else {
      Navigate(&ec, row[col], {node.attr}, 0, &targets);
    }
    for (const Value& t : targets) {
      if (!t.is_ref()) continue;
      db_->ChargeRecordAccess(t.AsRef(), {});
      Row r = row;
      r.push_back(t);
      out.rows.push_back(std::move(r));
    }
  }
  return out;
}

Table Executor::EvalPIJ(const PTNode& node) {
  Table input = Eval(*node.children[0]);
  Table out;
  out.schema.cols = node.cols;
  const int col = input.schema.IndexOf(node.src_var);
  RODIN_CHECK(col >= 0, "PIJ source column missing at runtime");
  for (const Row& row : input.rows) {
    if (!row[col].is_ref()) continue;
    const auto entries =
        node.path_index->Lookup(row[col].AsRef(), &db_->buffer_pool());
    for (const std::vector<Oid>* entry : entries) {
      Row r = row;
      for (size_t i = 0; i < node.path_out_vars.size(); ++i) {
        if (!node.path_out_vars[i].empty()) {
          r.push_back(Value::Ref((*entry)[i + 1]));
        }
      }
      out.rows.push_back(std::move(r));
    }
  }
  return out;
}

Table Executor::EvalUnion(const PTNode& node) {
  Table out;
  out.schema.cols = node.cols;
  for (const auto& c : node.children) {
    Table t = Eval(*c);
    for (Row& r : t.rows) out.rows.push_back(std::move(r));
  }
  out.Dedup();
  return out;
}

Table Executor::EvalFix(const PTNode& node) {
  const bool cacheable = !HasForeignDelta(node, node.fix_name);
  std::string key;
  if (cacheable) {
    key = node.Fingerprint();
    auto it = fix_cache_.find(key);
    if (it != fix_cache_.end()) {
      ChargeTempScan(it->second.temp, &db_->buffer_pool());
      if (it->second.spill != nullptr) {
        // The batched engine spilled this entry's payload; rematerialize it
        // from disk (one read-back pass, tracked outside MeasuredCost).
        Table out;
        out.schema.cols = node.cols;
        it->second.spill->ReadAll(&out.rows);
        ++spill_stats_.passes;
        return out;
      }
      return it->second.result;
    }
  }
  Table base = Eval(*node.children[0]);
  base.Dedup();

  Table result;
  result.schema.cols = node.cols;
  result.rows = base.rows;

  std::set<Row, bool (*)(const Row&, const Row&)> seen(&Table::RowLess);
  for (const Row& r : base.rows) seen.insert(r);

  // Semi-naive: feed only the last iteration's new tuples into the
  // recursive arm. Naive mode feeds the whole accumulated result each
  // round (re-deriving everything) — the evaluation strategy Figure 5's
  // cost formula improves on.
  Table delta = base;
  bool progress = true;
  int iter = 0;
  while (progress && !result.rows.empty()) {
    // Budget poll at the iteration boundary: each iteration leaves `result`
    // consistent, so aborting here loses only future derivations.
    CheckLegacyBudget(++iter);
    ++counters_.fix_iterations;
    const Table& input = node.naive_fix ? result : delta;
    if (!node.naive_fix && delta.rows.empty()) break;
    bool delta_spilled = false;
    const TempFile temp =
        AllocTempChecked(input.rows.size(), input.schema.cols.size(),
                         SpillOpTag::kFixDelta, &delta_spilled);
    deltas_[node.fix_name] = {&input, temp};
    Table produced = Eval(*node.children[1]);
    deltas_.erase(node.fix_name);
    // Per-iteration delta temps are genuinely freed here — the one temp
    // class the ledger releases mid-query.
    if (!delta_spilled) ReleaseTempPages(temp.pages);

    Table next;
    next.schema = result.schema;
    for (Row& r : produced.rows) {
      if (seen.insert(r).second) {
        result.rows.push_back(r);
        next.rows.push_back(std::move(r));
      }
    }
    progress = !next.rows.empty();
    delta = std::move(next);
  }
  if (cacheable) {
    // The caching decision is budget-independent (a later occurrence must
    // charge the same temp scan under any budget); an over-budget payload
    // logically spills — this engine keeps the rows in memory either way.
    FixCacheEntry entry;
    entry.temp = AllocTempChecked(result.rows.size(),
                                  result.schema.cols.size(),
                                  SpillOpTag::kFixCache);
    entry.result = result;
    fix_cache_[key] = std::move(entry);
  }
  return result;
}

Table Executor::Eval(const PTNode& node) {
  if (!collect_op_stats_) return EvalNode(node);
  const uint64_t fetches_before = db_->buffer_pool().stats().fetches;
  const auto t0 = std::chrono::steady_clock::now();
  Table out = EvalNode(node);
  OpStats& s = op_stats_[&node];
  ++s.invocations;
  s.rows += out.rows.size();
  s.pages += db_->buffer_pool().stats().fetches - fetches_before;
  s.micros +=
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

Table Executor::EvalNode(const PTNode& node) {
  switch (node.kind) {
    case PTKind::kEntity:
      return EvalEntity(node);
    case PTKind::kDelta:
      return EvalDelta(node);
    case PTKind::kSel:
      return EvalSel(node);
    case PTKind::kProj:
      return EvalProj(node);
    case PTKind::kEJ:
      return EvalEJ(node);
    case PTKind::kIJ:
      return EvalIJ(node);
    case PTKind::kPIJ:
      return EvalPIJ(node);
    case PTKind::kUnion:
      return EvalUnion(node);
    case PTKind::kFix:
      return EvalFix(node);
  }
  return Table{};
}

// --- Entry points ----------------------------------------------------------

Table Executor::Execute(const PTNode& plan) {
  return Execute(plan, ExecOptions{});
}

Table Executor::Execute(const PTNode& plan, const ExecOptions& options) {
  Table out;
  ExecuteInto(plan, options, &out);
  return out;
}

Status Executor::ExecuteInto(const PTNode& plan, const ExecOptions& options,
                             Table* out) {
  uint64_t span = 0;
  if (tracer_ != nullptr) span = tracer_->Begin("execute", "exec");
  out->rows.clear();
  Status status;
  query_ = options.query;
  inject_faults_ =
      options.inject_faults && FaultInjector::Global().enabled();
  const size_t budget =
      query_ != nullptr ? query_->memory_budget_pages : 0;
  // Per-run temp-page ledger (cumulative, unlike the pre-spill per-file
  // check): resolved once so both engines see one consistent budget.
  live_temp_pages_ = 0;
  ledger_budget_pages_ = EffectiveSpillBudgetPages(query_);
  spill_enabled_ = EffectiveSpillEnabled(query_);
  const SpillStats spill_before = spill_stats_;
  if (options.use_legacy) {
    // The legacy evaluator charges the pool as it runs, so the budget is
    // armed for the whole evaluation — and the whole evaluation is an
    // active-fetch section for the resident-snapshot debug guard.
    BufferPool::ActiveFetchScope fetch_scope(&db_->buffer_pool());
    if (budget > 0) db_->buffer_pool().SetQueryBudget(budget);
    try {
      CheckLegacyBudget(0);
      *out = Eval(plan);
      counters_.rows_produced += out->rows.size();
      counters_.method_cost = MethodCostFromFp(method_cost_fp_);
    } catch (internal::ExecAbort& abort) {
      status = std::move(abort.status);
      out->rows.clear();
      deltas_.clear();  // an abort mid-fixpoint leaves a live delta entry
    }
    if (budget > 0) db_->buffer_pool().ClearQueryBudget();
  } else {
    BatchEngine::Config cfg;
    cfg.db = db_;
    cfg.batch_rows = options.batch_rows;
    cfg.exec_threads = options.exec_threads;
    cfg.hash_equijoin = options.hash_equijoin;
    cfg.compiled_eval = options.compiled_eval;
    cfg.pool = PoolFor(options.exec_threads);
    cfg.fix_cache = &fix_cache_;
    cfg.collect_op_stats = collect_op_stats_;
    cfg.op_stats = &op_stats_;
    cfg.counters = &counters_;
    cfg.method_cost_fp = &method_cost_fp_;
    cfg.query = query_;
    cfg.inject_faults = inject_faults_;
    cfg.spill_enabled = spill_enabled_;
    cfg.spill_budget_pages = ledger_budget_pages_;
    cfg.spill_stats = &spill_stats_;
    BatchEngine engine(cfg, plan);
    out->schema = engine.schema();
    RowBatch batch;
    while (engine.Next(&batch)) {
      for (Row& r : batch.rows) out->rows.push_back(std::move(r));
    }
    engine.Finalize();
    status = engine.status();
    if (!status.ok()) out->rows.clear();
    if (tracer_ != nullptr && options.compiled_eval) {
      tracer_->AddArg(span, "vm_chunks",
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            engine.vm_chunks())));
      tracer_->AddArg(span, "vm_instrs",
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            engine.vm_instrs())));
    }
  }
  query_ = nullptr;
  inject_faults_ = false;
  if (tracer_ != nullptr) {
    tracer_->AddArg(span, "rows", StrFormat("%zu", out->rows.size()));
    tracer_->AddArg(span, "measured_cost", MeasuredCost());
    if (!status.ok()) tracer_->AddArg(span, "status", status.code_name());
    if (spill_stats_.spills > spill_before.spills) {
      tracer_->AddArg(
          span, "spill_partitions",
          StrFormat("%llu", static_cast<unsigned long long>(
                                spill_stats_.partitions -
                                spill_before.partitions)));
      tracer_->AddArg(span, "spill_bytes",
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            spill_stats_.bytes -
                                            spill_before.bytes)));
      tracer_->AddArg(span, "spill_passes",
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            spill_stats_.passes -
                                            spill_before.passes)));
    }
    tracer_->End(span);
  }
  EmitExecMetrics(out->rows.size());
  return status;
}

}  // namespace rodin
