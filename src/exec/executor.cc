#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rodin {

namespace {

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  const int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

// Expands a (possibly collection-valued) value into individual elements.
void Expand(const Value& v, std::vector<Value>* out) {
  if (v.is_null()) return;
  if (v.is_collection()) {
    for (const Value& e : v.AsCollection().elems) Expand(e, out);
    return;
  }
  out->push_back(v);
}

// For an index probe predicate `cmp`, returns the literal side and whether
// the path is on the left.
bool SplitProbe(const Expr& cmp, Value* literal, bool* path_on_left) {
  if (cmp.kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = cmp.children()[0];
  const ExprPtr& r = cmp.children()[1];
  if (l->kind() == ExprKind::kVarPath && r->kind() == ExprKind::kLiteral) {
    *literal = r->literal();
    *path_on_left = true;
    return true;
  }
  if (r->kind() == ExprKind::kVarPath && l->kind() == ExprKind::kLiteral) {
    *literal = l->literal();
    *path_on_left = false;
    return true;
  }
  return false;
}

}  // namespace

Executor::Executor(Database* db, CostParams params)
    : db_(db), params_(params) {
  RODIN_CHECK(db != nullptr, "null database");
  RODIN_CHECK(db->finalized(), "executor needs a finalized database");
  start_misses_ = db_->buffer_pool().stats().misses;
}

double Executor::MeasuredCost() const {
  const double misses = static_cast<double>(
      db_->buffer_pool().stats().misses - start_misses_);
  return misses * params_.pr +
         static_cast<double>(counters_.predicate_evals) * params_.ev_tuple +
         counters_.method_cost * params_.method_weight;
}

void Executor::ResetMeasurement(bool clear_buffer) {
  counters_ = ExecCounters{};
  op_stats_.clear();
  if (clear_buffer) {
    db_->buffer_pool().Clear();
  } else {
    db_->buffer_pool().ResetStats();
  }
  start_misses_ = db_->buffer_pool().stats().misses;
}

Executor::TempFile Executor::MakeTemp(size_t rows, size_t ncols) {
  const uint64_t bytes = static_cast<uint64_t>(rows) * 16 *
                         std::max<size_t>(1, ncols);
  TempFile temp;
  temp.pages = std::max<uint64_t>(1, (bytes + kPageSizeBytes - 1) / kPageSizeBytes);
  temp.first = db_->AllocatePages(temp.pages);
  return temp;
}

void Executor::ChargeTempScan(const TempFile& temp) {
  for (uint64_t p = 0; p < temp.pages; ++p) {
    db_->buffer_pool().Fetch(temp.first + p);
  }
}

void Executor::Navigate(const Value& start, const std::vector<std::string>& path,
                        size_t step, std::vector<Value>* out) {
  if (start.is_null()) return;
  if (start.is_collection()) {
    for (const Value& e : start.AsCollection().elems) {
      Navigate(e, path, step, out);
    }
    return;
  }
  if (step == path.size()) {
    out->push_back(start);
    return;
  }
  if (!start.is_ref()) return;  // atomic value with residual path: no match
  const Oid oid = start.AsRef();
  const std::string& attr = path[step];
  const std::string& extent = db_->ExtentNameOf(oid);
  const ClassDef* cls = db_->schema().FindClass(extent);
  if (cls != nullptr) {
    const Attribute* a = cls->FindAttribute(attr);
    if (a != nullptr && a->computed) {
      ++counters_.method_calls;
      counters_.method_cost += a->method_cost;
      // Methods read their receiver: charge the record access.
      db_->ChargeRecordAccess(oid, {});
      const Value v = db_->InvokeMethod(oid, attr);
      Navigate(v, path, step + 1, out);
      return;
    }
  }
  const Value v = db_->GetCharged(oid, attr);
  Navigate(v, path, step + 1, out);
}

std::vector<Value> Executor::EvalMulti(const RowSchema& schema, const Row& row,
                                       const ExprPtr& expr) {
  std::vector<Value> out;
  if (expr == nullptr) return out;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      out.push_back(expr->literal());
      return out;
    case ExprKind::kVarPath: {
      int col = -1;
      std::vector<std::string> rest;
      RODIN_CHECK(schema.ResolveVarPath(expr->var(), expr->path(), &col, &rest),
                  "unresolvable variable path in executor");
      Navigate(row[col], rest, 0, &out);
      return out;
    }
    case ExprKind::kArith: {
      const std::vector<Value> l = EvalMulti(schema, row, expr->children()[0]);
      const std::vector<Value> r = EvalMulti(schema, row, expr->children()[1]);
      for (const Value& a : l) {
        for (const Value& b : r) {
          if (a.is_int() && b.is_int()) {
            out.push_back(Value::Int(expr->arith_op() == ArithOp::kAdd
                                         ? a.AsInt() + b.AsInt()
                                         : a.AsInt() - b.AsInt()));
          } else {
            const double x = a.AsNumber();
            const double y = b.AsNumber();
            out.push_back(Value::Real(expr->arith_op() == ArithOp::kAdd
                                          ? x + y
                                          : x - y));
          }
        }
      }
      return out;
    }
    case ExprKind::kCompare:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
      out.push_back(Value::Bool(EvalPred(schema, row, expr)));
      return out;
  }
  return out;
}

bool Executor::EvalPred(const RowSchema& schema, const Row& row,
                        const ExprPtr& pred) {
  if (pred == nullptr) return true;
  switch (pred->kind()) {
    case ExprKind::kAnd:
      for (const ExprPtr& c : pred->children()) {
        if (!EvalPred(schema, row, c)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const ExprPtr& c : pred->children()) {
        if (EvalPred(schema, row, c)) return true;
      }
      return false;
    case ExprKind::kNot:
      return !EvalPred(schema, row, pred->children()[0]);
    case ExprKind::kCompare: {
      const std::vector<Value> l = EvalMulti(schema, row, pred->children()[0]);
      const std::vector<Value> r = EvalMulti(schema, row, pred->children()[1]);
      // Exists-semantics over multi-valued paths.
      for (const Value& a : l) {
        for (const Value& b : r) {
          if (CompareValues(pred->compare_op(), a, b)) return true;
        }
      }
      return false;
    }
    case ExprKind::kLiteral:
      return pred->literal().is_bool() && pred->literal().AsBool();
    case ExprKind::kArith:
      return false;  // a bare arithmetic expression is not a predicate
    case ExprKind::kVarPath: {
      const std::vector<Value> vals = EvalMulti(schema, row, pred);
      for (const Value& v : vals) {
        if (v.is_bool() && v.AsBool()) return true;
      }
      return false;
    }
  }
  return false;
}

Table Executor::EvalEntity(const PTNode& node) {
  Table out;
  out.schema.cols = node.cols;
  db_->ScanEntity(node.entity, [&](Oid oid, const std::vector<Value>&) {
    out.rows.push_back({Value::Ref(oid)});
  });
  return out;
}

Table Executor::EvalDelta(const PTNode& node) {
  auto it = deltas_.find(node.fix_name);
  RODIN_CHECK(it != deltas_.end(), "delta referenced outside its fixpoint");
  const Table* delta = it->second.first;
  ChargeTempScan(it->second.second);
  Table out;
  out.schema.cols = node.cols;
  RODIN_CHECK(delta->schema.cols.size() == node.cols.size(),
              "delta column arity mismatch");
  out.rows = delta->rows;
  return out;
}

Table Executor::EvalSel(const PTNode& node) {
  const PTNode& child = *node.children[0];
  Table out;
  out.schema.cols = node.cols;

  if (node.sel_access != SelAccess::kSeqScan) {
    RODIN_CHECK(child.kind == PTKind::kEntity, "index access needs entity");
    RODIN_CHECK(node.sel_index != nullptr, "index access without an index");
    Value literal;
    bool path_left = true;
    RODIN_CHECK(node.sel_index_pred != nullptr &&
                    SplitProbe(*node.sel_index_pred, &literal, &path_left),
                "malformed index probe predicate");
    std::vector<uint64_t> payloads;
    if (node.sel_access == SelAccess::kIndexEq) {
      payloads = node.sel_index->Lookup(literal, &db_->buffer_pool());
    } else {
      // One-sided range: orient by operator and which side the path is on.
      const CompareOp op = node.sel_index_pred->compare_op();
      const bool upper = path_left ? (op == CompareOp::kLt || op == CompareOp::kLe)
                                   : (op == CompareOp::kGt || op == CompareOp::kGe);
      const bool strict = op == CompareOp::kLt || op == CompareOp::kGt;
      if (upper) {
        payloads = node.sel_index->RangeLookup(Value::Null(), false, literal,
                                               strict, &db_->buffer_pool());
      } else {
        payloads = node.sel_index->RangeLookup(literal, strict, Value::Null(),
                                               false, &db_->buffer_pool());
      }
    }
    for (uint64_t p : payloads) {
      const Oid oid = db_->PayloadToOid(child.entity.extent, p);
      db_->ChargeRecordAccess(oid, {});
      Row row = {Value::Ref(oid)};
      ++counters_.predicate_evals;
      if (EvalPred(out.schema, row, node.pred)) {
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }

  if (child.kind == PTKind::kEntity) {
    // Fused scan + filter: one pass over the extent (Figure 5's Sel(C)).
    db_->ScanEntity(child.entity, [&](Oid oid, const std::vector<Value>&) {
      Row row = {Value::Ref(oid)};
      ++counters_.predicate_evals;
      if (EvalPred(out.schema, row, node.pred)) {
        out.rows.push_back(std::move(row));
      }
    });
    return out;
  }

  Table input = Eval(child);
  for (Row& row : input.rows) {
    ++counters_.predicate_evals;
    if (EvalPred(input.schema, row, node.pred)) {
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Table Executor::EvalProj(const PTNode& node) {
  Table input = Eval(*node.children[0]);
  Table out;
  out.schema.cols = node.cols;
  for (const Row& row : input.rows) {
    // Cartesian product of the (possibly multi-valued) projections.
    std::vector<std::vector<Value>> cols;
    bool any_empty = false;
    for (const OutCol& c : node.proj) {
      cols.push_back(EvalMulti(input.schema, row, c.expr));
      if (cols.back().empty()) any_empty = true;
    }
    if (any_empty) continue;
    std::vector<size_t> idx(cols.size(), 0);
    bool done = false;
    while (!done) {
      Row r;
      r.reserve(cols.size());
      for (size_t i = 0; i < cols.size(); ++i) r.push_back(cols[i][idx[i]]);
      out.rows.push_back(std::move(r));
      // Odometer increment, rightmost column fastest.
      size_t k = cols.size();
      while (true) {
        if (k == 0) {
          done = true;
          break;
        }
        --k;
        if (++idx[k] < cols[k].size()) break;
        idx[k] = 0;
      }
    }
  }
  if (node.dedup) out.Dedup();
  return out;
}

Table Executor::EvalEJ(const PTNode& node) {
  const PTNode& left_node = *node.children[0];
  const PTNode& right_node = *node.children[1];
  Table left = Eval(left_node);
  Table out;
  out.schema.cols = node.cols;

  if (node.algo == JoinAlgo::kIndexJoin) {
    RODIN_CHECK(right_node.kind == PTKind::kEntity,
                "index join needs an entity inner");
    RODIN_CHECK(node.join_index != nullptr, "index join without an index");
    // The probe expression is the conjunct side that references outer
    // columns: find Cmp(=, inner.attr, outer_expr) among the conjuncts.
    ExprPtr probe;
    ExprPtr residual_pred;
    {
      std::vector<ExprPtr> residual;
      for (const ExprPtr& c :
           (node.pred == nullptr ? std::vector<ExprPtr>{} : node.pred->Conjuncts())) {
        if (probe == nullptr && c->kind() == ExprKind::kCompare &&
            c->compare_op() == CompareOp::kEq) {
          const ExprPtr& l = c->children()[0];
          const ExprPtr& r = c->children()[1];
          auto is_inner_attr = [&](const ExprPtr& e) {
            return e->kind() == ExprKind::kVarPath &&
                   e->var() == right_node.binding &&
                   e->path().size() == 1 &&
                   e->path()[0] == node.join_index_attr;
          };
          if (is_inner_attr(l) && r->FreeVars().count(right_node.binding) == 0) {
            probe = r;
            continue;
          }
          if (is_inner_attr(r) && l->FreeVars().count(right_node.binding) == 0) {
            probe = l;
            continue;
          }
        }
        residual.push_back(c);
      }
      residual_pred = ConjunctionOf(std::move(residual));
    }
    RODIN_CHECK(probe != nullptr, "index join probe not found in predicate");

    for (const Row& lrow : left.rows) {
      const std::vector<Value> keys = EvalMulti(left.schema, lrow, probe);
      for (const Value& key : keys) {
        const std::vector<uint64_t> payloads =
            node.join_index->Lookup(key, &db_->buffer_pool());
        for (uint64_t p : payloads) {
          const Oid oid = db_->PayloadToOid(right_node.entity.extent, p);
          db_->ChargeRecordAccess(oid, {});
          Row row = lrow;
          row.push_back(Value::Ref(oid));
          ++counters_.predicate_evals;
          if (EvalPred(out.schema, row, residual_pred)) {
            out.rows.push_back(std::move(row));
          }
        }
      }
    }
    return out;
  }

  // Nested loop. The inner is evaluated once; re-scans of an entity inner
  // charge its pages per outer row (buffer hits when it fits).
  Table right = Eval(right_node);
  const bool inner_entity =
      right_node.kind == PTKind::kEntity || right_node.kind == PTKind::kDelta;
  TempFile temp;
  std::vector<PageId> inner_pages;
  if (inner_entity && right_node.kind == PTKind::kEntity) {
    const Extent* e = db_->FindExtent(right_node.entity.extent);
    inner_pages = e->ScanPages(right_node.entity.vfrag, right_node.entity.hfrag);
  } else if (!inner_entity) {
    temp = MakeTemp(right.rows.size(), right.schema.cols.size());
  }

  bool first_outer = true;
  for (const Row& lrow : left.rows) {
    if (!first_outer) {
      // Re-scan charge for the inner.
      if (!inner_pages.empty()) {
        for (PageId p : inner_pages) db_->buffer_pool().Fetch(p);
      } else if (temp.pages > 0) {
        ChargeTempScan(temp);
      }
      // Delta inners are charged by EvalDelta once; re-scans of the delta
      // temp are charged here through deltas_.
      if (right_node.kind == PTKind::kDelta) {
        auto it = deltas_.find(right_node.fix_name);
        if (it != deltas_.end()) ChargeTempScan(it->second.second);
      }
    }
    first_outer = false;
    for (const Row& rrow : right.rows) {
      Row row = lrow;
      row.insert(row.end(), rrow.begin(), rrow.end());
      ++counters_.predicate_evals;
      if (EvalPred(out.schema, row, node.pred)) {
        out.rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

Table Executor::EvalIJ(const PTNode& node) {
  Table input = Eval(*node.children[0]);
  Table out;
  out.schema.cols = node.cols;
  int col = -1;
  std::vector<std::string> rest;
  RODIN_CHECK(input.schema.ResolveVarPath(node.src_var, {node.attr}, &col, &rest),
              "IJ source unresolvable at runtime");
  for (const Row& row : input.rows) {
    std::vector<Value> targets;
    if (rest.empty()) {
      // Dotted column: the reference is already materialized in the row.
      Expand(row[col], &targets);
    } else {
      Navigate(row[col], {node.attr}, 0, &targets);
    }
    for (const Value& t : targets) {
      if (!t.is_ref()) continue;
      db_->ChargeRecordAccess(t.AsRef(), {});
      Row r = row;
      r.push_back(t);
      out.rows.push_back(std::move(r));
    }
  }
  return out;
}

Table Executor::EvalPIJ(const PTNode& node) {
  Table input = Eval(*node.children[0]);
  Table out;
  out.schema.cols = node.cols;
  const int col = input.schema.IndexOf(node.src_var);
  RODIN_CHECK(col >= 0, "PIJ source column missing at runtime");
  for (const Row& row : input.rows) {
    if (!row[col].is_ref()) continue;
    const auto entries =
        node.path_index->Lookup(row[col].AsRef(), &db_->buffer_pool());
    for (const std::vector<Oid>* entry : entries) {
      Row r = row;
      for (size_t i = 0; i < node.path_out_vars.size(); ++i) {
        if (!node.path_out_vars[i].empty()) {
          r.push_back(Value::Ref((*entry)[i + 1]));
        }
      }
      out.rows.push_back(std::move(r));
    }
  }
  return out;
}

Table Executor::EvalUnion(const PTNode& node) {
  Table out;
  out.schema.cols = node.cols;
  for (const auto& c : node.children) {
    Table t = Eval(*c);
    for (Row& r : t.rows) out.rows.push_back(std::move(r));
  }
  out.Dedup();
  return out;
}

namespace {

// True when `tree` contains a delta leaf of a fixpoint other than `own` —
// such a subtree's value depends on the enclosing fixpoint's iteration
// state and must not be memoized.
bool HasForeignDelta(const PTNode& tree, const std::string& own) {
  if (tree.kind == PTKind::kDelta && tree.fix_name != own) return true;
  for (const auto& c : tree.children) {
    if (HasForeignDelta(*c, own)) return true;
  }
  return false;
}

}  // namespace

Table Executor::EvalFix(const PTNode& node) {
  const bool cacheable = !HasForeignDelta(node, node.fix_name);
  std::string key;
  if (cacheable) {
    key = node.Fingerprint();
    auto it = fix_cache_.find(key);
    if (it != fix_cache_.end()) {
      ChargeTempScan(it->second.second);
      return it->second.first;
    }
  }
  Table base = Eval(*node.children[0]);
  base.Dedup();

  Table result;
  result.schema.cols = node.cols;
  result.rows = base.rows;

  std::set<Row, bool (*)(const Row&, const Row&)> seen(&Table::RowLess);
  for (const Row& r : base.rows) seen.insert(r);

  // Semi-naive: feed only the last iteration's new tuples into the
  // recursive arm. Naive mode feeds the whole accumulated result each
  // round (re-deriving everything) — the evaluation strategy Figure 5's
  // cost formula improves on.
  Table delta = base;
  bool progress = true;
  while (progress && !result.rows.empty()) {
    ++counters_.fix_iterations;
    const Table& input = node.naive_fix ? result : delta;
    if (!node.naive_fix && delta.rows.empty()) break;
    const TempFile temp =
        MakeTemp(input.rows.size(), input.schema.cols.size());
    deltas_[node.fix_name] = {&input, temp};
    Table produced = Eval(*node.children[1]);
    deltas_.erase(node.fix_name);

    Table next;
    next.schema = result.schema;
    for (Row& r : produced.rows) {
      if (seen.insert(r).second) {
        result.rows.push_back(r);
        next.rows.push_back(std::move(r));
      }
    }
    progress = !next.rows.empty();
    delta = std::move(next);
  }
  if (cacheable) {
    const TempFile temp =
        MakeTemp(result.rows.size(), result.schema.cols.size());
    fix_cache_[key] = {result, temp};
  }
  return result;
}

Table Executor::Eval(const PTNode& node) {
  if (!collect_op_stats_) return EvalNode(node);
  const uint64_t fetches_before = db_->buffer_pool().stats().fetches;
  const auto t0 = std::chrono::steady_clock::now();
  Table out = EvalNode(node);
  OpStats& s = op_stats_[&node];
  ++s.invocations;
  s.rows += out.rows.size();
  s.pages += db_->buffer_pool().stats().fetches - fetches_before;
  s.micros +=
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

Table Executor::EvalNode(const PTNode& node) {
  switch (node.kind) {
    case PTKind::kEntity:
      return EvalEntity(node);
    case PTKind::kDelta:
      return EvalDelta(node);
    case PTKind::kSel:
      return EvalSel(node);
    case PTKind::kProj:
      return EvalProj(node);
    case PTKind::kEJ:
      return EvalEJ(node);
    case PTKind::kIJ:
      return EvalIJ(node);
    case PTKind::kPIJ:
      return EvalPIJ(node);
    case PTKind::kUnion:
      return EvalUnion(node);
    case PTKind::kFix:
      return EvalFix(node);
  }
  return Table{};
}

Table Executor::Execute(const PTNode& plan) {
  uint64_t span = 0;
  if (tracer_ != nullptr) span = tracer_->Begin("execute", "exec");
  Table out = Eval(plan);
  counters_.rows_produced += out.rows.size();
  if (tracer_ != nullptr) {
    tracer_->AddArg(span, "rows", StrFormat("%zu", out.rows.size()));
    tracer_->AddArg(span, "measured_cost", MeasuredCost());
    tracer_->End(span);
  }
  {
    static obs::Counter* execs =
        obs::MetricsRegistry::Global().GetCounter("rodin.exec.executions");
    static obs::Counter* rows =
        obs::MetricsRegistry::Global().GetCounter("rodin.exec.rows_produced");
    execs->Add(1);
    rows->Add(out.rows.size());
  }
  return out;
}

}  // namespace rodin
