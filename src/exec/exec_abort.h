#ifndef RODIN_EXEC_EXEC_ABORT_H_
#define RODIN_EXEC_EXEC_ABORT_H_

#include <utility>

#include "common/status.h"

namespace rodin {
namespace internal {

/// Aborts an in-flight evaluation (deadline, cancel, budget or injected
/// fault) from deep inside the operator tree. Thrown only on the
/// coordinator thread — worker morsels never throw across the pool — and
/// caught at the engine boundary (BatchEngine::Next, Executor::ExecuteInto),
/// which converts it back into a Status. Not part of the public API.
struct ExecAbort {
  Status status;
  explicit ExecAbort(Status s) : status(std::move(s)) {}
};

}  // namespace internal
}  // namespace rodin

#endif  // RODIN_EXEC_EXEC_ABORT_H_
