#include "exec/row.h"

#include <algorithm>

namespace rodin {

int RowSchema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool RowSchema::ResolveVarPath(const std::string& var,
                               const std::vector<std::string>& path,
                               int* col_index,
                               std::vector<std::string>* rest) const {
  if (!path.empty()) {
    const int dotted = IndexOf(var + "." + path[0]);
    if (dotted >= 0) {
      *col_index = dotted;
      rest->assign(path.begin() + 1, path.end());
      return true;
    }
  }
  const int plain = IndexOf(var);
  if (plain >= 0) {
    *col_index = plain;
    *rest = path;
    return true;
  }
  return false;
}

bool Table::RowLess(const Row& a, const Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

bool Table::RowEq(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

void Table::Dedup() {
  std::sort(rows.begin(), rows.end(), RowLess);
  rows.erase(std::unique(rows.begin(), rows.end(), RowEq), rows.end());
}

std::string Table::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema.cols.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema.cols[i].name;
  }
  out += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i > 0) out += " | ";
      out += rows[r][i].ToString();
    }
    out += "\n";
  }
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

}  // namespace rodin
