#include "exec/result_cursor.h"

#include <algorithm>
#include <utility>

#include "exec/batch_engine.h"

namespace rodin {

struct ResultCursor::Impl {
  /// Declared first so it is destroyed last: the keepalive may own the
  /// Executor that `engine`'s destructor (~BatchEngine runs Finalize, which
  /// writes through the executor's counters) still needs alive.
  std::shared_ptr<void> owned;  // keep-alive (session query state)

  Status status;
  std::string plan_text;
  RowSchema schema;
  size_t batch_rows = 1024;

  Executor* exec = nullptr;
  std::unique_ptr<BatchEngine> engine;

  /// Legacy-engine cursors serve from a pre-materialized table (the legacy
  /// evaluator has no streaming interface; its accounting is already final
  /// when the cursor is created).
  Table materialized;
  size_t mat_pos = 0;
  bool use_materialized = false;

  /// Row-at-a-time view: a partially consumed batch.
  RowBatch rowbuf;
  size_t row_pos = 0;

  bool finished = false;
  /// True only when the stream was pulled to genuine exhaustion (the engine
  /// reported end-of-stream with an ok status, or the materialized table was
  /// fully consumed) — not when the cursor was destroyed or aborted early.
  bool exhausted = false;
  ExecCounters counters;
  double measured_cost = -1;

  std::function<void(const Status&, bool)> on_finish;  // metrics publish etc.
};

ResultCursor::ResultCursor() : impl_(std::make_unique<Impl>()) {
  impl_->finished = true;
}

ResultCursor::ResultCursor(Status status) : impl_(std::make_unique<Impl>()) {
  impl_->status = std::move(status);
  impl_->finished = true;
}

ResultCursor::~ResultCursor() {
  // Early destruction finalizes without draining: the charges of the work
  // actually performed replay, and partial counters land in the executor.
  if (impl_ != nullptr) FinalizeAccounting();
}

ResultCursor::ResultCursor(ResultCursor&&) noexcept = default;

ResultCursor& ResultCursor::operator=(ResultCursor&& other) noexcept {
  if (this != &other) {
    // Finalize the cursor being replaced, exactly as its destructor would:
    // dropping the impl without finalizing would let the engine's own
    // destructor run Finalize after the keepalive released the executor.
    if (impl_ != nullptr) FinalizeAccounting();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

bool ResultCursor::ok() const { return impl_->status.ok(); }
const Status& ResultCursor::status() const { return impl_->status; }
const std::string& ResultCursor::error() const {
  return impl_->status.message;
}
const RowSchema& ResultCursor::schema() const { return impl_->schema; }
bool ResultCursor::finished() const { return impl_->finished; }
const ExecCounters& ResultCursor::counters() const { return impl_->counters; }
double ResultCursor::measured_cost() const { return impl_->measured_cost; }
const std::string& ResultCursor::plan_text() const {
  return impl_->plan_text;
}

void ResultCursor::FinalizeAccounting() {
  Impl* im = impl_.get();
  if (im->finished) return;
  im->finished = true;
  if (im->engine != nullptr) {
    im->engine->Finalize();
    if (im->exec != nullptr) {
      im->exec->EmitExecMetrics(im->engine->rows_emitted());
    }
  }
  if (im->exec != nullptr) {
    im->counters = im->exec->counters();
    im->measured_cost = im->exec->MeasuredCost();
  }
  if (im->on_finish) {
    im->on_finish(im->status, im->exhausted && im->status.ok());
    im->on_finish = nullptr;
  }
}

bool ResultCursor::Next(RowBatch* batch) {
  Impl* im = impl_.get();
  batch->Clear();
  if (!im->status.ok()) return false;
  if (im->use_materialized) {
    if (im->mat_pos >= im->materialized.rows.size()) {
      im->exhausted = true;
      FinalizeAccounting();
      return false;
    }
    const size_t take = std::min(im->batch_rows,
                                 im->materialized.rows.size() - im->mat_pos);
    batch->rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch->rows.push_back(std::move(im->materialized.rows[im->mat_pos + i]));
    }
    im->mat_pos += take;
    return true;
  }
  if (im->engine == nullptr || im->finished) return false;
  if (!im->engine->Next(batch)) {
    // Exhaustion and budget aborts both end the stream; the abort reason
    // (kCancelled / kDeadlineExceeded / ...) surfaces through status().
    // Accounting still finalizes either way — the work actually performed
    // replays exactly.
    if (!im->engine->status().ok()) {
      im->status = im->engine->status();
    } else {
      im->exhausted = true;
    }
    FinalizeAccounting();
    return false;
  }
  return true;
}

bool ResultCursor::Next(Row* row) {
  Impl* im = impl_.get();
  while (im->row_pos >= im->rowbuf.size()) {
    im->rowbuf.Clear();
    im->row_pos = 0;
    if (!Next(&im->rowbuf)) return false;
  }
  *row = std::move(im->rowbuf.rows[im->row_pos++]);
  return true;
}

Table ResultCursor::ToTable() {
  Impl* im = impl_.get();
  Table out;
  out.schema = im->schema;
  // Rows already pulled into the row-at-a-time buffer come first.
  for (size_t i = im->row_pos; i < im->rowbuf.size(); ++i) {
    out.rows.push_back(std::move(im->rowbuf.rows[i]));
  }
  im->rowbuf.Clear();
  im->row_pos = 0;
  RowBatch batch;
  while (Next(&batch)) {
    for (Row& r : batch.rows) out.rows.push_back(std::move(r));
  }
  return out;
}

void ResultCursor::Finish() {
  Impl* im = impl_.get();
  if (im->finished) return;
  // Drain so the run's accounting covers the whole query.
  RowBatch batch;
  while (Next(&batch)) {
  }
}

void ResultCursor::set_plan_text(std::string text) {
  impl_->plan_text = std::move(text);
}

void ResultCursor::set_keepalive(std::shared_ptr<void> owned) {
  impl_->owned = std::move(owned);
}

void ResultCursor::set_on_finish(
    std::function<void(const Status&, bool)> hook) {
  impl_->on_finish = std::move(hook);
}

// Defined here (not in executor.cc) because it needs ResultCursor::Impl.
ResultCursor Executor::ExecuteStream(const PTNode& plan, ExecOptions options) {
  ResultCursor cursor;
  ResultCursor::Impl* im = cursor.impl_.get();
  im->exec = this;
  im->batch_rows = std::max<size_t>(1, options.batch_rows);
  im->finished = false;
  if (options.use_legacy) {
    im->status = ExecuteInto(plan, options, &im->materialized);
    im->use_materialized = true;
    im->schema = im->materialized.schema;
    return cursor;
  }
  BatchEngine::Config cfg;
  cfg.db = db_;
  cfg.batch_rows = options.batch_rows;
  cfg.exec_threads = options.exec_threads;
  cfg.hash_equijoin = options.hash_equijoin;
  cfg.compiled_eval = options.compiled_eval;
  cfg.pool = PoolFor(options.exec_threads);
  cfg.fix_cache = &fix_cache_;
  cfg.collect_op_stats = collect_op_stats_;
  cfg.op_stats = &op_stats_;
  cfg.counters = &counters_;
  cfg.method_cost_fp = &method_cost_fp_;
  cfg.query = options.query;
  cfg.inject_faults = options.inject_faults;
  cfg.spill_enabled = EffectiveSpillEnabled(options.query);
  cfg.spill_budget_pages = EffectiveSpillBudgetPages(options.query);
  cfg.spill_stats = &spill_stats_;
  im->engine = std::make_unique<BatchEngine>(cfg, plan);
  im->schema = im->engine->schema();
  return cursor;
}

}  // namespace rodin
