#ifndef RODIN_EXEC_VM_VM_H_
#define RODIN_EXEC_VM_VM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "exec/eval_core.h"
#include "exec/row.h"
#include "exec/vm/bytecode.h"

namespace rodin::vm {

/// Per-morsel mutable VM state: the register files and a navigation scratch
/// buffer. Registers are reused across every row a morsel evaluates —
/// cleared, never reallocated — which is where compiled eval's allocation
/// win over the interpreter (fresh std::vector per expression node per row)
/// comes from. One VmScratch per worker morsel; never shared across
/// threads.
struct VmScratch {
  std::vector<std::vector<Value>> vregs;
  std::vector<uint8_t> bregs;
  /// Temp list for the fused compare's navigation / expansion slow path.
  std::vector<Value> tmp;
  /// Chunk executions (one per Run* call), merged into the
  /// rodin.vm.rows_evaluated metric by the engine.
  uint64_t rows = 0;
  /// Debug-only per-opcode execution counts (tests wire this to prove every
  /// instruction is covered); null in production.
  std::array<uint64_t, kNumOpCodes>* opcode_hits = nullptr;

  /// Grows the register files to the chunk's requirements (no-op when
  /// already large enough).
  void Prepare(const BytecodeChunk& chunk);
};

/// Runs a predicate program (kRetBool terminal) against `row`. Page charges
/// and method costs flow through `ctx` exactly as interpreted EvalPred's
/// would. The chunk must have passed Validate() (the compiler guarantees
/// this); `row` must have the width the chunk was compiled against.
bool RunPred(const BytecodeChunk& chunk, EvalContext* ctx, const Row& row,
             VmScratch* scratch);

/// Runs a multi-value program (kRetValues terminal); the returned reference
/// points into `scratch` and is valid until its next use.
const std::vector<Value>& RunMulti(const BytecodeChunk& chunk,
                                   EvalContext* ctx, const Row& row,
                                   VmScratch* scratch);

/// Runs a projection program (kRetProj terminal): column k's values are
/// left in scratch->vregs[k] for k in [0, ncols); returns ncols.
size_t RunProj(const BytecodeChunk& chunk, EvalContext* ctx, const Row& row,
               VmScratch* scratch);

}  // namespace rodin::vm

#endif  // RODIN_EXEC_VM_VM_H_
