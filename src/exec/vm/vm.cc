#include "exec/vm/vm.h"

#include "common/check.h"
#include "query/expr.h"

namespace rodin::vm {

namespace {

/// Applies `op` to a Value::Compare-style ordering result.
inline bool ApplyCmp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

/// CompareValues with the variant dispatch peeled for the common typed
/// cases. The numeric branch replicates Value::Compare's numeric rule
/// exactly — all numerics compare as doubles (including int/int), so large
/// int64s must NOT short-cut to integer comparison.
inline bool FastCompare(CompareOp op, const Value& a, const Value& b) {
  const bool a_num = a.is_int() || a.is_real();
  const bool b_num = b.is_int() || b.is_real();
  if (a_num && b_num) {
    const double x = a.AsNumber();
    const double y = b.AsNumber();
    return ApplyCmp(op, x < y ? -1 : (x > y ? 1 : 0));
  }
  if (a.is_string() && b.is_string()) {
    return ApplyCmp(op, a.AsString().compare(b.AsString()));
  }
  return ApplyCmp(op, a.Compare(b));
}

enum class RetKind { kBool, kValues, kProj };

struct RunResult {
  RetKind kind;
  bool b = false;
  uint8_t vreg = 0;
  uint16_t nproj = 0;
};

RunResult Run(const BytecodeChunk& chunk, EvalContext* ctx, const Row& row,
              VmScratch* s) {
  s->Prepare(chunk);
  ++s->rows;
  auto& vregs = s->vregs;
  auto& bregs = s->bregs;
  size_t ip = 0;
  while (true) {
    const Instr& in = chunk.code[ip];
    if (s->opcode_hits != nullptr) {
      ++(*s->opcode_hits)[static_cast<size_t>(in.op)];
    }
    ++ip;
    switch (in.op) {
      case OpCode::kLoadConst: {
        auto& dst = vregs[in.a];
        dst.clear();
        dst.push_back(chunk.consts[in.d]);
        break;
      }
      case OpCode::kLoadColumn: {
        auto& dst = vregs[in.a];
        dst.clear();
        ExpandValue(row[in.d], &dst);
        break;
      }
      case OpCode::kNavigate: {
        auto& dst = vregs[in.a];
        dst.clear();
        Navigate(ctx, row[in.d], chunk.paths[in.e], 0, &dst);
        break;
      }
      case OpCode::kArith: {
        const auto& l = vregs[in.b];
        const auto& r = vregs[in.c];
        auto& dst = vregs[in.a];
        dst.clear();
        const bool add = static_cast<ArithOp>(in.d) == ArithOp::kAdd;
        for (const Value& a : l) {
          for (const Value& b : r) {
            if (a.is_int() && b.is_int()) {
              dst.push_back(Value::Int(add ? a.AsInt() + b.AsInt()
                                           : a.AsInt() - b.AsInt()));
            } else {
              const double x = a.AsNumber();
              const double y = b.AsNumber();
              dst.push_back(Value::Real(add ? x + y : x - y));
            }
          }
        }
        break;
      }
      case OpCode::kCompare: {
        const auto& l = vregs[in.b];
        const auto& r = vregs[in.c];
        const CompareOp op = static_cast<CompareOp>(in.d);
        bool res = false;
        for (const Value& a : l) {
          for (const Value& b : r) {
            if (FastCompare(op, a, b)) {
              res = true;
              break;
            }
          }
          if (res) break;
        }
        bregs[in.a] = res;
        break;
      }
      case OpCode::kCmpColConst: {
        const Value& cv = row[in.c];
        const Value& lit = chunk.consts[in.d];
        const CompareOp op = static_cast<CompareOp>(in.b);
        bool res = false;
        if (in.e == kNoPath) {
          if (cv.is_null()) {
            // Null column: the expanded value list is empty, so the exists
            // comparison is vacuously false. No work, no charges.
          } else if (!cv.is_collection()) {
            res = FastCompare(op, cv, lit);
          } else {
            s->tmp.clear();
            ExpandValue(cv, &s->tmp);
            for (const Value& v : s->tmp) {
              if (FastCompare(op, v, lit)) {
                res = true;
                break;
              }
            }
          }
        } else {
          // The path side materializes in full first (charging every
          // dereference), exactly like interpreted EvalMulti; only the
          // comparison loop short-circuits.
          s->tmp.clear();
          Navigate(ctx, cv, chunk.paths[in.e], 0, &s->tmp);
          for (const Value& v : s->tmp) {
            if (FastCompare(op, v, lit)) {
              res = true;
              break;
            }
          }
        }
        bregs[in.a] = res;
        break;
      }
      case OpCode::kAnyTrue: {
        bool res = false;
        for (const Value& v : vregs[in.b]) {
          if (v.is_bool() && v.AsBool()) {
            res = true;
            break;
          }
        }
        bregs[in.a] = res;
        break;
      }
      case OpCode::kBoolValue: {
        auto& dst = vregs[in.a];
        dst.clear();
        dst.push_back(Value::Bool(bregs[in.b] != 0));
        break;
      }
      case OpCode::kLoadBool:
        bregs[in.a] = in.d != 0 ? 1 : 0;
        break;
      case OpCode::kNot:
        bregs[in.a] = bregs[in.b] != 0 ? 0 : 1;
        break;
      case OpCode::kJumpIfFalse:
        if (bregs[in.a] == 0) ip = in.d;
        break;
      case OpCode::kJumpIfTrue:
        if (bregs[in.a] != 0) ip = in.d;
        break;
      case OpCode::kRetBool:
        return RunResult{RetKind::kBool, bregs[in.a] != 0, 0, 0};
      case OpCode::kRetValues:
        return RunResult{RetKind::kValues, false, in.a, 0};
      case OpCode::kRetProj:
        return RunResult{RetKind::kProj, false, 0, in.d};
    }
  }
}

}  // namespace

void VmScratch::Prepare(const BytecodeChunk& chunk) {
  if (vregs.size() < chunk.num_value_regs) vregs.resize(chunk.num_value_regs);
  if (bregs.size() < chunk.num_bool_regs) bregs.resize(chunk.num_bool_regs);
}

bool RunPred(const BytecodeChunk& chunk, EvalContext* ctx, const Row& row,
             VmScratch* scratch) {
  const RunResult r = Run(chunk, ctx, row, scratch);
  RODIN_CHECK(r.kind == RetKind::kBool, "chunk is not a predicate program");
  return r.b;
}

const std::vector<Value>& RunMulti(const BytecodeChunk& chunk,
                                   EvalContext* ctx, const Row& row,
                                   VmScratch* scratch) {
  const RunResult r = Run(chunk, ctx, row, scratch);
  RODIN_CHECK(r.kind == RetKind::kValues, "chunk is not a value program");
  return scratch->vregs[r.vreg];
}

size_t RunProj(const BytecodeChunk& chunk, EvalContext* ctx, const Row& row,
               VmScratch* scratch) {
  const RunResult r = Run(chunk, ctx, row, scratch);
  RODIN_CHECK(r.kind == RetKind::kProj, "chunk is not a projection program");
  return r.nproj;
}

}  // namespace rodin::vm
