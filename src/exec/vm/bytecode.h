#ifndef RODIN_EXEC_VM_BYTECODE_H_
#define RODIN_EXEC_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace rodin::vm {

/// The register-bytecode ISA for operator predicates, projections and
/// path-step programs. A chunk is compiled once per operator at plan time
/// (see vm/compiler.h) and then run per row by the dispatch loop in vm/vm.h.
///
/// Two register banks:
///   v[r] — *value registers*, each a reusable list of Values (expression
///          evaluation is multi-valued: path steps through collections fan
///          out, nulls produce nothing — exactly EvalMulti's contract).
///   b[r] — *bool registers* for predicate results and short-circuit jumps.
///
/// The compiler emits programs that replicate the interpreted evaluator's
/// depth-first evaluation order instruction by instruction, so every page
/// charge and method invocation happens at the same point in the same
/// order — the bit-identical accounting contract holds by construction.
enum class OpCode : uint8_t {
  kLoadConst,    // v[a] = { consts[d] }
  kLoadColumn,   // v[a] = expand(row[d])   (nulls dropped, collections fanned)
  kNavigate,     // v[a] = navigate(row[d], paths[e])  — charges dereferences
  kArith,        // v[a] = cross-product arith of v[b] (x) v[c]; d = ArithOp
  kCompare,      // b[a] = exists-compare of v[b] x v[c]; d = CompareOp
  kCmpColConst,  // b[a] = fused compare: row[c] (via paths[e] unless kNoPath)
                 //        against consts[d]; b = CompareOp. Typed fast paths
                 //        for atomic int/real/string and instant-false nulls.
  kAnyTrue,      // b[a] = any value in v[b] is bool true (VarPath-as-pred)
  kBoolValue,    // v[a] = { Bool(b[b]) }   (predicate in value position)
  kLoadBool,     // b[a] = (d != 0)
  kNot,          // b[a] = !b[b]
  kJumpIfFalse,  // if (!b[a]) ip = d       (And short-circuit)
  kJumpIfTrue,   // if (b[a])  ip = d       (Or short-circuit)
  kRetBool,      // return b[a]             (predicate programs)
  kRetValues,    // return v[a]             (multi-value programs)
  kRetProj,      // return v[0] .. v[d-1]   (projection programs)
};

constexpr size_t kNumOpCodes = static_cast<size_t>(OpCode::kRetProj) + 1;

const char* OpCodeName(OpCode op);

/// Sentinel path index: kCmpColConst compares the raw (expanded) column
/// value, no navigation.
constexpr uint16_t kNoPath = 0xffff;

/// One fixed-width instruction: opcode, three 8-bit register/operand slots
/// and two 16-bit immediates (constant-pool / path-table indexes, jump
/// targets, operator codes). Field meanings per opcode are documented on the
/// OpCode enum.
struct Instr {
  OpCode op;
  uint8_t a = 0;
  uint8_t b = 0;
  uint8_t c = 0;
  uint16_t d = 0;
  uint16_t e = 0;
};

/// A compiled program: instruction stream plus its constant pool and path
/// table. Immutable after compilation; safe to share across threads (the VM
/// keeps all mutable state in a per-morsel VmScratch).
struct BytecodeChunk {
  std::vector<Instr> code;
  /// Deduplicated literal pool (AddConst).
  std::vector<Value> consts;
  /// Deduplicated navigation paths: each entry is the attribute list a
  /// kNavigate / fused-compare instruction walks via the shared Navigate()
  /// path-step evaluator.
  std::vector<std::vector<std::string>> paths;
  /// Register-file sizes (high-water marks from the compiler).
  uint8_t num_value_regs = 0;
  uint8_t num_bool_regs = 0;
  /// Width of the input rows the chunk was compiled against; column
  /// operands are validated against it.
  uint16_t num_cols = 0;

  /// Interns `v` into the constant pool (exact Value equality).
  uint16_t AddConst(const Value& v);
  /// Interns `path` into the path table.
  uint16_t AddPath(const std::vector<std::string>& path);

  /// Structural verification: register/constant/path/column operands in
  /// range, jump targets within the chunk, terminated by a return. Returns
  /// Status::Code::kInternal describing the first malformed instruction.
  /// The compiler validates every chunk it emits; the dispatch loop assumes
  /// a validated chunk.
  Status Validate() const;

  /// Human-readable listing (one instruction per line), used by EXPLAIN and
  /// tracing. Deterministic for a given chunk.
  std::string Disassemble() const;
};

}  // namespace rodin::vm

#endif  // RODIN_EXEC_VM_BYTECODE_H_
