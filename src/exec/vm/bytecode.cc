#include "exec/vm/bytecode.h"

#include "common/string_util.h"
#include "query/expr.h"

namespace rodin::vm {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadConst:
      return "LoadConst";
    case OpCode::kLoadColumn:
      return "LoadColumn";
    case OpCode::kNavigate:
      return "Navigate";
    case OpCode::kArith:
      return "Arith";
    case OpCode::kCompare:
      return "Compare";
    case OpCode::kCmpColConst:
      return "CmpColConst";
    case OpCode::kAnyTrue:
      return "AnyTrue";
    case OpCode::kBoolValue:
      return "BoolValue";
    case OpCode::kLoadBool:
      return "LoadBool";
    case OpCode::kNot:
      return "Not";
    case OpCode::kJumpIfFalse:
      return "JumpIfFalse";
    case OpCode::kJumpIfTrue:
      return "JumpIfTrue";
    case OpCode::kRetBool:
      return "RetBool";
    case OpCode::kRetValues:
      return "RetValues";
    case OpCode::kRetProj:
      return "RetProj";
  }
  return "?";
}

uint16_t BytecodeChunk::AddConst(const Value& v) {
  for (size_t i = 0; i < consts.size(); ++i) {
    if (consts[i].Compare(v) == 0) return static_cast<uint16_t>(i);
  }
  consts.push_back(v);
  return static_cast<uint16_t>(consts.size() - 1);
}

uint16_t BytecodeChunk::AddPath(const std::vector<std::string>& path) {
  for (size_t i = 0; i < paths.size(); ++i) {
    if (paths[i] == path) return static_cast<uint16_t>(i);
  }
  paths.push_back(path);
  return static_cast<uint16_t>(paths.size() - 1);
}

namespace {

Status Malformed(size_t ip, const char* what) {
  return Status::Error(Status::Code::kInternal,
                       StrFormat("malformed bytecode chunk: instruction %zu: %s",
                                 ip, what));
}

}  // namespace

Status BytecodeChunk::Validate() const {
  if (code.empty()) {
    return Status::Error(Status::Code::kInternal,
                         "malformed bytecode chunk: empty code");
  }
  auto vreg_ok = [&](uint8_t r) { return r < num_value_regs; };
  auto breg_ok = [&](uint8_t r) { return r < num_bool_regs; };
  for (size_t ip = 0; ip < code.size(); ++ip) {
    const Instr& in = code[ip];
    switch (in.op) {
      case OpCode::kLoadConst:
        if (!vreg_ok(in.a)) return Malformed(ip, "value register out of range");
        if (in.d >= consts.size()) return Malformed(ip, "constant out of range");
        break;
      case OpCode::kLoadColumn:
        if (!vreg_ok(in.a)) return Malformed(ip, "value register out of range");
        if (in.d >= num_cols) return Malformed(ip, "column out of range");
        break;
      case OpCode::kNavigate:
        if (!vreg_ok(in.a)) return Malformed(ip, "value register out of range");
        if (in.d >= num_cols) return Malformed(ip, "column out of range");
        if (in.e >= paths.size()) return Malformed(ip, "path out of range");
        break;
      case OpCode::kArith:
        if (!vreg_ok(in.a) || !vreg_ok(in.b) || !vreg_ok(in.c)) {
          return Malformed(ip, "value register out of range");
        }
        if (in.d > static_cast<uint16_t>(ArithOp::kSub)) {
          return Malformed(ip, "bad arithmetic operator");
        }
        break;
      case OpCode::kCompare:
        if (!breg_ok(in.a)) return Malformed(ip, "bool register out of range");
        if (!vreg_ok(in.b) || !vreg_ok(in.c)) {
          return Malformed(ip, "value register out of range");
        }
        if (in.d > static_cast<uint16_t>(CompareOp::kGe)) {
          return Malformed(ip, "bad comparison operator");
        }
        break;
      case OpCode::kCmpColConst:
        if (!breg_ok(in.a)) return Malformed(ip, "bool register out of range");
        if (in.b > static_cast<uint8_t>(CompareOp::kGe)) {
          return Malformed(ip, "bad comparison operator");
        }
        if (in.c >= num_cols) return Malformed(ip, "column out of range");
        if (in.d >= consts.size()) return Malformed(ip, "constant out of range");
        if (in.e != kNoPath && in.e >= paths.size()) {
          return Malformed(ip, "path out of range");
        }
        break;
      case OpCode::kAnyTrue:
        if (!breg_ok(in.a)) return Malformed(ip, "bool register out of range");
        if (!vreg_ok(in.b)) return Malformed(ip, "value register out of range");
        break;
      case OpCode::kBoolValue:
        if (!vreg_ok(in.a)) return Malformed(ip, "value register out of range");
        if (!breg_ok(in.b)) return Malformed(ip, "bool register out of range");
        break;
      case OpCode::kLoadBool:
        if (!breg_ok(in.a)) return Malformed(ip, "bool register out of range");
        break;
      case OpCode::kNot:
        if (!breg_ok(in.a) || !breg_ok(in.b)) {
          return Malformed(ip, "bool register out of range");
        }
        break;
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue:
        if (!breg_ok(in.a)) return Malformed(ip, "bool register out of range");
        if (in.d > code.size()) return Malformed(ip, "jump out of range");
        break;
      case OpCode::kRetBool:
        if (!breg_ok(in.a)) return Malformed(ip, "bool register out of range");
        break;
      case OpCode::kRetValues:
        if (!vreg_ok(in.a)) return Malformed(ip, "value register out of range");
        break;
      case OpCode::kRetProj:
        if (in.d > num_value_regs) {
          return Malformed(ip, "projection register range out of range");
        }
        break;
      default:
        return Malformed(ip, "unknown opcode");
    }
  }
  const OpCode last = code.back().op;
  if (last != OpCode::kRetBool && last != OpCode::kRetValues &&
      last != OpCode::kRetProj) {
    return Status::Error(Status::Code::kInternal,
                         "malformed bytecode chunk: missing terminal return");
  }
  return Status::Ok();
}

namespace {

std::string PathText(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& s : path) {
    if (!out.empty()) out += ".";
    out += s;
  }
  return out;
}

const char* ArithOpText(uint16_t op) {
  return static_cast<ArithOp>(op) == ArithOp::kAdd ? "+" : "-";
}

}  // namespace

std::string BytecodeChunk::Disassemble() const {
  std::string out = StrFormat("chunk: %zu instrs, %zu consts, %zu paths, %u vregs, %u bregs\n",
                              code.size(), consts.size(), paths.size(),
                              static_cast<unsigned>(num_value_regs),
                              static_cast<unsigned>(num_bool_regs));
  for (size_t ip = 0; ip < code.size(); ++ip) {
    const Instr& in = code[ip];
    out += StrFormat("%04zu %-12s", ip, OpCodeName(in.op));
    switch (in.op) {
      case OpCode::kLoadConst:
        out += StrFormat(" v%u, %s", in.a, consts[in.d].ToString().c_str());
        break;
      case OpCode::kLoadColumn:
        out += StrFormat(" v%u, col%u", in.a, in.d);
        break;
      case OpCode::kNavigate:
        out += StrFormat(" v%u, col%u.%s", in.a, in.d,
                         PathText(paths[in.e]).c_str());
        break;
      case OpCode::kArith:
        out += StrFormat(" v%u, v%u %s v%u", in.a, in.b, ArithOpText(in.d),
                         in.c);
        break;
      case OpCode::kCompare:
        out += StrFormat(" b%u, v%u %s v%u", in.a, in.b,
                         CompareOpName(static_cast<CompareOp>(in.d)), in.c);
        break;
      case OpCode::kCmpColConst:
        if (in.e == kNoPath) {
          out += StrFormat(" b%u, col%u %s %s", in.a, in.c,
                           CompareOpName(static_cast<CompareOp>(in.b)),
                           consts[in.d].ToString().c_str());
        } else {
          out += StrFormat(" b%u, col%u.%s %s %s", in.a, in.c,
                           PathText(paths[in.e]).c_str(),
                           CompareOpName(static_cast<CompareOp>(in.b)),
                           consts[in.d].ToString().c_str());
        }
        break;
      case OpCode::kAnyTrue:
        out += StrFormat(" b%u, v%u", in.a, in.b);
        break;
      case OpCode::kBoolValue:
        out += StrFormat(" v%u, b%u", in.a, in.b);
        break;
      case OpCode::kLoadBool:
        out += StrFormat(" b%u, %s", in.a, in.d != 0 ? "true" : "false");
        break;
      case OpCode::kNot:
        out += StrFormat(" b%u, b%u", in.a, in.b);
        break;
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue:
        out += StrFormat(" b%u, -> %04u", in.a, in.d);
        break;
      case OpCode::kRetBool:
        out += StrFormat(" b%u", in.a);
        break;
      case OpCode::kRetValues:
        out += StrFormat(" v%u", in.a);
        break;
      case OpCode::kRetProj:
        out += StrFormat(" v0..v%u", in.d > 0 ? in.d - 1 : 0);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace rodin::vm
