#include "exec/vm/compiler.h"

#include <utility>

#include "common/check.h"
#include "exec/eval_core.h"
#include "plan/pt_printer.h"

namespace rodin::vm {

namespace {

/// Register-file ceiling: register operands are 8 bits wide, and realistic
/// operator expressions use a handful of registers. An expression that
/// overflows this falls back to the interpreter.
constexpr int kMaxRegs = 255;
/// Constant-pool / path-table / jump-target ceiling (16-bit operands).
constexpr size_t kMaxPoolEntries = kNoPath;  // 0xffff is the no-path sentinel

/// Flips a comparison so that CompareValues(Flipped(op), b, a) ==
/// CompareValues(op, a, b) under the Value total order. Lets the fused
/// column-vs-constant compare normalize "literal op path" to "path
/// flipped-op literal".
CompareOp Flipped(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

/// Emits one expression tree into a chunk, mirroring EvalPred / EvalMulti
/// node for node so the compiled program performs page charges and method
/// invocations at identical points in identical order. Registers are
/// stack-allocated: children evaluate into temporaries released afterwards,
/// high-water marks become the chunk's register-file sizes.
class Compiler {
 public:
  Compiler(const RowSchema& schema, BytecodeChunk* chunk)
      : schema_(schema), chunk_(chunk) {
    chunk_->num_cols = static_cast<uint16_t>(schema.cols.size());
  }

  bool ok() const { return ok_; }

  int AllocV() {
    if (next_v_ >= kMaxRegs) ok_ = false;
    const int r = next_v_++;
    if (next_v_ > chunk_->num_value_regs) {
      chunk_->num_value_regs = static_cast<uint8_t>(next_v_);
    }
    return r;
  }
  void FreeV(int r) { next_v_ = r; }

  int AllocB() {
    if (next_b_ >= kMaxRegs) ok_ = false;
    const int r = next_b_++;
    if (next_b_ > chunk_->num_bool_regs) {
      chunk_->num_bool_regs = static_cast<uint8_t>(next_b_);
    }
    return r;
  }
  void FreeB(int r) { next_b_ = r; }

  size_t Emit(OpCode op, int a = 0, int b = 0, int c = 0, uint32_t d = 0,
              uint32_t e = 0) {
    if (code().size() >= kMaxPoolEntries) ok_ = false;
    Instr in;
    in.op = op;
    in.a = static_cast<uint8_t>(a);
    in.b = static_cast<uint8_t>(b);
    in.c = static_cast<uint8_t>(c);
    in.d = static_cast<uint16_t>(d);
    in.e = static_cast<uint16_t>(e);
    code().push_back(in);
    return code().size() - 1;
  }

  void PatchJump(size_t at) {
    code()[at].d = static_cast<uint16_t>(code().size());
  }

  uint16_t InternConst(const Value& v) {
    if (chunk_->consts.size() >= kMaxPoolEntries) ok_ = false;
    return chunk_->AddConst(v);
  }

  uint16_t InternPath(const std::vector<std::string>& p) {
    if (chunk_->paths.size() >= kMaxPoolEntries) ok_ = false;
    return chunk_->AddPath(p);
  }

  /// Resolves a kVarPath against the schema. False (→ interpreter fallback,
  /// which RODIN_CHECKs the same resolution) when unresolvable or the
  /// column exceeds the operand width.
  bool Resolve(const Expr& e, int* col, std::vector<std::string>* rest) {
    if (!schema_.ResolveVarPath(e.var(), e.path(), col, rest)) return false;
    return *col >= 0 && *col <= 0xff;
  }

  /// EvalPred equivalent: leaves the boolean result in b[dst].
  void EmitPred(const ExprPtr& pred, int dst) {
    if (!ok_) return;
    if (pred == nullptr) {
      Emit(OpCode::kLoadBool, dst, 0, 0, 1);
      return;
    }
    switch (pred->kind()) {
      case ExprKind::kAnd: {
        std::vector<size_t> exits;
        const auto& cs = pred->children();
        if (cs.empty()) {
          Emit(OpCode::kLoadBool, dst, 0, 0, 1);
          return;
        }
        for (size_t i = 0; i < cs.size(); ++i) {
          EmitPred(cs[i], dst);
          if (i + 1 < cs.size()) {
            exits.push_back(Emit(OpCode::kJumpIfFalse, dst));
          }
        }
        for (size_t at : exits) PatchJump(at);
        return;
      }
      case ExprKind::kOr: {
        std::vector<size_t> exits;
        const auto& cs = pred->children();
        if (cs.empty()) {
          Emit(OpCode::kLoadBool, dst, 0, 0, 0);
          return;
        }
        for (size_t i = 0; i < cs.size(); ++i) {
          EmitPred(cs[i], dst);
          if (i + 1 < cs.size()) {
            exits.push_back(Emit(OpCode::kJumpIfTrue, dst));
          }
        }
        for (size_t at : exits) PatchJump(at);
        return;
      }
      case ExprKind::kNot:
        EmitPred(pred->children()[0], dst);
        Emit(OpCode::kNot, dst, dst);
        return;
      case ExprKind::kCompare: {
        const ExprPtr& l = pred->children()[0];
        const ExprPtr& r = pred->children()[1];
        // Fused fast path: column/path against a constant. The literal side
        // has no evaluation effects, so normalizing "literal op path" to
        // "path flipped-op literal" preserves the interpreted charge order
        // (the path side is still materialized in full before comparing).
        int col = -1;
        std::vector<std::string> rest;
        if (l->kind() == ExprKind::kVarPath &&
            r->kind() == ExprKind::kLiteral && Resolve(*l, &col, &rest)) {
          EmitCmpColConst(dst, pred->compare_op(), col, rest, r->literal());
          return;
        }
        if (r->kind() == ExprKind::kVarPath &&
            l->kind() == ExprKind::kLiteral && Resolve(*r, &col, &rest)) {
          EmitCmpColConst(dst, Flipped(pred->compare_op()), col, rest,
                          l->literal());
          return;
        }
        // General form: materialize both sides fully (left first, exactly
        // like EvalPred), then the exists-semantics comparison.
        const int va = AllocV();
        EmitMulti(l, va);
        const int vb = AllocV();
        EmitMulti(r, vb);
        Emit(OpCode::kCompare, dst, va, vb,
             static_cast<uint32_t>(pred->compare_op()));
        FreeV(vb);
        FreeV(va);
        return;
      }
      case ExprKind::kLiteral:
        Emit(OpCode::kLoadBool, dst, 0, 0,
             pred->literal().is_bool() && pred->literal().AsBool() ? 1 : 0);
        return;
      case ExprKind::kArith:
        // A bare arithmetic expression is not a predicate (EvalPred returns
        // false without evaluating the operands).
        Emit(OpCode::kLoadBool, dst, 0, 0, 0);
        return;
      case ExprKind::kVarPath: {
        const int v = AllocV();
        EmitMulti(pred, v);
        Emit(OpCode::kAnyTrue, dst, v);
        FreeV(v);
        return;
      }
    }
    ok_ = false;
  }

  /// EvalMulti equivalent: leaves the value list in v[dst].
  void EmitMulti(const ExprPtr& expr, int dst) {
    if (!ok_) return;
    if (expr == nullptr) {
      ok_ = false;  // EvalMulti(null) is empty; no operator compiles this
      return;
    }
    switch (expr->kind()) {
      case ExprKind::kLiteral:
        Emit(OpCode::kLoadConst, dst, 0, 0, InternConst(expr->literal()));
        return;
      case ExprKind::kVarPath: {
        int col = -1;
        std::vector<std::string> rest;
        if (!Resolve(*expr, &col, &rest)) {
          ok_ = false;
          return;
        }
        if (rest.empty()) {
          Emit(OpCode::kLoadColumn, dst, 0, 0, static_cast<uint32_t>(col));
        } else {
          Emit(OpCode::kNavigate, dst, 0, 0, static_cast<uint32_t>(col),
               InternPath(rest));
        }
        return;
      }
      case ExprKind::kArith: {
        const int va = AllocV();
        EmitMulti(expr->children()[0], va);
        const int vb = AllocV();
        EmitMulti(expr->children()[1], vb);
        Emit(OpCode::kArith, dst, va, vb,
             static_cast<uint32_t>(expr->arith_op()));
        FreeV(vb);
        FreeV(va);
        return;
      }
      case ExprKind::kCompare:
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kNot: {
        const int b = AllocB();
        EmitPred(expr, b);
        Emit(OpCode::kBoolValue, dst, b);
        FreeB(b);
        return;
      }
    }
    ok_ = false;
  }

 private:
  void EmitCmpColConst(int dst, CompareOp op, int col,
                       const std::vector<std::string>& rest,
                       const Value& literal) {
    Emit(OpCode::kCmpColConst, dst, static_cast<int>(op), col,
         InternConst(literal), rest.empty() ? kNoPath : InternPath(rest));
  }

  std::vector<Instr>& code() { return chunk_->code; }

  const RowSchema& schema_;
  BytecodeChunk* chunk_;
  bool ok_ = true;
  int next_v_ = 0;
  int next_b_ = 0;
};

std::optional<BytecodeChunk> Finish(BytecodeChunk chunk, bool ok) {
  if (!ok) return std::nullopt;
  const Status s = chunk.Validate();
  RODIN_CHECK(s.ok(), "compiler emitted an invalid chunk");
  return chunk;
}

}  // namespace

std::optional<BytecodeChunk> CompilePredicate(const ExprPtr& pred,
                                              const RowSchema& schema) {
  BytecodeChunk chunk;
  Compiler c(schema, &chunk);
  const int b = c.AllocB();
  c.EmitPred(pred, b);
  c.Emit(OpCode::kRetBool, b);
  return Finish(std::move(chunk), c.ok());
}

std::optional<BytecodeChunk> CompileMulti(const ExprPtr& expr,
                                          const RowSchema& schema) {
  if (expr == nullptr) return std::nullopt;
  BytecodeChunk chunk;
  Compiler c(schema, &chunk);
  const int v = c.AllocV();
  c.EmitMulti(expr, v);
  c.Emit(OpCode::kRetValues, v);
  return Finish(std::move(chunk), c.ok());
}

std::optional<BytecodeChunk> CompileProjection(const std::vector<OutCol>& proj,
                                               const RowSchema& schema) {
  if (proj.empty() || proj.size() > 0xff) return std::nullopt;
  BytecodeChunk chunk;
  Compiler c(schema, &chunk);
  // Column k's values land in v[k]; kRetProj announces the register range.
  for (size_t k = 0; k < proj.size(); ++k) {
    const int v = c.AllocV();
    RODIN_CHECK(v == static_cast<int>(k), "projection register layout");
  }
  for (size_t k = 0; k < proj.size(); ++k) {
    c.EmitMulti(proj[k].expr, static_cast<int>(k));
  }
  c.Emit(OpCode::kRetProj, 0, 0, 0, static_cast<uint32_t>(proj.size()));
  return Finish(std::move(chunk), c.ok());
}

namespace {

void AppendChunk(std::string* out, const PTNode& node, const char* what,
                 const std::optional<BytecodeChunk>& chunk) {
  *out += PTNodeLabel(node) + " · " + what + ":\n";
  if (chunk.has_value()) {
    *out += chunk->Disassemble();
  } else {
    *out += "(interpreted: not compilable)\n";
  }
}

/// Mirrors BuildOp's expression wiring: which expressions each operator
/// compiles, and against which input schema.
void DisassembleNode(const PTNode& node, std::string* out) {
  switch (node.kind) {
    case PTKind::kSel: {
      // IndexSel and the fused FilterScan evaluate against the node's own
      // columns; the streaming Filter evaluates against its child's.
      const bool streaming = node.sel_access == SelAccess::kSeqScan &&
                             node.children[0]->kind != PTKind::kEntity;
      RowSchema schema;
      schema.cols = streaming ? node.children[0]->cols : node.cols;
      if (node.pred != nullptr) {
        AppendChunk(out, node, "predicate",
                    CompilePredicate(node.pred, schema));
      }
      break;
    }
    case PTKind::kProj: {
      RowSchema in;
      in.cols = node.children[0]->cols;
      AppendChunk(out, node, "projection", CompileProjection(node.proj, in));
      break;
    }
    case PTKind::kEJ: {
      if (node.algo == JoinAlgo::kIndexJoin) {
        ExprPtr residual;
        const ExprPtr probe =
            ExtractIndexProbe(node, node.children[1]->binding, &residual);
        RowSchema left;
        left.cols = node.children[0]->cols;
        if (probe != nullptr) {
          AppendChunk(out, node, "probe", CompileMulti(probe, left));
        }
        if (residual != nullptr) {
          RowSchema schema;
          schema.cols = node.cols;
          AppendChunk(out, node, "residual",
                      CompilePredicate(residual, schema));
        }
      } else if (node.pred != nullptr) {
        RowSchema schema;
        schema.cols = node.cols;
        AppendChunk(out, node, "predicate",
                    CompilePredicate(node.pred, schema));
      }
      break;
    }
    default:
      break;
  }
  for (const auto& c : node.children) DisassembleNode(*c, out);
}

}  // namespace

std::string DisassemblePlan(const PTNode& plan) {
  std::string out;
  DisassembleNode(plan, &out);
  return out;
}

}  // namespace rodin::vm
