#ifndef RODIN_EXEC_VM_COMPILER_H_
#define RODIN_EXEC_VM_COMPILER_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/row.h"
#include "exec/vm/bytecode.h"
#include "plan/pt.h"
#include "query/expr.h"

namespace rodin::vm {

/// Compiles `pred` into a boolean program (terminal kRetBool) evaluated
/// against rows of `schema`, replicating EvalPred's semantics exactly:
/// And/Or short-circuit left to right, Compare materializes both sides
/// fully then applies exists-semantics, a bare VarPath is "any value is
/// bool true", a bare literal is "is bool true", a bare arithmetic
/// expression is false.
///
/// Returns nullopt when the expression cannot be compiled (unresolvable
/// variable path, register file or operand-width overflow on pathological
/// shapes); callers fall back to the interpreter, which is always correct.
/// Never returns an invalid chunk: every emitted chunk passes Validate().
std::optional<BytecodeChunk> CompilePredicate(const ExprPtr& pred,
                                              const RowSchema& schema);

/// Compiles `expr` into a multi-value program (terminal kRetValues) with
/// EvalMulti's semantics: literals yield themselves, paths fan out through
/// collections and drop nulls, arithmetic is a cross product, boolean kinds
/// yield a single Bool.
std::optional<BytecodeChunk> CompileMulti(const ExprPtr& expr,
                                          const RowSchema& schema);

/// Compiles a projection list into one program (terminal kRetProj) that
/// leaves column k's values in v[k]. The caller applies the odometer
/// cross-product over the registers, as ProjOp does for interpreted eval.
std::optional<BytecodeChunk> CompileProjection(const std::vector<OutCol>& proj,
                                               const RowSchema& schema);

/// Renders every chunk compiled-eval would run for `plan`, one block per
/// operator expression (selection predicates, projection lists, index-join
/// probes and residuals, join predicates), mirroring the batch engine's
/// operator construction. Used by EXPLAIN's disassembly section.
std::string DisassemblePlan(const PTNode& plan);

}  // namespace rodin::vm

#endif  // RODIN_EXEC_VM_COMPILER_H_
