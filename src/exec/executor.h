#ifndef RODIN_EXEC_EXECUTOR_H_
#define RODIN_EXEC_EXECUTOR_H_

#include <map>
#include <string>

#include "cost/params.h"
#include "exec/row.h"
#include "plan/pt.h"
#include "storage/database.h"

namespace rodin {

namespace obs {
class Tracer;
}  // namespace obs

/// Runtime counters, in the same vocabulary as the cost model: page I/O is
/// tracked by the buffer pool; these cover the CPU side.
struct ExecCounters {
  uint64_t predicate_evals = 0;  // per-tuple predicate evaluations
  uint64_t method_calls = 0;
  double method_cost = 0;        // sum of declared method costs invoked
  uint64_t rows_produced = 0;    // rows emitted by the root
  uint64_t fix_iterations = 0;   // semi-naive iterations across all Fix nodes
};

/// Per-operator runtime profile, collected when CollectOpStats(true). All
/// figures are *inclusive* of the operator's children (materialized
/// bottom-up evaluation has no pipelining to attribute elsewhere); Fix and
/// Delta nodes evaluate their subtrees repeatedly, so invocations > 1 there.
struct OpStats {
  uint64_t invocations = 0;
  uint64_t rows = 0;    // rows the operator returned, summed over invocations
  uint64_t pages = 0;   // buffer-pool fetches during evaluation
  double micros = 0;    // wall time spent evaluating
};

/// Executes processing trees against the object store. Evaluation is
/// bottom-up and materialized (each node produces a Table), mirroring the
/// paper's model of PTs; Sel-over-entity is fused into the scan so that the
/// access/eval accounting matches the Figure 5 formulas. Fixpoints run the
/// semi-naive (delta) algorithm referenced by Figure 5's Fix cost.
///
/// Every page touched goes through the database's buffer pool, so after a
/// run `MeasuredCost()` expresses the same quantity the cost model
/// estimates: misses * pr + predicate_evals * ev_tuple + method costs.
class Executor {
 public:
  explicit Executor(Database* db, CostParams params = {});

  /// Evaluates `plan` and returns its result. Counters accumulate across
  /// calls until ResetMeasurement().
  Table Execute(const PTNode& plan);

  const ExecCounters& counters() const { return counters_; }

  /// Measured cost of everything executed since the last reset.
  double MeasuredCost() const;

  /// Zeroes counters, per-operator stats and buffer-pool statistics;
  /// optionally drops resident pages (cold start).
  void ResetMeasurement(bool clear_buffer);

  /// Enables the per-operator profile (a map lookup + clock read per node
  /// evaluation; off by default).
  void CollectOpStats(bool on) { collect_op_stats_ = on; }

  /// Span sink for Execute() calls (null = no tracing).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Profile of every node evaluated since the last reset, keyed by plan
  /// node. Empty unless CollectOpStats(true).
  const std::map<const PTNode*, OpStats>& op_stats() const {
    return op_stats_;
  }

 private:
  Table Eval(const PTNode& node);
  Table EvalNode(const PTNode& node);
  Table EvalEntity(const PTNode& node);
  Table EvalDelta(const PTNode& node);
  Table EvalSel(const PTNode& node);
  Table EvalProj(const PTNode& node);
  Table EvalEJ(const PTNode& node);
  Table EvalIJ(const PTNode& node);
  Table EvalPIJ(const PTNode& node);
  Table EvalUnion(const PTNode& node);
  Table EvalFix(const PTNode& node);

  /// All instantiations of `expr` on `row` (path steps through collections
  /// fan out; nulls produce nothing). Object dereferences are charged.
  std::vector<Value> EvalMulti(const RowSchema& schema, const Row& row,
                               const ExprPtr& expr);

  /// Boolean evaluation with exists-semantics over multi-valued paths.
  bool EvalPred(const RowSchema& schema, const Row& row, const ExprPtr& pred);

  /// Navigates `path` from `start` (charging dereferences), appending every
  /// reached value to `out`.
  void Navigate(const Value& start, const std::vector<std::string>& path,
                size_t step, std::vector<Value>* out);

  /// A temporary file: a run of simulated pages sized for `rows` rows of
  /// `ncols` columns. Scanning it charges its pages to the buffer pool.
  struct TempFile {
    PageId first = 0;
    uint64_t pages = 0;
  };
  TempFile MakeTemp(size_t rows, size_t ncols);
  void ChargeTempScan(const TempFile& temp);

  Database* db_;
  CostParams params_;
  ExecCounters counters_;
  uint64_t start_misses_ = 0;
  bool collect_op_stats_ = false;
  obs::Tracer* tracer_ = nullptr;
  std::map<const PTNode*, OpStats> op_stats_;
  /// Delta tables of in-flight fixpoints, by view name, with the temp file
  /// backing each delta (scans of the delta charge it).
  std::map<std::string, std::pair<const Table*, TempFile>> deltas_;

  /// Memoized fixpoint results, keyed by plan fingerprint: a view consumed
  /// by several predicate nodes is instantiated (cloned) into each
  /// consumer's plan; the data is immutable, so the second occurrence costs
  /// one temp scan instead of a recomputation. Fixpoints that reference an
  /// enclosing fixpoint's delta are not cacheable.
  std::map<std::string, std::pair<Table, TempFile>> fix_cache_;
};

}  // namespace rodin

#endif  // RODIN_EXEC_EXECUTOR_H_
