#ifndef RODIN_EXEC_EXECUTOR_H_
#define RODIN_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "cost/params.h"
#include "exec/row.h"
#include "plan/pt.h"
#include "storage/database.h"

namespace rodin {

namespace obs {
class Tracer;
}  // namespace obs

class ResultCursor;
class ThreadPool;

/// Runtime counters, in the same vocabulary as the cost model: page I/O is
/// tracked by the buffer pool; these cover the CPU side.
struct ExecCounters {
  uint64_t predicate_evals = 0;  // per-tuple predicate evaluations
  uint64_t method_calls = 0;
  double method_cost = 0;        // sum of declared method costs invoked
  uint64_t rows_produced = 0;    // rows emitted by the root
  uint64_t fix_iterations = 0;   // semi-naive iterations across all Fix nodes
};

/// Per-operator runtime profile, collected when CollectOpStats(true). All
/// figures are *inclusive* of the operator's children; Fix and Delta nodes
/// evaluate their subtrees repeatedly, so invocations > 1 there. `micros` is
/// coordinator wall time — under parallel evaluation the workers' summed CPU
/// time is NOT added on top (the coordinator blocks while morsels run, so
/// wall time is what an operator actually costs end-to-end).
struct OpStats {
  uint64_t invocations = 0;
  uint64_t rows = 0;    // rows the operator returned, summed over invocations
  uint64_t pages = 0;   // buffer-pool charges during evaluation
  double micros = 0;    // coordinator wall time spent in the operator
};

/// Process-wide default for ExecOptions::compiled_eval: true when the
/// RODIN_COMPILED_EVAL environment variable is set to anything but "0"
/// (read once, like the plan-cache and fault-injection switches).
bool CompiledEvalEnvDefault();

/// Process-wide default for QueryContext::spill: on unless the RODIN_SPILL
/// environment variable is "0" or "off" (read once).
bool SpillEnvDefault();

/// Process-wide default for the temp-page ledger budget when the query sets
/// neither spill_budget_pages nor memory_budget_pages: the RODIN_SPILL_BUDGET
/// environment variable (pages; read once; 0 / unset = unlimited). CI's
/// spill job forces a tiny value here to exercise the spill paths in every
/// test without touching the buffer pool's accounting.
size_t SpillBudgetEnvDefault();

/// Resolves the run's effective spill switch: the query's tri-state
/// override when engaged, else the RODIN_SPILL default.
bool EffectiveSpillEnabled(const QueryContext* query);

/// Resolves the run's effective temp-page ledger budget (0 = unlimited):
/// query->spill_budget_pages when nonzero, else query->memory_budget_pages
/// when nonzero, else the RODIN_SPILL_BUDGET default.
size_t EffectiveSpillBudgetPages(const QueryContext* query);

/// Which operator working set hit the budget. Carried in the
/// kResourceExhausted Status::detail (see PackResourceDetail) and used to
/// label spill metrics.
enum class SpillOpTag : uint8_t {
  kJoinBuild = 1,  // equijoin inner materialization / hash build payload
  kFixDelta = 2,   // semi-naive per-iteration delta table
  kDedup = 3,      // dedup-Proj table
  kFixCache = 4,   // memoized fixpoint result
  kUnion = 5,      // union dedup table
};

/// Machine-readable kResourceExhausted payload, same discipline as
/// kOverloaded (in-flight count) and kConflict (live-cursor count):
///   bits 56..63  SpillOpTag of the tripping operator
///   bits 28..55  pages requested (saturated at 2^28 - 1)
///   bits  0..27  pages remaining in the budget (saturated)
/// so pool managers branch on the payload, not on message text.
constexpr uint64_t kResourceDetailFieldMax = (1ull << 28) - 1;

constexpr uint64_t PackResourceDetail(SpillOpTag tag, uint64_t requested,
                                      uint64_t remaining) {
  return (static_cast<uint64_t>(tag) << 56) |
         ((requested > kResourceDetailFieldMax ? kResourceDetailFieldMax
                                               : requested)
          << 28) |
         (remaining > kResourceDetailFieldMax ? kResourceDetailFieldMax
                                              : remaining);
}

constexpr SpillOpTag ResourceDetailOp(uint64_t detail) {
  return static_cast<SpillOpTag>(detail >> 56);
}

constexpr uint64_t ResourceDetailRequested(uint64_t detail) {
  return (detail >> 28) & kResourceDetailFieldMax;
}

constexpr uint64_t ResourceDetailRemaining(uint64_t detail) {
  return detail & kResourceDetailFieldMax;
}

/// Aggregate spill activity of one executor since its last reset. Fed into
/// the rodin.spill.* metrics and the "execute" span; deliberately separate
/// from ExecCounters / MeasuredCost, which stay bit-identical spill-on vs.
/// all-in-memory (docs/ROBUSTNESS.md).
struct SpillStats {
  uint64_t spills = 0;      // operator working sets that overflowed to disk
  uint64_t partitions = 0;  // budget-sized partitions across all spill files
  uint64_t bytes = 0;       // serialized bytes written
  uint64_t passes = 0;      // sequential read-back passes over spill files

  void Add(const SpillStats& o) {
    spills += o.spills;
    partitions += o.partitions;
    bytes += o.bytes;
    passes += o.passes;
  }
};

class SpillFile;

/// Builds the typed kResourceExhausted status with the packed detail above.
/// `row_refusal` selects the single-oversized-row message (the unconditional
/// refusal — no partitioning can split one row).
Status MakeResourceExhausted(SpillOpTag tag, uint64_t requested,
                             uint64_t budget, uint64_t live, bool row_refusal);

/// Pages one temp-file row of `ncols` columns occupies (the 16-bytes-per-
/// value model of AllocateTempFile). A row wider than the whole budget is
/// refused even with spilling on.
uint64_t TempRowPages(size_t ncols);

/// Execution configuration. The defaults give the batched engine with
/// sequential (single-thread) morsels; any combination of batch_rows and
/// exec_threads produces bit-identical ExecCounters, OpStats page counts and
/// MeasuredCost() — parallelism changes wall time, never accounting.
struct ExecOptions {
  size_t batch_rows = 1024;   // rows per operator batch (min 1)
  size_t exec_threads = 1;    // worker threads for morsel-parallel operators
  /// Compile operator predicates, projections and path-step programs into
  /// register bytecode at plan time and run the chunks per row (see
  /// src/exec/vm/). Same rows, same ExecCounters / OpStats / MeasuredCost
  /// bit for bit, for every batch_rows x exec_threads combination — the
  /// interpreter remains the differential oracle. Defaults to the
  /// RODIN_COMPILED_EVAL environment switch; ignored by the legacy engine,
  /// which always interprets.
  bool compiled_eval = CompiledEvalEnvDefault();
  /// Build a hash table over the inner of an equi nested-loop join instead
  /// of scanning it per outer row. Produces the identical result set and
  /// order, but honestly changes predicate_evals and page accounting (fewer
  /// tuple comparisons, no per-outer-row re-scan charges), so it is opt-in
  /// and excluded from the accounting-identity guarantee.
  bool hash_equijoin = false;
  /// Use the original whole-table bottom-up evaluator (the differential
  /// oracle and bench baseline).
  bool use_legacy = false;
  /// The run's lifecycle budget (deadline / cancel / memory), referenced —
  /// never copied — from the QueryOptions' QueryContext. Null = unbounded.
  /// Both engines poll it on the coordinator thread only: per morsel batch
  /// and per semi-naive iteration (batched), per fixpoint iteration
  /// (legacy). Tripping it aborts the evaluation with the corresponding
  /// status; partial page charges stay exact.
  const QueryContext* query = nullptr;
  /// Consult the process FaultInjector (RODIN_FAULTS) during this run. Only
  /// Session's non-streaming paths set this, so raw Executor callers — the
  /// differential oracle, benches — and streaming cursors are never
  /// perturbed by an enabled injector.
  bool inject_faults = false;
};

/// A temporary file: a run of simulated pages sized for `rows` rows of
/// `ncols` columns. Scanning it charges its pages.
struct TempFile {
  PageId first = 0;
  uint64_t pages = 0;
};

/// Allocates a temp file from the database's page space. Thread-safe, but
/// the executor only ever allocates from the coordinator thread so that the
/// page-id sequence of a query is deterministic.
TempFile AllocateTempFile(Database* db, size_t rows, size_t ncols);

/// Charges one full scan of `temp` to `charger`.
void ChargeTempScan(const TempFile& temp, PageCharger* charger);

/// One memoized fixpoint result. The temp file (simulated pages) always
/// exists — cache hits charge a scan of it regardless of where the payload
/// lives — but the row payload is either in memory (`result`) or, when the
/// insert overflowed the page budget, in a spill file. The caching decision
/// itself is budget-independent so that cache-hit charges stay bit-identical
/// spill-on vs. unlimited.
struct FixCacheEntry {
  Table result;                      // empty when spilled
  TempFile temp;
  std::shared_ptr<SpillFile> spill;  // non-null when the payload is on disk
};

/// Executes processing trees against the object store. The default engine is
/// batched and morsel-parallel (see BatchEngine): operators pull RowBatches
/// of ExecOptions::batch_rows rows, and scans / filters / joins fan per-row
/// work across a shared worker pool. Fixpoints still run the semi-naive
/// (delta) algorithm with a full barrier per iteration, and Sel-over-entity
/// is fused into the scan so the access/eval accounting matches the
/// Figure 5 formulas. The pre-batching whole-table evaluator is retained
/// behind ExecOptions::use_legacy as the differential-testing oracle.
///
/// Every page touched is (eventually) charged to the database's buffer
/// pool, so after a run `MeasuredCost()` expresses the same quantity the
/// cost model estimates: misses * pr + predicate_evals * ev_tuple + method
/// costs. The batched engine defers charges through per-operator logs and
/// replays them in the legacy evaluation order, which makes the measured
/// cost bit-identical across batch sizes and thread counts.
class Executor {
 public:
  explicit Executor(Database* db, CostParams params = {});
  ~Executor();

  /// Evaluates `plan` and returns its result. Counters accumulate across
  /// calls until ResetMeasurement(). Any budget/fault abort yields an empty
  /// table (use ExecuteInto to observe the status).
  Table Execute(const PTNode& plan);
  Table Execute(const PTNode& plan, const ExecOptions& options);

  /// Evaluates `plan` into `*out`, reporting budget violations (kCancelled,
  /// kDeadlineExceeded, kResourceExhausted) and injected faults (kFault) as
  /// a status instead of swallowing them. On a non-OK status `*out` is
  /// empty but the counters and page charges of the work actually performed
  /// remain — accounting stays exact for partial runs.
  Status ExecuteInto(const PTNode& plan, const ExecOptions& options,
                     Table* out);

  /// Streaming evaluation: returns a cursor the caller drains batch by
  /// batch. Page charges and counters are folded into this executor when
  /// the cursor finishes (or is destroyed).
  ResultCursor ExecuteStream(const PTNode& plan, ExecOptions options = {});

  const ExecCounters& counters() const { return counters_; }

  /// Measured cost of everything executed since the last reset.
  double MeasuredCost() const;

  /// Zeroes counters, per-operator stats and buffer-pool statistics;
  /// optionally drops resident pages (cold start).
  void ResetMeasurement(bool clear_buffer);

  /// Multi-tenant variant: zeroes only this executor's own state (counters,
  /// op stats, the miss watermark MeasuredCost subtracts) and leaves the
  /// shared buffer pool's statistics and resident set untouched, so
  /// concurrent executors over one Database never clobber each other's
  /// measurement. MeasuredCost() still reports this run's delta; under
  /// concurrent load the page component includes interleaved misses from
  /// other queries (shared-pool attribution is approximate by design —
  /// see docs/SERVER.md).
  void ResetMeasurementShared();

  /// Drops memoized fixpoint results. Session's fault-retry path calls this
  /// between attempts so a retried run re-derives (and re-charges) exactly
  /// what a clean run would.
  void ClearFixCache() { fix_cache_.clear(); }

  /// Enables the per-operator profile (a map lookup + clock read per node
  /// evaluation; off by default).
  void CollectOpStats(bool on) { collect_op_stats_ = on; }

  /// Span sink for Execute() calls (null = no tracing).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Profile of every node evaluated since the last reset, keyed by plan
  /// node. Empty unless CollectOpStats(true).
  const std::map<const PTNode*, OpStats>& op_stats() const {
    return op_stats_;
  }

  /// Spill activity since the last reset (batched engine: real partitioned
  /// spill files; legacy engine: logical spills — the ledger stops charging
  /// but rows stay in memory, keeping the oracle's answer machinery
  /// untouched).
  const SpillStats& spill_stats() const { return spill_stats_; }

 private:
  friend class ResultCursor;

  /// Coordinator-thread budget poll + probabilistic page-fetch fault for
  /// the legacy evaluator; throws internal::ExecAbort on a trip.
  void CheckLegacyBudget(int fix_iter);

  /// AllocateTempFile with the cumulative temp-page ledger, spill decision
  /// and alloc-fault checks applied (legacy evaluator; the batched engine
  /// has its own in ExecCtx). Charges the ledger and returns spilled=false
  /// when the temp fits the remaining budget; performs a *logical* spill
  /// (no ledger charge, spill counter bumped, rows stay in memory) when it
  /// does not and spilling is on; throws a typed kResourceExhausted with
  /// the packed detail otherwise. A single row larger than the whole budget
  /// is refused unconditionally.
  TempFile AllocTempChecked(size_t rows, size_t ncols, SpillOpTag tag,
                            bool* spilled = nullptr);

  /// Returns fix per-iteration delta pages to the legacy ledger (the one
  /// temp class genuinely freed mid-query; join temps and cache payloads
  /// are held to query end).
  void ReleaseTempPages(uint64_t pages);

  Table Eval(const PTNode& node);
  Table EvalNode(const PTNode& node);
  Table EvalEntity(const PTNode& node);
  Table EvalDelta(const PTNode& node);
  Table EvalSel(const PTNode& node);
  Table EvalProj(const PTNode& node);
  Table EvalEJ(const PTNode& node);
  Table EvalIJ(const PTNode& node);
  Table EvalPIJ(const PTNode& node);
  Table EvalUnion(const PTNode& node);
  Table EvalFix(const PTNode& node);

  /// Returns the shared worker pool for `threads` workers, creating it on
  /// first use. Returns null for sequential execution. One pool per distinct
  /// size is kept alive until the executor dies: unfinished streaming
  /// cursors hold raw pointers into their pool, so requesting a different
  /// exec_threads must never destroy a pool already handed out.
  ThreadPool* PoolFor(size_t threads);

  /// Bumps the process-wide rodin.exec.* metrics for one finished
  /// evaluation (shared by Execute and finishing cursors).
  void EmitExecMetrics(size_t rows);

  Database* db_;
  CostParams params_;
  ExecCounters counters_;
  /// Active run's budget / fault wiring (set for the duration of one
  /// ExecuteInto call; the legacy Eval* methods read them).
  const QueryContext* query_ = nullptr;
  bool inject_faults_ = false;
  /// counters_.method_cost in 2^-20 fixed point — the summation domain, so
  /// that morsel-parallel partial sums merge order-independently. The
  /// double mirror is refreshed whenever the fp value changes.
  uint64_t method_cost_fp_ = 0;
  uint64_t start_misses_ = 0;
  bool collect_op_stats_ = false;
  SpillStats spill_stats_;
  /// Legacy-path temp-page ledger, resolved per ExecuteInto call from the
  /// run's QueryContext + environment (see EffectiveSpillBudgetPages).
  size_t live_temp_pages_ = 0;
  size_t ledger_budget_pages_ = 0;
  bool spill_enabled_ = true;
  obs::Tracer* tracer_ = nullptr;
  std::map<const PTNode*, OpStats> op_stats_;
  /// Worker pools by size, shared across queries; see PoolFor().
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  /// Delta tables of in-flight fixpoints (legacy evaluator only), by view
  /// name, with the temp file backing each delta.
  std::map<std::string, std::pair<const Table*, TempFile>> deltas_;

  /// Memoized fixpoint results, keyed by plan fingerprint: a view consumed
  /// by several predicate nodes is instantiated (cloned) into each
  /// consumer's plan; the data is immutable, so the second occurrence costs
  /// one temp scan instead of a recomputation. Fixpoints that reference an
  /// enclosing fixpoint's delta are not cacheable. Shared by both engines.
  std::map<std::string, FixCacheEntry> fix_cache_;
};

}  // namespace rodin

#endif  // RODIN_EXEC_EXECUTOR_H_
