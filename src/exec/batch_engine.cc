#include "exec/batch_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/faults.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "exec/eval_core.h"
#include "exec/exec_abort.h"
#include "exec/vm/compiler.h"
#include "exec/vm/vm.h"
#include "obs/metrics.h"
#include "storage/spill_file.h"

namespace rodin {

namespace {

/// Per-morsel CPU counters. All integral (method cost in fixed point), so
/// partial sums merge to the same totals regardless of morsel boundaries.
struct MorselCounters {
  uint64_t predicate_evals = 0;
  uint64_t method_calls = 0;
  uint64_t method_cost_fp = 0;

  void MergeFrom(const MorselCounters& o) {
    predicate_evals += o.predicate_evals;
    method_calls += o.method_calls;
    method_cost_fp += o.method_cost_fp;
  }
};

/// One in-flight fixpoint delta, by view name. The temp file backs the
/// delta's page accounting (scans charge it) whether or not the rows were
/// spilled; when `spill` is set the row *bytes* live on disk and readers
/// stream them back instead of touching `rows` ("spill wins").
struct DeltaSource {
  const Table* rows = nullptr;
  TempFile temp;
  std::shared_ptr<SpillFile> spill;
};

/// Shared state of one engine instance. Only the coordinator thread mutates
/// it; workers see it exclusively through morsel-local EvalContexts.
struct ExecCtx {
  Database* db = nullptr;
  size_t batch_rows = 1024;
  size_t threads = 1;
  bool hash_equijoin = false;
  bool compiled_eval = false;
  bool collect_op_stats = false;
  ThreadPool* pool = nullptr;
  std::map<std::string, FixCacheEntry>* fix_cache = nullptr;

  MorselCounters counters;
  uint64_t fix_iterations = 0;
  /// Compiled-eval profile (coordinator only): chunks / instructions
  /// compiled while building operators, rows evaluated by the VM (merged
  /// from morsel scratches). Observability only — deliberately outside the
  /// accounting-identity contract.
  uint64_t vm_chunks = 0;
  uint64_t vm_instrs = 0;
  uint64_t vm_rows = 0;
  /// Engine-local per-node profile with *exclusive* page counts; made
  /// inclusive by a plan walk at Finalize, then merged into the executor.
  std::map<const PTNode*, OpStats> local_stats;
  /// Delta tables of in-flight fixpoints, by view name.
  std::map<std::string, DeltaSource> deltas;

  /// Lifecycle budget / fault wiring (coordinator thread only; workers
  /// never consult either).
  const QueryContext* query = nullptr;
  bool inject_faults = false;

  /// Spill policy (see BatchEngine::Config): over-budget temp working sets
  /// move their row bytes to disk instead of aborting. The ledger tracks
  /// the query's *cumulative live* temp pages; spilled temps are not
  /// charged against it (their bytes are on disk, tracked in `spill`).
  bool spill_enabled = true;
  size_t ledger_budget = 0;
  size_t live_temp_pages = 0;
  SpillStats spill;

  /// How many input items a leaf grabs per Next: one output batch per
  /// worker, so every worker has a full morsel of work.
  size_t Quantum() const { return batch_rows * std::max<size_t>(1, threads); }

  /// Coordinator-thread budget poll; throws internal::ExecAbort on a
  /// cancel / deadline trip, an injected page-fetch fault, or a forced
  /// deadline at semi-naive iteration `fix_iter` (0 = not at an iteration
  /// boundary). Called at batch boundaries (BatchEngine::Next, morsel
  /// fan-out) and per fixpoint iteration.
  void CheckAbort(int fix_iter) {
    if (inject_faults) {
      FaultInjector& fi = FaultInjector::Global();
      if (fix_iter > 0 && fi.ForceDeadlineAtFixIter(fix_iter)) {
        throw internal::ExecAbort(Status::Error(
            Status::Code::kDeadlineExceeded,
            StrFormat("deadline exceeded (forced at fix iteration %d)",
                      fix_iter)));
      }
      if (fi.InjectPageFetchFault()) {
        throw internal::ExecAbort(Status::Error(
            Status::Code::kFault, "injected page-fetch failure"));
      }
    }
    if (query != nullptr) {
      if (Status s = query->Check(); !s.ok()) {
        throw internal::ExecAbort(std::move(s));
      }
    }
  }

  /// AllocateTempFile with the cumulative temp-page ledger and alloc-fault
  /// checks. The page-id allocation is identical whether or not the temp
  /// spills, so ChargeTempScan sequences — and with them MeasuredCost — are
  /// bit-identical spill-on vs all-in-memory. Over the remaining budget:
  /// spill (sets *spilled; caller moves the row bytes to disk and skips the
  /// ledger charge) or throw a typed kResourceExhausted with the tripping
  /// operator packed into Status::detail. Only a single row too large for
  /// the whole budget is refused unconditionally.
  TempFile AllocTemp(size_t rows, size_t ncols, SpillOpTag tag,
                     bool* spilled = nullptr) {
    if (spilled != nullptr) *spilled = false;
    if (inject_faults && FaultInjector::Global().InjectAllocFault()) {
      throw internal::ExecAbort(Status::Error(
          Status::Code::kFault, "injected allocation failure"));
    }
    TempFile temp = AllocateTempFile(db, rows, ncols);
    if (ledger_budget == 0) return temp;
    const uint64_t row_pages = TempRowPages(ncols);
    if (row_pages > ledger_budget) {
      throw internal::ExecAbort(MakeResourceExhausted(
          tag, row_pages, ledger_budget, live_temp_pages,
          /*row_refusal=*/true));
    }
    if (live_temp_pages + temp.pages > ledger_budget) {
      if (!spill_enabled) {
        throw internal::ExecAbort(MakeResourceExhausted(
            tag, temp.pages, ledger_budget, live_temp_pages,
            /*row_refusal=*/false));
      }
      ++spill.spills;
      if (spilled != nullptr) *spilled = true;
      return temp;
    }
    live_temp_pages += temp.pages;
    return temp;
  }

  /// Returns pages to the ledger when a temp's in-memory rows are genuinely
  /// freed (fix per-iteration deltas); join temps and fix-cache charges are
  /// held to query end.
  void ReleaseTemp(uint64_t pages) {
    live_temp_pages -= std::min<uint64_t>(live_temp_pages, pages);
  }

  /// Runs fn(i, eval_ctx, row_sink) for every i in [0, n), split into
  /// contiguous morsels across the worker pool. Each morsel evaluates
  /// against its own ChargeLog and counters; results merge in morsel (==
  /// item) order into `log`, `out` and the engine counters, so the merged
  /// state is identical to a sequential left-to-right pass.
  void ParallelItems(
      size_t n,
      const std::function<void(size_t, EvalContext*, std::vector<Row>*)>& fn,
      ChargeLog* log, std::vector<Row>* out) {
    if (n == 0) return;
    // Morsel boundary: the budget poll before fanning out (still on the
    // coordinator; workers never poll or throw).
    CheckAbort(0);
    constexpr size_t kMinMorselItems = 16;
    size_t nmorsels = 1;
    if (pool != nullptr && threads > 1) {
      nmorsels =
          std::min(threads, (n + kMinMorselItems - 1) / kMinMorselItems);
    }
    if (nmorsels <= 1) {
      vm::VmScratch scratch;
      EvalContext ec{db, log, &counters.predicate_evals,
                     &counters.method_calls, &counters.method_cost_fp,
                     &scratch};
      for (size_t i = 0; i < n; ++i) fn(i, &ec, out);
      vm_rows += scratch.rows;
      return;
    }
    struct Morsel {
      ChargeLog log;
      std::vector<Row> rows;
      MorselCounters c;
      vm::VmScratch scratch;
    };
    std::vector<Morsel> morsels(nmorsels);
    for (size_t m = 0; m < nmorsels; ++m) {
      const size_t lo = n * m / nmorsels;
      const size_t hi = n * (m + 1) / nmorsels;
      Morsel* dst = &morsels[m];
      pool->Submit([this, &fn, dst, lo, hi] {
        EvalContext ec{db, &dst->log, &dst->c.predicate_evals,
                       &dst->c.method_calls, &dst->c.method_cost_fp,
                       &dst->scratch};
        for (size_t i = lo; i < hi; ++i) fn(i, &ec, &dst->rows);
      });
    }
    pool->Wait();
    for (Morsel& m : morsels) {
      log->Append(m.log);
      for (Row& r : m.rows) out->push_back(std::move(r));
      counters.MergeFrom(m.c);
      vm_rows += m.scratch.rows;
    }
  }
};

/// Writes `rows` to a fresh spill file (coordinator only), polling the
/// abort check between blocks so a cancel or deadline lands mid-spill; the
/// partially written file unwinds with the shared_ptr. Folds the file's
/// size into the engine's spill profile.
std::shared_ptr<SpillFile> SpillRows(ExecCtx* ctx,
                                     const std::vector<Row>& rows) {
  auto spill = std::make_shared<SpillFile>();
  for (size_t i = 0; i < rows.size(); ++i) {
    if ((i & 1023) == 1023) ctx->CheckAbort(0);
    spill->AppendRow(rows[i]);
  }
  spill->Finish();
  ctx->spill.bytes += spill->bytes();
  ctx->spill.partitions += spill->Partitions(ctx->ledger_budget);
  return spill;
}

/// Pre-dedup accumulation buffer for Proj/Union. In memory it reproduces
/// Table::Dedup() exactly; when the buffered working set outgrows the
/// remaining ledger budget (and spilling is on) it drains sorted runs to
/// disk and K-way merge-uniques them at Finish — the merge emits the same
/// sorted duplicate-free sequence sort+unique would. With spilling off the
/// buffer never spills (dedup was never budget-checked, so no new refusal
/// sites appear).
class DedupBuffer {
 public:
  DedupBuffer(ExecCtx* ctx, RowSchema schema) : ctx_(ctx) {
    out_.schema = std::move(schema);
  }

  /// Takes ownership of `rows` (cleared on return).
  void Add(std::vector<Row>* rows) {
    for (Row& r : *rows) buf_.push_back(std::move(r));
    rows->clear();
    if (!OverBudget() || buf_.empty()) return;
    SortUnique(&buf_);
    if (!OverBudget()) return;
    runs_.push_back(SpillRows(ctx_, buf_));
    ++ctx_->spill.spills;
    buf_.clear();
    buf_.shrink_to_fit();
  }

  Table Finish() {
    SortUnique(&buf_);
    if (runs_.empty()) {
      out_.rows = std::move(buf_);
      return std::move(out_);
    }
    // K-way merge-unique of the sorted runs plus the sorted tail buffer.
    // Ties resolve to the lowest cursor index; since RowEq-equal rows are
    // interchangeable the output matches an in-memory sort+unique.
    struct Cursor {
      SpillFile* run = nullptr;           // null = the in-memory tail
      const std::vector<Row>* mem = nullptr;
      size_t pos = 0, size = 0;
      Row row;
      bool Load() {
        if (pos >= size) return false;
        row = run != nullptr ? run->ReadRow(pos) : (*mem)[pos];
        ++pos;
        return true;
      }
    };
    std::vector<Cursor> curs;
    for (const auto& r : runs_) {
      Cursor c;
      c.run = r.get();
      c.size = r->rows();
      ++ctx_->spill.passes;
      if (c.Load()) curs.push_back(std::move(c));
    }
    {
      Cursor c;
      c.mem = &buf_;
      c.size = buf_.size();
      if (c.Load()) curs.push_back(std::move(c));
    }
    size_t emitted = 0;
    while (!curs.empty()) {
      size_t best = 0;
      for (size_t i = 1; i < curs.size(); ++i) {
        if (Table::RowLess(curs[i].row, curs[best].row)) best = i;
      }
      if (out_.rows.empty() || !Table::RowEq(out_.rows.back(), curs[best].row)) {
        out_.rows.push_back(std::move(curs[best].row));
        if ((++emitted & 1023) == 0) ctx_->CheckAbort(0);
      }
      if (!curs[best].Load()) curs.erase(curs.begin() + best);
    }
    buf_.clear();
    runs_.clear();
    return std::move(out_);
  }

 private:
  static void SortUnique(std::vector<Row>* rows) {
    std::sort(rows->begin(), rows->end(), Table::RowLess);
    rows->erase(std::unique(rows->begin(), rows->end(), Table::RowEq),
                rows->end());
  }

  bool OverBudget() const {
    if (ctx_->ledger_budget == 0 || !ctx_->spill_enabled) return false;
    const uint64_t ncols =
        std::max<uint64_t>(1, out_.schema.cols.size());
    const uint64_t pages =
        (static_cast<uint64_t>(buf_.size()) * 16 * ncols +
         kPageSizeBytes - 1) /
        kPageSizeBytes;
    const uint64_t remaining =
        ctx_->ledger_budget > ctx_->live_temp_pages
            ? ctx_->ledger_budget - ctx_->live_temp_pages
            : 0;
    return pages > remaining;
  }

  ExecCtx* ctx_;
  Table out_;
  std::vector<Row> buf_;
  std::vector<std::shared_ptr<SpillFile>> runs_;
};

/// Compiles an operator expression to bytecode when compiled eval is on,
/// folding the chunk into the engine's vm profile. nullopt (knob off, null
/// expression, or a shape the compiler declines) = evaluate interpreted;
/// the interpreter remains the semantic oracle either way.
std::optional<vm::BytecodeChunk> CompilePredChunk(ExecCtx* ctx,
                                                  const ExprPtr& pred,
                                                  const RowSchema& schema) {
  if (!ctx->compiled_eval || pred == nullptr) return std::nullopt;
  std::optional<vm::BytecodeChunk> chunk = vm::CompilePredicate(pred, schema);
  if (chunk.has_value()) {
    ++ctx->vm_chunks;
    ctx->vm_instrs += chunk->code.size();
  }
  return chunk;
}

std::optional<vm::BytecodeChunk> CompileMultiChunk(ExecCtx* ctx,
                                                   const ExprPtr& expr,
                                                   const RowSchema& schema) {
  if (!ctx->compiled_eval || expr == nullptr) return std::nullopt;
  std::optional<vm::BytecodeChunk> chunk = vm::CompileMulti(expr, schema);
  if (chunk.has_value()) {
    ++ctx->vm_chunks;
    ctx->vm_instrs += chunk->code.size();
  }
  return chunk;
}

std::optional<vm::BytecodeChunk> CompileProjChunk(
    ExecCtx* ctx, const std::vector<OutCol>& proj, const RowSchema& schema) {
  if (!ctx->compiled_eval) return std::nullopt;
  std::optional<vm::BytecodeChunk> chunk =
      vm::CompileProjection(proj, schema);
  if (chunk.has_value()) {
    ++ctx->vm_chunks;
    ctx->vm_instrs += chunk->code.size();
  }
  return chunk;
}

/// One predicate evaluation, compiled when a chunk exists. The caller has
/// already counted the predicate_evals tick.
inline bool EvalPredMaybe(const std::optional<vm::BytecodeChunk>& chunk,
                          EvalContext* ec, const RowSchema& schema,
                          const Row& row, const ExprPtr& pred) {
  if (chunk.has_value()) return vm::RunPred(*chunk, ec, row, ec->vm);
  return EvalPred(ec, schema, row, pred);
}

/// One multi-value evaluation, compiled when a chunk exists. Returns an
/// owned vector either way: downstream callers mutate or outlive the VM's
/// register state (the interpreter allocates an owned vector too, so the
/// copy does not cost compiled eval anything extra).
inline std::vector<Value> EvalMultiMaybe(
    const std::optional<vm::BytecodeChunk>& chunk, EvalContext* ec,
    const RowSchema& schema, const Row& row, const ExprPtr& expr) {
  if (chunk.has_value()) return vm::RunMulti(*chunk, ec, row, ec->vm);
  return EvalMulti(ec, schema, row, expr);
}

/// Base batched operator: pull-based Open-on-first-Next / NextBatch / (no
/// explicit Close — destruction closes). Page charges accumulate in the
/// per-operator `log_`; Replay() emits the whole subtree's charges in the
/// canonical legacy order (children left-to-right, then own).
class Op {
 public:
  Op(ExecCtx* ctx, const PTNode* node) : ctx_(ctx), node_(node) {}
  virtual ~Op() = default;

  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;

  /// Pulls the next batch (<= ctx->batch_rows rows). False = exhausted.
  /// May legitimately return true with an empty batch (e.g. a filter pass
  /// that rejected its whole input); callers keep pulling.
  bool Pull(RowBatch* out) {
    out->Clear();
    pulled_ = true;
    if (!ctx_->collect_op_stats) {
      const bool more = Next(out);
      rows_out_ += out->size();
      return more;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const bool more = Next(out);
    micros_ +=
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    rows_out_ += out->size();
    return more;
  }

  const RowSchema& schema() const { return schema_; }

  /// Replays the subtree's page charges into `sink` in canonical order:
  /// children first (left to right), then this operator's own charges —
  /// exactly the temporal order of the materialized bottom-up evaluator.
  virtual void Replay(PageCharger* sink) {
    for (auto& c : children_) c->Replay(sink);
    log_.ReplayInto(sink);
  }

  /// Folds this pass's profile into the engine-local stats. One call per
  /// operator instance (Fix arms are fresh instances per iteration, so the
  /// per-iteration invocation counts match the legacy evaluator).
  virtual void Harvest() {
    if (!pulled_) return;
    OpStats& s = ctx_->local_stats[node_];
    ++s.invocations;
    s.rows += rows_out_;
    s.pages += log_.size();
    s.micros += micros_;
    for (auto& c : children_) c->Harvest();
  }

 protected:
  virtual bool Next(RowBatch* out) = 0;

  /// Moves up to batch_rows pending rows into `out`. Ops that can produce
  /// more rows per pass than a batch holds (scans with a multi-thread
  /// quantum, fan-out joins, projections over collections) buffer the
  /// overflow here.
  bool ServePending(RowBatch* out) {
    if (pending_pos_ >= pending_.size()) return false;
    const size_t take =
        std::min(ctx_->batch_rows, pending_.size() - pending_pos_);
    out->rows.reserve(out->rows.size() + take);
    for (size_t i = 0; i < take; ++i) {
      out->rows.push_back(std::move(pending_[pending_pos_ + i]));
    }
    pending_pos_ += take;
    if (pending_pos_ >= pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
    }
    return true;
  }

  ExecCtx* ctx_;
  const PTNode* node_;
  std::vector<std::unique_ptr<Op>> children_;
  RowSchema schema_;
  ChargeLog log_;
  std::vector<Row> pending_;
  size_t pending_pos_ = 0;
  uint64_t rows_out_ = 0;
  double micros_ = 0;
  bool pulled_ = false;
};

std::unique_ptr<Op> BuildOp(ExecCtx* ctx, const PTNode* node);

/// Fully drains an operator into a materialized table (the barrier
/// primitive: NL-join inners, fixpoint arms, union branches).
Table DrainOp(Op* op) {
  Table t;
  t.schema = op->schema();
  RowBatch b;
  while (op->Pull(&b)) {
    for (Row& r : b.rows) t.rows.push_back(std::move(r));
  }
  return t;
}

// --- Leaves ----------------------------------------------------------------

class EntityScanOp : public Op {
 public:
  EntityScanOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    src_ = ctx->db->ResolveScan(node->entity);
  }

 protected:
  bool Next(RowBatch* out) override {
    if (ServePending(out)) return true;
    if (pos_ >= src_.size()) return false;
    const size_t n = std::min(ctx_->Quantum(), src_.size() - pos_);
    const size_t base = pos_;
    ctx_->ParallelItems(
        n,
        [this, base](size_t i, EvalContext* ec, std::vector<Row>* rows) {
          const uint32_t slot = (*src_.slots)[base + i];
          ec->charger->Charge(src_.extent->PageOf(slot, src_.vfrag));
          rows->push_back(Row{Value::Ref(Oid{src_.base_class, slot})});
        },
        &log_, &pending_);
    pos_ += n;
    ServePending(out);
    return true;
  }

 private:
  Database::ScanSource src_;
  size_t pos_ = 0;
};

class DeltaScanOp : public Op {
 public:
  DeltaScanOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
  }

 protected:
  bool Next(RowBatch* out) override {
    if (!opened_) {
      opened_ = true;
      auto it = ctx_->deltas.find(node_->fix_name);
      RODIN_CHECK(it != ctx_->deltas.end(),
                  "delta referenced outside its fixpoint");
      src_ = &it->second;
      ChargeTempScan(src_->temp, &log_);
      RODIN_CHECK(src_->rows->schema.cols.size() == node_->cols.size(),
                  "delta column arity mismatch");
      if (src_->spill != nullptr) ++ctx_->spill.passes;
    }
    const size_t total = src_->spill != nullptr ? src_->spill->rows()
                                                : src_->rows->rows.size();
    if (pos_ >= total) return false;
    const size_t take = std::min(ctx_->batch_rows, total - pos_);
    out->rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      if (src_->spill != nullptr) {
        out->rows.push_back(src_->spill->ReadRow(pos_ + i));
      } else {
        out->rows.push_back(src_->rows->rows[pos_ + i]);
      }
    }
    pos_ += take;
    return true;
  }

 private:
  bool opened_ = false;
  const DeltaSource* src_ = nullptr;
  size_t pos_ = 0;
};

// --- Selections ------------------------------------------------------------

/// Fused scan + filter: one pass over the extent (Figure 5's Sel(C)). The
/// entity child is absorbed into the scan, as in the legacy evaluator.
class FilterScanOp : public Op {
 public:
  FilterScanOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    src_ = ctx->db->ResolveScan(node->children[0]->entity);
    pred_chunk_ = CompilePredChunk(ctx, node->pred, schema_);
  }

 protected:
  bool Next(RowBatch* out) override {
    if (ServePending(out)) return true;
    if (pos_ >= src_.size()) return false;
    const size_t n = std::min(ctx_->Quantum(), src_.size() - pos_);
    const size_t base = pos_;
    ctx_->ParallelItems(
        n,
        [this, base](size_t i, EvalContext* ec, std::vector<Row>* rows) {
          const uint32_t slot = (*src_.slots)[base + i];
          ec->charger->Charge(src_.extent->PageOf(slot, src_.vfrag));
          Row row{Value::Ref(Oid{src_.base_class, slot})};
          ++*ec->predicate_evals;
          if (EvalPredMaybe(pred_chunk_, ec, schema_, row, node_->pred)) {
            rows->push_back(std::move(row));
          }
        },
        &log_, &pending_);
    pos_ += n;
    ServePending(out);
    return true;
  }

 private:
  Database::ScanSource src_;
  size_t pos_ = 0;
  std::optional<vm::BytecodeChunk> pred_chunk_;
};

/// Index-backed selection. The B-tree probe runs once on the coordinator
/// (descent + leaf charges in index order); qualifying records fan out
/// across morsels.
class IndexSelOp : public Op {
 public:
  IndexSelOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    const PTNode& child = *node->children[0];
    RODIN_CHECK(child.kind == PTKind::kEntity, "index access needs entity");
    RODIN_CHECK(node->sel_index != nullptr, "index access without an index");
    extent_ = child.entity.extent;
    pred_chunk_ = CompilePredChunk(ctx, node->pred, schema_);
  }

 protected:
  bool Next(RowBatch* out) override {
    if (!looked_) {
      looked_ = true;
      Value literal;
      bool path_left = true;
      RODIN_CHECK(node_->sel_index_pred != nullptr &&
                      SplitProbe(*node_->sel_index_pred, &literal, &path_left),
                  "malformed index probe predicate");
      if (node_->sel_access == SelAccess::kIndexEq) {
        payloads_ = node_->sel_index->Lookup(literal, &log_);
      } else {
        // One-sided range: orient by operator and which side the path is on.
        const CompareOp op = node_->sel_index_pred->compare_op();
        const bool upper = path_left
                               ? (op == CompareOp::kLt || op == CompareOp::kLe)
                               : (op == CompareOp::kGt || op == CompareOp::kGe);
        const bool strict = op == CompareOp::kLt || op == CompareOp::kGt;
        if (upper) {
          payloads_ = node_->sel_index->RangeLookup(Value::Null(), false,
                                                    literal, strict, &log_);
        } else {
          payloads_ = node_->sel_index->RangeLookup(literal, strict,
                                                    Value::Null(), false, &log_);
        }
      }
    }
    if (ServePending(out)) return true;
    if (pos_ >= payloads_.size()) return false;
    const size_t n = std::min(ctx_->Quantum(), payloads_.size() - pos_);
    const size_t base = pos_;
    ctx_->ParallelItems(
        n,
        [this, base](size_t i, EvalContext* ec, std::vector<Row>* rows) {
          const Oid oid = ctx_->db->PayloadToOid(extent_, payloads_[base + i]);
          ctx_->db->ChargeRecordAccess(oid, {}, ec->charger);
          Row row{Value::Ref(oid)};
          ++*ec->predicate_evals;
          if (EvalPredMaybe(pred_chunk_, ec, schema_, row, node_->pred)) {
            rows->push_back(std::move(row));
          }
        },
        &log_, &pending_);
    pos_ += n;
    ServePending(out);
    return true;
  }

 private:
  std::string extent_;
  bool looked_ = false;
  std::vector<uint64_t> payloads_;
  size_t pos_ = 0;
  std::optional<vm::BytecodeChunk> pred_chunk_;
};

/// General selection over a non-entity child: streams batches through the
/// predicate.
class FilterOp : public Op {
 public:
  FilterOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    children_.push_back(BuildOp(ctx, node->children[0].get()));
    pred_chunk_ = CompilePredChunk(ctx, node->pred, children_[0]->schema());
  }

 protected:
  bool Next(RowBatch* out) override {
    if (ServePending(out)) return true;
    RowBatch in;
    if (!children_[0]->Pull(&in)) return false;
    const RowSchema& in_schema = children_[0]->schema();
    ctx_->ParallelItems(
        in.size(),
        [this, &in, &in_schema](size_t i, EvalContext* ec,
                                std::vector<Row>* rows) {
          ++*ec->predicate_evals;
          if (EvalPredMaybe(pred_chunk_, ec, in_schema, in.rows[i],
                            node_->pred)) {
            rows->push_back(std::move(in.rows[i]));
          }
        },
        &log_, &pending_);
    ServePending(out);
    return true;
  }

 private:
  std::optional<vm::BytecodeChunk> pred_chunk_;
};

// --- Projection ------------------------------------------------------------

class ProjOp : public Op {
 public:
  ProjOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    children_.push_back(BuildOp(ctx, node->children[0].get()));
    proj_chunk_ = CompileProjChunk(ctx, node->proj, children_[0]->schema());
  }

 protected:
  bool Next(RowBatch* out) override {
    if (node_->dedup) return NextDedup(out);
    if (ServePending(out)) return true;
    RowBatch in;
    if (!children_[0]->Pull(&in)) return false;
    ProjectBatch(in);
    ServePending(out);
    return true;
  }

 private:
  void ProjectBatch(const RowBatch& in) {
    const RowSchema& in_schema = children_[0]->schema();
    ctx_->ParallelItems(
        in.size(),
        [this, &in, &in_schema](size_t i, EvalContext* ec,
                                std::vector<Row>* rows) {
          const Row& row = in.rows[i];
          // Cartesian product of the (possibly multi-valued) projections.
          // Compiled eval leaves column k's values in VM register k (one
          // chunk per projection list, registers reused across rows);
          // interpreted eval materializes them into fresh vectors. Both
          // feed the same odometer over column views.
          std::vector<const std::vector<Value>*> cols;
          std::vector<std::vector<Value>> storage;
          bool any_empty = false;
          if (proj_chunk_.has_value()) {
            const size_t n = vm::RunProj(*proj_chunk_, ec, row, ec->vm);
            cols.reserve(n);
            for (size_t k = 0; k < n; ++k) {
              cols.push_back(&ec->vm->vregs[k]);
              if (cols.back()->empty()) any_empty = true;
            }
          } else {
            storage.reserve(node_->proj.size());
            cols.reserve(node_->proj.size());
            for (const OutCol& c : node_->proj) {
              storage.push_back(EvalMulti(ec, in_schema, row, c.expr));
              if (storage.back().empty()) any_empty = true;
            }
            for (const auto& s : storage) cols.push_back(&s);
          }
          if (any_empty) return;
          std::vector<size_t> idx(cols.size(), 0);
          bool done = false;
          while (!done) {
            Row r;
            r.reserve(cols.size());
            for (size_t k = 0; k < cols.size(); ++k) {
              r.push_back((*cols[k])[idx[k]]);
            }
            rows->push_back(std::move(r));
            // Odometer increment, rightmost column fastest.
            size_t k = cols.size();
            while (true) {
              if (k == 0) {
                done = true;
                break;
              }
              --k;
              if (++idx[k] < cols[k]->size()) break;
              idx[k] = 0;
            }
          }
        },
        &log_, &pending_);
  }

  bool NextDedup(RowBatch* out) {
    if (!materialized_) {
      materialized_ = true;
      RowSchema s;
      s.cols = node_->cols;
      DedupBuffer buf(ctx_, std::move(s));
      RowBatch in;
      while (children_[0]->Pull(&in)) {
        ProjectBatch(in);
        buf.Add(&pending_);
        pending_pos_ = 0;
      }
      dedup_ = buf.Finish();
    }
    if (pos_ >= dedup_.rows.size()) return false;
    const size_t take = std::min(ctx_->batch_rows, dedup_.rows.size() - pos_);
    out->rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->rows.push_back(std::move(dedup_.rows[pos_ + i]));
    }
    pos_ += take;
    return true;
  }

  bool materialized_ = false;
  Table dedup_;
  size_t pos_ = 0;
  std::optional<vm::BytecodeChunk> proj_chunk_;
};

// --- Joins -----------------------------------------------------------------

/// Implicit join: navigate one object attribute per input row.
class IJOp : public Op {
 public:
  IJOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    children_.push_back(BuildOp(ctx, node->children[0].get()));
    RODIN_CHECK(children_[0]->schema().ResolveVarPath(node->src_var,
                                                      {node->attr}, &col_,
                                                      &rest_),
                "IJ source unresolvable at runtime");
  }

 protected:
  bool Next(RowBatch* out) override {
    if (ServePending(out)) return true;
    RowBatch in;
    if (!children_[0]->Pull(&in)) return false;
    ctx_->ParallelItems(
        in.size(),
        [this, &in](size_t i, EvalContext* ec, std::vector<Row>* rows) {
          const Row& row = in.rows[i];
          std::vector<Value> targets;
          if (rest_.empty()) {
            // Dotted column: the reference is already materialized in the row.
            ExpandValue(row[col_], &targets);
          } else {
            Navigate(ec, row[col_], {node_->attr}, 0, &targets);
          }
          for (const Value& t : targets) {
            if (!t.is_ref()) continue;
            ctx_->db->ChargeRecordAccess(t.AsRef(), {}, ec->charger);
            Row r = row;
            r.push_back(t);
            rows->push_back(std::move(r));
          }
        },
        &log_, &pending_);
    ServePending(out);
    return true;
  }

 private:
  int col_ = -1;
  std::vector<std::string> rest_;
};

/// Implicit join through a path index.
class PIJOp : public Op {
 public:
  PIJOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    children_.push_back(BuildOp(ctx, node->children[0].get()));
    col_ = children_[0]->schema().IndexOf(node->src_var);
    RODIN_CHECK(col_ >= 0, "PIJ source column missing at runtime");
  }

 protected:
  bool Next(RowBatch* out) override {
    if (ServePending(out)) return true;
    RowBatch in;
    if (!children_[0]->Pull(&in)) return false;
    ctx_->ParallelItems(
        in.size(),
        [this, &in](size_t i, EvalContext* ec, std::vector<Row>* rows) {
          const Row& row = in.rows[i];
          if (!row[col_].is_ref()) return;
          const auto entries =
              node_->path_index->Lookup(row[col_].AsRef(), ec->charger);
          for (const std::vector<Oid>* entry : entries) {
            Row r = row;
            for (size_t k = 0; k < node_->path_out_vars.size(); ++k) {
              if (!node_->path_out_vars[k].empty()) {
                r.push_back(Value::Ref((*entry)[k + 1]));
              }
            }
            rows->push_back(std::move(r));
          }
        },
        &log_, &pending_);
    ServePending(out);
    return true;
  }

 private:
  int col_ = -1;
};

/// Explicit join via the inner's B-tree: probe per outer row.
class IndexJoinOp : public Op {
 public:
  IndexJoinOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    const PTNode& right = *node->children[1];
    RODIN_CHECK(right.kind == PTKind::kEntity,
                "index join needs an entity inner");
    RODIN_CHECK(node->join_index != nullptr, "index join without an index");
    children_.push_back(BuildOp(ctx, node->children[0].get()));
    probe_ = ExtractIndexProbe(*node, right.binding, &residual_);
    RODIN_CHECK(probe_ != nullptr, "index join probe not found in predicate");
    extent_ = right.entity.extent;
    probe_chunk_ = CompileMultiChunk(ctx, probe_, children_[0]->schema());
    residual_chunk_ = CompilePredChunk(ctx, residual_, schema_);
  }

 protected:
  bool Next(RowBatch* out) override {
    if (ServePending(out)) return true;
    RowBatch in;
    if (!children_[0]->Pull(&in)) return false;
    const RowSchema& left_schema = children_[0]->schema();
    ctx_->ParallelItems(
        in.size(),
        [this, &in, &left_schema](size_t i, EvalContext* ec,
                                  std::vector<Row>* rows) {
          const Row& lrow = in.rows[i];
          // Owned copy: the residual chunk below reuses the same morsel
          // registers, so the probe keys must not alias them.
          const std::vector<Value> keys =
              EvalMultiMaybe(probe_chunk_, ec, left_schema, lrow, probe_);
          for (const Value& key : keys) {
            const std::vector<uint64_t> payloads =
                node_->join_index->Lookup(key, ec->charger);
            for (uint64_t p : payloads) {
              const Oid oid = ctx_->db->PayloadToOid(extent_, p);
              ctx_->db->ChargeRecordAccess(oid, {}, ec->charger);
              Row row = lrow;
              row.push_back(Value::Ref(oid));
              ++*ec->predicate_evals;
              if (EvalPredMaybe(residual_chunk_, ec, schema_, row,
                                residual_)) {
                rows->push_back(std::move(row));
              }
            }
          }
        },
        &log_, &pending_);
    ServePending(out);
    return true;
  }

 private:
  ExprPtr probe_;
  ExprPtr residual_;
  std::string extent_;
  std::optional<vm::BytecodeChunk> probe_chunk_;
  std::optional<vm::BytecodeChunk> residual_chunk_;
};

/// Nested-loop explicit join. A barrier: both sides materialize before
/// probing, like the legacy evaluator (the inner must exist in full, and
/// re-scan charges are per outer row). Probing is morsel-parallel over the
/// outer side. With ExecOptions::hash_equijoin and an extractable equi
/// conjunct, the inner is loaded into a hash table instead — same result
/// rows in the same order, different (honest) accounting.
class NLJoinOp : public Op {
 public:
  NLJoinOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    children_.push_back(BuildOp(ctx, node->children[0].get()));
    children_.push_back(BuildOp(ctx, node->children[1].get()));
    pred_chunk_ = CompilePredChunk(ctx, node->pred, schema_);
  }

 protected:
  bool Next(RowBatch* out) override {
    if (ServePending(out)) return true;
    if (!opened_) {
      opened_ = true;
      Open();
    }
    while (pos_ < left_.rows.size()) {
      ProbeChunk();
      if (ServePending(out)) return true;
    }
    return false;
  }

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };

  void Open() {
    left_ = DrainOp(children_[0].get());
    right_ = DrainOp(children_[1].get());
    const PTNode& rnode = *node_->children[1];
    const bool inner_entity =
        rnode.kind == PTKind::kEntity || rnode.kind == PTKind::kDelta;
    bool spill_inner = false;
    if (rnode.kind == PTKind::kEntity) {
      const Extent* e = ctx_->db->FindExtent(rnode.entity.extent);
      inner_pages_ = e->ScanPages(rnode.entity.vfrag, rnode.entity.hfrag);
    } else if (!inner_entity) {
      temp_ = ctx_->AllocTemp(right_.rows.size(), right_.schema.cols.size(),
                              SpillOpTag::kJoinBuild, &spill_inner);
    }
    if (rnode.kind == PTKind::kDelta) {
      auto it = ctx_->deltas.find(rnode.fix_name);
      if (it != ctx_->deltas.end()) {
        delta_temp_ = it->second.temp;
        has_delta_temp_ = true;
      }
    }
    // Hash build first: key evaluation (and its accounting) runs over the
    // in-memory rows exactly as without spilling. Only then do the build
    // rows move to disk; probes read them back by index.
    if (ctx_->hash_equijoin) TryBuildHash();
    if (spill_inner) {
      right_spill_ = SpillRows(ctx_, right_.rows);
      right_count_ = right_.rows.size();
      right_.rows.clear();
      right_.rows.shrink_to_fit();
      if (hash_built_) ++ctx_->spill.passes;
    }
  }

  /// Picks the first Eq conjunct whose sides resolve unambiguously against
  /// the outer and inner schemas respectively; builds inner-key -> row-index
  /// buckets, morsel-parallel (keys merged in inner-row order).
  void TryBuildHash() {
    if (node_->pred == nullptr) return;
    const RowSchema& ls = children_[0]->schema();
    const RowSchema& rs = children_[1]->schema();
    auto resolvable = [](const RowSchema& s, const ExprPtr& e) {
      if (e == nullptr || e->kind() != ExprKind::kVarPath) return false;
      int col = -1;
      std::vector<std::string> rest;
      return s.ResolveVarPath(e->var(), e->path(), &col, &rest);
    };
    for (const ExprPtr& c : node_->pred->Conjuncts()) {
      if (c->kind() != ExprKind::kCompare ||
          c->compare_op() != CompareOp::kEq) {
        continue;
      }
      const ExprPtr& l = c->children()[0];
      const ExprPtr& r = c->children()[1];
      if (resolvable(ls, l) && !resolvable(rs, l) && resolvable(rs, r) &&
          !resolvable(ls, r)) {
        probe_ = l;
        build_ = r;
        break;
      }
      if (resolvable(ls, r) && !resolvable(rs, r) && resolvable(rs, l) &&
          !resolvable(ls, l)) {
        probe_ = r;
        build_ = l;
        break;
      }
    }
    if (probe_ == nullptr) return;
    probe_chunk_ = CompileMultiChunk(ctx_, probe_, children_[0]->schema());
    build_chunk_ = CompileMultiChunk(ctx_, build_, children_[1]->schema());
    // Build: evaluate the inner key expression per inner row. Key rows are
    // {key, row_index} pairs funneled through the morsel row sink.
    std::vector<Row> keyed;
    const RowSchema& rschema = right_.schema;
    ctx_->ParallelItems(
        right_.rows.size(),
        [this, &rschema](size_t i, EvalContext* ec, std::vector<Row>* rows) {
          std::vector<Value> keys =
              EvalMultiMaybe(build_chunk_, ec, rschema, right_.rows[i],
                             build_);
          std::sort(keys.begin(), keys.end(),
                    [](const Value& a, const Value& b) {
                      return a.Compare(b) < 0;
                    });
          keys.erase(std::unique(keys.begin(), keys.end(),
                                 [](const Value& a, const Value& b) {
                                   return a.Compare(b) == 0;
                                 }),
                     keys.end());
          for (Value& k : keys) {
            rows->push_back(
                Row{std::move(k), Value::Int(static_cast<int64_t>(i))});
          }
        },
        &log_, &keyed);
    for (Row& kr : keyed) {
      hash_[std::move(kr[0])].push_back(
          static_cast<size_t>(kr[1].AsInt()));
    }
    hash_built_ = true;
  }

  void ProbeChunk() {
    const size_t n = std::min(ctx_->Quantum(), left_.rows.size() - pos_);
    const size_t base = pos_;
    if (hash_built_) {
      const RowSchema& ls = children_[0]->schema();
      ctx_->ParallelItems(
          n,
          [this, base, &ls](size_t i, EvalContext* ec,
                            std::vector<Row>* rows) {
            const Row& lrow = left_.rows[base + i];
            const std::vector<Value> keys =
                EvalMultiMaybe(probe_chunk_, ec, ls, lrow, probe_);
            std::vector<size_t> cand;
            for (const Value& k : keys) {
              auto it = hash_.find(k);
              if (it == hash_.end()) continue;
              cand.insert(cand.end(), it->second.begin(), it->second.end());
            }
            std::sort(cand.begin(), cand.end());
            cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
            for (size_t ri : cand) {
              Row spill_row;
              if (right_spill_ != nullptr) {
                spill_row = right_spill_->ReadRow(ri);
              }
              const Row& rrow =
                  right_spill_ != nullptr ? spill_row : right_.rows[ri];
              Row row = lrow;
              row.insert(row.end(), rrow.begin(), rrow.end());
              ++*ec->predicate_evals;
              if (EvalPredMaybe(pred_chunk_, ec, schema_, row,
                                node_->pred)) {
                rows->push_back(std::move(row));
              }
            }
          },
          &log_, &pending_);
    } else {
      // Each outer row streams the whole spilled inner once (one read-back
      // pass per outer row; counted on the coordinator).
      if (right_spill_ != nullptr) ctx_->spill.passes += n;
      const size_t rcount =
          right_spill_ != nullptr ? right_count_ : right_.rows.size();
      ctx_->ParallelItems(
          n,
          [this, base, rcount](size_t i, EvalContext* ec,
                               std::vector<Row>* rows) {
            const Row& lrow = left_.rows[base + i];
            if (base + i != 0) {
              // Re-scan charge for the inner, positioned before this outer
              // row's probe work (the legacy per-outer-row order).
              if (!inner_pages_.empty()) {
                for (PageId p : inner_pages_) ec->charger->Charge(p);
              } else if (temp_.pages > 0) {
                ChargeTempScan(temp_, ec->charger);
              }
              // Delta inners are charged by the delta scan once; re-scans
              // of the delta temp are charged here.
              if (has_delta_temp_) ChargeTempScan(delta_temp_, ec->charger);
            }
            for (size_t ri = 0; ri < rcount; ++ri) {
              Row spill_row;
              if (right_spill_ != nullptr) {
                spill_row = right_spill_->ReadRow(ri);
              }
              const Row& rrow =
                  right_spill_ != nullptr ? spill_row : right_.rows[ri];
              Row row = lrow;
              row.insert(row.end(), rrow.begin(), rrow.end());
              ++*ec->predicate_evals;
              if (EvalPredMaybe(pred_chunk_, ec, schema_, row,
                                node_->pred)) {
                rows->push_back(std::move(row));
              }
            }
          },
          &log_, &pending_);
    }
    pos_ += n;
  }

  bool opened_ = false;
  Table left_;
  Table right_;
  std::shared_ptr<SpillFile> right_spill_;
  size_t right_count_ = 0;
  size_t pos_ = 0;
  std::vector<PageId> inner_pages_;
  TempFile temp_;
  TempFile delta_temp_;
  bool has_delta_temp_ = false;
  ExprPtr probe_;
  ExprPtr build_;
  std::map<Value, std::vector<size_t>, ValueLess> hash_;
  bool hash_built_ = false;
  std::optional<vm::BytecodeChunk> pred_chunk_;
  std::optional<vm::BytecodeChunk> probe_chunk_;
  std::optional<vm::BytecodeChunk> build_chunk_;
};

// --- Union -----------------------------------------------------------------

class UnionOp : public Op {
 public:
  UnionOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    for (const auto& c : node->children) {
      children_.push_back(BuildOp(ctx, c.get()));
    }
  }

 protected:
  bool Next(RowBatch* out) override {
    if (!materialized_) {
      materialized_ = true;
      RowSchema s;
      s.cols = node_->cols;
      DedupBuffer buf(ctx_, std::move(s));
      for (auto& c : children_) {
        Table t = DrainOp(c.get());
        buf.Add(&t.rows);
      }
      all_ = buf.Finish();
    }
    if (pos_ >= all_.rows.size()) return false;
    const size_t take = std::min(ctx_->batch_rows, all_.rows.size() - pos_);
    out->rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->rows.push_back(std::move(all_.rows[pos_ + i]));
    }
    pos_ += take;
    return true;
  }

 private:
  bool materialized_ = false;
  Table all_;
  size_t pos_ = 0;
};

// --- Fixpoint --------------------------------------------------------------

/// Semi-naive fixpoint. A hard barrier: the whole fixpoint runs at first
/// pull. Each iteration builds a fresh operator tree for the recursive arm
/// (mirroring the legacy re-evaluation, including nested fix caching),
/// drains it with the current delta installed, harvests its stats and
/// flattens its charges into one per-iteration log. Replay order is
/// base subtree, then iteration 1..n arm charges, then own (cache-hit temp
/// scan) charges — the legacy temporal order.
class FixOp : public Op {
 public:
  FixOp(ExecCtx* ctx, const PTNode* node) : Op(ctx, node) {
    schema_.cols = node->cols;
    children_.push_back(BuildOp(ctx, node->children[0].get()));
  }

  void Replay(PageCharger* sink) override {
    children_[0]->Replay(sink);
    for (const ChargeLog& l : iter_logs_) l.ReplayInto(sink);
    log_.ReplayInto(sink);
  }

 protected:
  bool Next(RowBatch* out) override {
    if (!computed_) {
      computed_ = true;
      Compute();
    }
    if (pos_ >= serve_src_->rows.size()) return false;
    const size_t take =
        std::min(ctx_->batch_rows, serve_src_->rows.size() - pos_);
    out->rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      if (own_rows_) {
        out->rows.push_back(std::move(result_.rows[pos_ + i]));
      } else {
        out->rows.push_back(serve_src_->rows[pos_ + i]);
      }
    }
    pos_ += take;
    return true;
  }

 private:
  void Compute() {
    const PTNode& node = *node_;
    const bool cacheable = !HasForeignDelta(node, node.fix_name);
    std::string key;
    if (cacheable && ctx_->fix_cache != nullptr) {
      key = node.Fingerprint();
      auto it = ctx_->fix_cache->find(key);
      if (it != ctx_->fix_cache->end()) {
        ChargeTempScan(it->second.temp, &log_);
        if (it->second.spill != nullptr) {
          // Spilled cache entry: stream the result back (the temp-scan
          // charge above is identical either way).
          ++ctx_->spill.passes;
          result_.schema.cols = node.cols;
          it->second.spill->ReadAll(&result_.rows);
          serve_src_ = &result_;
          own_rows_ = true;
        } else {
          serve_src_ = &it->second.result;
        }
        return;
      }
    }
    Table base = DrainOp(children_[0].get());
    base.Dedup();

    result_.schema.cols = node.cols;
    result_.rows = base.rows;

    std::set<Row, bool (*)(const Row&, const Row&)> seen(&Table::RowLess);
    for (const Row& r : base.rows) seen.insert(r);

    // Semi-naive: feed only the last iteration's new tuples into the
    // recursive arm. Naive mode feeds the whole accumulated result each
    // round (re-deriving everything) — the evaluation strategy Figure 5's
    // cost formula improves on.
    Table delta = std::move(base);
    bool progress = true;
    int iter = 0;
    while (progress && !result_.rows.empty()) {
      // Iteration boundary: each round leaves result_ consistent and the
      // finished rounds' charge logs intact, so aborting here (deadline
      // inside the semi-naive loop) replays exactly the work done.
      ctx_->CheckAbort(++iter);
      ++ctx_->fix_iterations;
      const Table& input = node.naive_fix ? result_ : delta;
      if (!node.naive_fix && delta.rows.empty()) break;
      bool delta_spilled = false;
      DeltaSource src;
      src.temp = ctx_->AllocTemp(input.rows.size(),
                                 input.schema.cols.size(),
                                 SpillOpTag::kFixDelta, &delta_spilled);
      src.rows = &input;
      if (delta_spilled) {
        src.spill = SpillRows(ctx_, input.rows);
        // Semi-naive deltas are dead after this iteration, so the spill
        // genuinely frees their row memory. Naive mode feeds the whole
        // accumulated result, which must stay resident — readers still go
        // through the spill file, but no memory is reclaimed (documented
        // in ROBUSTNESS.md).
        if (!node.naive_fix) {
          delta.rows.clear();
          delta.rows.shrink_to_fit();
        }
      }
      ctx_->deltas[node.fix_name] = src;
      std::unique_ptr<Op> arm = BuildOp(ctx_, node.children[1].get());
      Table produced = DrainOp(arm.get());
      ctx_->deltas.erase(node.fix_name);
      // The iteration's delta temp is dead: return its pages to the ledger
      // (spilled deltas were never charged).
      if (!delta_spilled) ctx_->ReleaseTemp(src.temp.pages);
      if (ctx_->collect_op_stats) arm->Harvest();
      iter_logs_.emplace_back();
      arm->Replay(&iter_logs_.back());

      Table next;
      next.schema = result_.schema;
      for (Row& r : produced.rows) {
        if (seen.insert(r).second) {
          result_.rows.push_back(r);
          next.rows.push_back(std::move(r));
        }
      }
      progress = !next.rows.empty();
      delta = std::move(next);
    }
    if (cacheable && ctx_->fix_cache != nullptr) {
      bool cache_spilled = false;
      FixCacheEntry entry;
      entry.temp = ctx_->AllocTemp(result_.rows.size(),
                                   result_.schema.cols.size(),
                                   SpillOpTag::kFixCache, &cache_spilled);
      if (cache_spilled) {
        entry.spill = SpillRows(ctx_, result_.rows);
      } else {
        entry.result = result_;
      }
      (*ctx_->fix_cache)[key] = std::move(entry);
    }
    serve_src_ = &result_;
    own_rows_ = true;
  }

  bool computed_ = false;
  Table result_;
  const Table* serve_src_ = nullptr;
  bool own_rows_ = false;
  size_t pos_ = 0;
  std::vector<ChargeLog> iter_logs_;
};

// --- Factory ---------------------------------------------------------------

std::unique_ptr<Op> BuildOp(ExecCtx* ctx, const PTNode* node) {
  switch (node->kind) {
    case PTKind::kEntity:
      return std::make_unique<EntityScanOp>(ctx, node);
    case PTKind::kDelta:
      return std::make_unique<DeltaScanOp>(ctx, node);
    case PTKind::kSel:
      if (node->sel_access != SelAccess::kSeqScan) {
        return std::make_unique<IndexSelOp>(ctx, node);
      }
      if (node->children[0]->kind == PTKind::kEntity) {
        return std::make_unique<FilterScanOp>(ctx, node);
      }
      return std::make_unique<FilterOp>(ctx, node);
    case PTKind::kProj:
      return std::make_unique<ProjOp>(ctx, node);
    case PTKind::kEJ:
      if (node->algo == JoinAlgo::kIndexJoin) {
        return std::make_unique<IndexJoinOp>(ctx, node);
      }
      return std::make_unique<NLJoinOp>(ctx, node);
    case PTKind::kIJ:
      return std::make_unique<IJOp>(ctx, node);
    case PTKind::kPIJ:
      return std::make_unique<PIJOp>(ctx, node);
    case PTKind::kUnion:
      return std::make_unique<UnionOp>(ctx, node);
    case PTKind::kFix:
      return std::make_unique<FixOp>(ctx, node);
  }
  RODIN_CHECK(false, "unknown PT node kind");
  return nullptr;
}

/// Makes the engine-local page counts inclusive: each profiled node's pages
/// gain the sum of its children's (inclusive) pages, bottom-up. Nodes never
/// evaluated (fused entity children, cache-skipped subtrees) contribute
/// their descendants' total transparently.
uint64_t SumPagesInclusive(const PTNode& node,
                           std::map<const PTNode*, OpStats>* stats) {
  uint64_t child_total = 0;
  for (const auto& c : node.children) {
    child_total += SumPagesInclusive(*c, stats);
  }
  auto it = stats->find(&node);
  if (it == stats->end()) return child_total;
  it->second.pages += child_total;
  return it->second.pages;
}

}  // namespace

struct BatchEngine::Impl {
  Config cfg;
  const PTNode* plan = nullptr;
  ExecCtx ctx;
  std::unique_ptr<Op> root;
  bool finalized = false;
  bool exhausted = false;
  uint64_t rows_emitted = 0;
  Status status;  // non-OK after a budget / fault abort
};

BatchEngine::BatchEngine(const Config& config, const PTNode& plan)
    : impl_(std::make_unique<Impl>()) {
  RODIN_CHECK(config.db != nullptr, "engine needs a database");
  impl_->cfg = config;
  impl_->plan = &plan;
  ExecCtx& ctx = impl_->ctx;
  ctx.db = config.db;
  ctx.batch_rows = std::max<size_t>(1, config.batch_rows);
  ctx.threads = std::max<size_t>(1, config.exec_threads);
  ctx.hash_equijoin = config.hash_equijoin;
  ctx.compiled_eval = config.compiled_eval;
  ctx.collect_op_stats = config.collect_op_stats;
  ctx.pool = config.pool;
  ctx.fix_cache = config.fix_cache;
  ctx.query = config.query;
  ctx.inject_faults =
      config.inject_faults && FaultInjector::Global().enabled();
  ctx.spill_enabled = config.spill_enabled;
  ctx.ledger_budget = config.spill_budget_pages;
  impl_->root = BuildOp(&ctx, &plan);
}

BatchEngine::~BatchEngine() { Finalize(); }

const RowSchema& BatchEngine::schema() const { return impl_->root->schema(); }

uint64_t BatchEngine::rows_emitted() const { return impl_->rows_emitted; }

uint64_t BatchEngine::vm_chunks() const { return impl_->ctx.vm_chunks; }

uint64_t BatchEngine::vm_instrs() const { return impl_->ctx.vm_instrs; }

bool BatchEngine::Next(RowBatch* out) {
  out->Clear();
  if (impl_->exhausted) return false;
  try {
    // Batch boundary: a cancel requested from another thread while the
    // caller was away is observed here, before any new work starts.
    impl_->ctx.CheckAbort(0);
    while (true) {
      if (!impl_->root->Pull(out)) {
        impl_->exhausted = true;
        out->Clear();
        return false;
      }
      if (!out->empty()) {
        impl_->rows_emitted += out->size();
        return true;
      }
    }
  } catch (internal::ExecAbort& abort) {
    // The abort already unwound any in-flight operator pass; completed
    // passes keep their charge logs, so Finalize still replays exactly the
    // work performed. A dangling delta entry from an unwound fixpoint is
    // dropped (the engine can never be pulled again).
    impl_->status = std::move(abort.status);
    impl_->ctx.deltas.clear();
    impl_->exhausted = true;
    out->Clear();
    return false;
  }
}

const Status& BatchEngine::status() const { return impl_->status; }

void BatchEngine::Finalize() {
  if (impl_->finalized) return;
  impl_->finalized = true;
  ExecCtx& ctx = impl_->ctx;
  // Canonical replay: the pool sees the exact charge sequence the legacy
  // bottom-up evaluator would have produced, so LRU hits and misses — and
  // with them MeasuredCost() — are independent of batching and threading.
  // The per-query memory budget applies exactly here, where the pool is
  // actually touched: with a budget the effective LRU capacity is clamped,
  // so over-budget access patterns degrade to extra (exactly accounted)
  // misses instead of failing.
  const size_t budget =
      ctx.query != nullptr ? ctx.query->memory_budget_pages : 0;
  {
    // Declares the replay to the pool so a concurrent resident-set
    // snapshot/restore (Session's fault-retry path) trips the debug guard
    // instead of silently corrupting the accounting.
    BufferPool::ActiveFetchScope fetch_scope(&ctx.db->buffer_pool());
    if (budget > 0) ctx.db->buffer_pool().SetQueryBudget(budget);
    impl_->root->Replay(&ctx.db->buffer_pool());
    if (budget > 0) ctx.db->buffer_pool().ClearQueryBudget();
  }
  if (ctx.collect_op_stats) {
    impl_->root->Harvest();
    SumPagesInclusive(*impl_->plan, &ctx.local_stats);
    if (impl_->cfg.op_stats != nullptr) {
      for (const auto& [node, s] : ctx.local_stats) {
        OpStats& dst = (*impl_->cfg.op_stats)[node];
        dst.invocations += s.invocations;
        dst.rows += s.rows;
        dst.pages += s.pages;
        dst.micros += s.micros;
      }
    }
  }
  if (ctx.spill.spills > 0) {
    static obs::Counter* spills =
        obs::MetricsRegistry::Global().GetCounter("rodin.spill.spills");
    static obs::Counter* partitions =
        obs::MetricsRegistry::Global().GetCounter("rodin.spill.partitions");
    static obs::Counter* bytes =
        obs::MetricsRegistry::Global().GetCounter("rodin.spill.bytes");
    static obs::Counter* passes =
        obs::MetricsRegistry::Global().GetCounter("rodin.spill.passes");
    spills->Add(ctx.spill.spills);
    partitions->Add(ctx.spill.partitions);
    bytes->Add(ctx.spill.bytes);
    passes->Add(ctx.spill.passes);
  }
  if (impl_->cfg.spill_stats != nullptr) {
    impl_->cfg.spill_stats->Add(ctx.spill);
  }
  if (ctx.compiled_eval) {
    static obs::Counter* chunks =
        obs::MetricsRegistry::Global().GetCounter("rodin.vm.chunks_compiled");
    static obs::Counter* instrs =
        obs::MetricsRegistry::Global().GetCounter("rodin.vm.chunk_instrs");
    static obs::Counter* rows =
        obs::MetricsRegistry::Global().GetCounter("rodin.vm.rows_evaluated");
    chunks->Add(ctx.vm_chunks);
    instrs->Add(ctx.vm_instrs);
    rows->Add(ctx.vm_rows);
  }
  if (impl_->cfg.counters != nullptr) {
    ExecCounters* c = impl_->cfg.counters;
    c->predicate_evals += ctx.counters.predicate_evals;
    c->method_calls += ctx.counters.method_calls;
    c->fix_iterations += ctx.fix_iterations;
    c->rows_produced += impl_->rows_emitted;
    if (impl_->cfg.method_cost_fp != nullptr) {
      *impl_->cfg.method_cost_fp += ctx.counters.method_cost_fp;
      c->method_cost = MethodCostFromFp(*impl_->cfg.method_cost_fp);
    }
  }
}

}  // namespace rodin
