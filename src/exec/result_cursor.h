#ifndef RODIN_EXEC_RESULT_CURSOR_H_
#define RODIN_EXEC_RESULT_CURSOR_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "exec/executor.h"
#include "exec/row_batch.h"

namespace rodin {

/// A streaming handle over an executing query. Rows are produced batch by
/// batch (ExecOptions::batch_rows at a time) as the caller pulls; barriers
/// inside the plan (fixpoint iterations, nested-loop inners, dedup) still
/// materialize internally, but everything downstream of them streams.
///
///   ResultCursor cur = session.Query(text, {.exec_threads = 4});
///   RowBatch batch;
///   while (cur.Next(&batch)) Consume(batch);
///   // or: Row row; while (cur.Next(&row)) ...
///   // or: Table all = cur.ToTable();
///
/// When the cursor is exhausted (or Finish() / ToTable() is called) the
/// deferred page charges replay into the buffer pool and the executor's
/// counters are final; counters() and measured_cost() then hold the
/// complete run's figures — bit-identical for any batch size and thread
/// count. Destroying a cursor early finalizes the accounting of the work
/// done so far without draining the remaining rows.
///
/// The executor (and the session, when the cursor came from
/// Session::Query) must outlive the cursor. Cursors are move-only.
class ResultCursor {
 public:
  ResultCursor();
  explicit ResultCursor(Status status);
  ~ResultCursor();

  ResultCursor(ResultCursor&&) noexcept;
  ResultCursor& operator=(ResultCursor&&) noexcept;
  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;

  bool ok() const;
  const Status& status() const;
  const std::string& error() const;

  /// Output schema of the query (valid when ok()).
  const RowSchema& schema() const;

  /// Pulls the next batch. Returns false when exhausted — accounting
  /// finalizes automatically at that point.
  bool Next(RowBatch* batch);

  /// Row-at-a-time convenience over the same stream.
  bool Next(Row* row);

  /// Drains every remaining row into a table and finishes the cursor.
  Table ToTable();

  /// Drains any remaining rows (so the run's accounting is complete) and
  /// finalizes: charges replay into the buffer pool, counters land in the
  /// executor. Idempotent; implied by exhaustion and ToTable().
  void Finish();

  bool finished() const;

  /// Snapshot of the executor's counters at finish time (zeroes before).
  const ExecCounters& counters() const;

  /// Executor::MeasuredCost() at finish time (-1 before finish / on error).
  double measured_cost() const;

  /// PrintPT of the executed plan (set by Session::Query; empty otherwise).
  const std::string& plan_text() const;

 private:
  friend class Executor;
  friend class Session;

  struct Impl;

  void set_plan_text(std::string text);
  void set_keepalive(std::shared_ptr<void> owned);
  /// Invoked exactly once when the cursor finalizes (drained, failed or
  /// destroyed), after every counter and page charge is final. `status` is
  /// the cursor's terminal status; `drained` is true only when the stream
  /// was consumed to genuine exhaustion — an abandoned (destroyed-early) or
  /// aborted cursor reports false, which is how Session's feedback harvest
  /// knows a cancelled cursor must contribute nothing.
  void set_on_finish(std::function<void(const Status& status, bool drained)> hook);

  /// Finalizes accounting for whatever has executed so far (no draining).
  void FinalizeAccounting();

  std::unique_ptr<Impl> impl_;
};

}  // namespace rodin

#endif  // RODIN_EXEC_RESULT_CURSOR_H_
