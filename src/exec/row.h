#ifndef RODIN_EXEC_ROW_H_
#define RODIN_EXEC_ROW_H_

#include <string>
#include <vector>

#include "plan/pt.h"
#include "storage/value.h"

namespace rodin {

/// A runtime row: one Value per column of the producing PT node.
using Row = std::vector<Value>;

/// Column layout of a table: mirrors the PTCols of the producing node.
struct RowSchema {
  std::vector<PTCol> cols;

  int IndexOf(const std::string& name) const;

  /// Same resolution rule as PTNode::ResolveVarPath (dotted columns first).
  bool ResolveVarPath(const std::string& var,
                      const std::vector<std::string>& path, int* col_index,
                      std::vector<std::string>* rest) const;
};

/// A fully materialized intermediate result.
struct Table {
  RowSchema schema;
  std::vector<Row> rows;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }

  /// Set semantics: sorts and removes duplicate rows.
  void Dedup();

  /// Lexicographic row order (for Dedup and set difference).
  static bool RowLess(const Row& a, const Row& b);
  static bool RowEq(const Row& a, const Row& b);

  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace rodin

#endif  // RODIN_EXEC_ROW_H_
