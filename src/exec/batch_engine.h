#ifndef RODIN_EXEC_BATCH_ENGINE_H_
#define RODIN_EXEC_BATCH_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "exec/executor.h"
#include "exec/row_batch.h"

namespace rodin {

class ThreadPool;

/// The batched, morsel-parallel evaluation engine behind Executor and
/// ResultCursor. One engine instance evaluates one processing tree as a pull
/// pipeline of Open/NextBatch-style operators over ~ExecOptions::batch_rows
/// row batches; leaf scans, filters, joins and index probes fan their
/// per-row work across a shared worker pool in contiguous morsels.
///
/// Accounting is deterministic by construction: workers never touch the
/// buffer pool — every operator pass records its page charges into its own
/// ChargeLog (morsel logs merged in morsel order), and Finalize() replays
/// all logs into the pool in the canonical order of the materialized
/// bottom-up evaluator (post-order, iteration by iteration for fixpoints).
/// CPU counters are integers (plus fixed-point method cost), so per-morsel
/// partial sums merge to the same totals for any batch size or thread
/// count. The result: ExecCounters, OpStats and MeasuredCost() are
/// bit-identical to the legacy evaluator, for any configuration.
class BatchEngine {
 public:
  struct Config {
    Database* db = nullptr;
    size_t batch_rows = 1024;
    size_t exec_threads = 1;
    bool hash_equijoin = false;
    /// Compile operator predicates / projections / path programs to
    /// register bytecode at operator-build time and run the chunks per row
    /// (see src/exec/vm/). Accounting — ExecCounters, OpStats, pool
    /// counters, MeasuredCost — is bit-identical to interpreted eval for
    /// every batch size and thread count; only wall time changes.
    bool compiled_eval = false;
    ThreadPool* pool = nullptr;  // shared worker pool; null = inline
    std::map<std::string, FixCacheEntry>* fix_cache = nullptr;
    bool collect_op_stats = false;
    /// Finalize() sinks, all owned by the Executor.
    std::map<const PTNode*, OpStats>* op_stats = nullptr;
    ExecCounters* counters = nullptr;
    uint64_t* method_cost_fp = nullptr;
    /// The run's lifecycle budget (see ExecOptions::query). Polled on the
    /// coordinator thread at batch and fixpoint-iteration boundaries, so a
    /// streaming cursor can be cancelled mid-read from another thread.
    const QueryContext* query = nullptr;
    /// Consult the process FaultInjector during this evaluation (Session's
    /// non-streaming paths only).
    bool inject_faults = false;
    /// Over-budget temp working sets spill to disk instead of tripping
    /// kResourceExhausted. Spilling moves row *bytes* only: the page-charge
    /// logs, ExecCounters, OpStats and MeasuredCost stay bit-identical to an
    /// all-in-memory run (spill I/O is tracked separately in spill_stats).
    bool spill_enabled = true;
    /// The temp-page ledger budget the spill decision checks against
    /// (already resolved through EffectiveSpillBudgetPages). 0 = unlimited.
    size_t spill_budget_pages = 0;
    /// Finalize() merges this engine's spill activity here (Executor-owned).
    SpillStats* spill_stats = nullptr;
  };

  BatchEngine(const Config& config, const PTNode& plan);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  const RowSchema& schema() const;

  /// Fills `out` with the next batch (up to batch_rows rows). Returns false
  /// when the plan is exhausted; never returns an empty batch otherwise.
  /// Also returns false when the budget trips or a fault is injected —
  /// check status() to tell exhaustion from abort. After an abort the
  /// engine stays safe to Finalize (partial charges replay exactly).
  bool Next(RowBatch* out);

  /// OK while streaming normally; the abort reason (kCancelled,
  /// kDeadlineExceeded, kResourceExhausted, kFault) after Next returned
  /// false because the budget tripped.
  const Status& status() const;

  /// Replays every recorded page charge into the buffer pool in canonical
  /// order and merges counters / op stats into the configured sinks.
  /// Idempotent; called by the destructor if never called explicitly.
  void Finalize();

  uint64_t rows_emitted() const;

  /// Bytecode chunks compiled while building this engine's operator tree
  /// (Fix arms recompile per iteration) and their summed instruction
  /// counts. Zero under interpreted eval; feeds the execute span's args.
  uint64_t vm_chunks() const;
  uint64_t vm_instrs() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rodin

#endif  // RODIN_EXEC_BATCH_ENGINE_H_
