#ifndef RODIN_EXEC_ROW_BATCH_H_
#define RODIN_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "exec/row.h"

namespace rodin {

/// The unit of data flow in the batched executor: up to ExecOptions::
/// batch_rows rows sharing one schema. Operators fill batches in place
/// (Next-style pull); the schema lives on the producing operator / cursor,
/// not on every batch.
struct RowBatch {
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void Clear() { rows.clear(); }
  void Add(Row row) { rows.push_back(std::move(row)); }
};

}  // namespace rodin

#endif  // RODIN_EXEC_ROW_BATCH_H_
