#ifndef RODIN_EXEC_EVAL_CORE_H_
#define RODIN_EXEC_EVAL_CORE_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/row.h"
#include "plan/pt.h"
#include "query/expr.h"
#include "storage/database.h"

namespace rodin {

namespace vm {
struct VmScratch;
}  // namespace vm

/// Method costs are declared as doubles but summed in 2^-20 fixed point so
/// that the total is independent of summation grouping — worker morsels add
/// their partial sums in any association and still land on the bit pattern
/// the sequential evaluator produces.
constexpr uint64_t kMethodCostScale = 1ull << 20;

inline uint64_t MethodCostToFp(double cost) {
  return static_cast<uint64_t>(std::llround(cost * kMethodCostScale));
}

inline double MethodCostFromFp(uint64_t fp) {
  return static_cast<double>(fp) / kMethodCostScale;
}

/// Everything expression evaluation needs: the (read-only) database, where
/// to charge page accesses, and where to count CPU-side work. The legacy
/// evaluator wires the pointers at the Executor's members and buffer pool;
/// each worker morsel of the batched engine wires them at morsel-local
/// counters and a morsel-local ChargeLog, making evaluation freely
/// parallel — the database itself is never written.
struct EvalContext {
  const Database* db = nullptr;
  PageCharger* charger = nullptr;
  uint64_t* predicate_evals = nullptr;
  uint64_t* method_calls = nullptr;
  uint64_t* method_cost_fp = nullptr;
  /// Register scratch for compiled (bytecode) evaluation, owned by the
  /// enclosing morsel; null under interpreted eval and in the legacy
  /// evaluator (which never compiles).
  vm::VmScratch* vm = nullptr;
};

/// Comparison with the Value total order.
bool CompareValues(CompareOp op, const Value& a, const Value& b);

/// Expands a (possibly collection-valued) value into individual elements.
void ExpandValue(const Value& v, std::vector<Value>* out);

/// For an index probe predicate `cmp`, returns the literal side and whether
/// the path is on the left.
bool SplitProbe(const Expr& cmp, Value* literal, bool* path_on_left);

/// Navigates `path` from `start` (charging dereferences through ctx),
/// appending every reached value to `out`. Computed attributes invoke their
/// method and count its declared cost.
void Navigate(EvalContext* ctx, const Value& start,
              const std::vector<std::string>& path, size_t step,
              std::vector<Value>* out);

/// All instantiations of `expr` on `row` (path steps through collections fan
/// out; nulls produce nothing). Object dereferences are charged.
std::vector<Value> EvalMulti(EvalContext* ctx, const RowSchema& schema,
                             const Row& row, const ExprPtr& expr);

/// Boolean evaluation with exists-semantics over multi-valued paths.
bool EvalPred(EvalContext* ctx, const RowSchema& schema, const Row& row,
              const ExprPtr& pred);

/// Splits an index-join predicate: extracts the probe expression (the outer
/// side of the Cmp(=, inner.attr, outer) conjunct matching
/// `node.join_index_attr` on `inner_binding`) and the residual conjunction.
/// Returns null if no probe conjunct exists.
ExprPtr ExtractIndexProbe(const PTNode& node, const std::string& inner_binding,
                          ExprPtr* residual_pred);

/// True when `tree` contains a delta leaf of a fixpoint other than `own` —
/// such a subtree's value depends on the enclosing fixpoint's iteration
/// state and must not be memoized.
bool HasForeignDelta(const PTNode& tree, const std::string& own);

}  // namespace rodin

#endif  // RODIN_EXEC_EVAL_CORE_H_
