#ifndef RODIN_COST_FIG7_H_
#define RODIN_COST_FIG7_H_

#include <map>
#include <string>
#include <vector>

#include "cost/symbolic.h"
#include "plan/pt.h"
#include "storage/database.h"

namespace rodin {

/// Reproduction of Figure 7: walks a processing tree and emits one symbolic
/// cost row per operator node, in the paper's notation and under its §4.6
/// simplifying assumptions —
///
///   access_cost(C, P) = |C| * pr        eval_cost(C, P) = ev (per page)
///   access_cost(C)    = |C| * pr        nbtuples(C, P)  = ||C||
///   access_cost(Ci,Cj)= pr              nbpages(C, P)   = |C|
///   nbleaves = lea, nblevels = lev     (constants)
///
/// Intermediate results get symbols |T_k| / ||T_k|| exactly like the paper;
/// the fixpoint cost is  cost(Exp(first delta)) + (n-1) * cost(Exp(Inf_i)).
/// Projections are free (the paper does not charge them) and appear with a
/// zero row for completeness.
struct SymbolicRow {
  std::string label;   // "T1", "T2", ...
  std::string what;    // operator description
  SymPtr cost;         // the paper-style formula
};

struct SymbolicCostTable {
  std::vector<SymbolicRow> rows;
  SymPtr total;
  /// Numeric bindings for every symbol used, derived from the database and
  /// the cost-model estimates on the plan (Annotate must have run).
  std::map<std::string, double> env;

  double EvalTotal() const { return total->Eval(env); }
  std::string ToString() const;  // the printable Figure-7-style table
};

/// `extent_symbols` maps extent names to the paper's short names (e.g.
/// Composer -> "Cpr"); unmapped extents use their own name. `t_counter`
/// continues T-numbering across multiple tables (Figure 7 numbers both PTs
/// consecutively); pass 0-initialized storage.
SymbolicCostTable DeriveSymbolicCosts(
    const PTNode& plan, const Database& db,
    const std::map<std::string, std::string>& extent_symbols, int* t_counter);

}  // namespace rodin

#endif  // RODIN_COST_FIG7_H_
