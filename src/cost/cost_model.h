#ifndef RODIN_COST_COST_MODEL_H_
#define RODIN_COST_COST_MODEL_H_

#include <map>
#include <string>

#include "cost/feedback.h"
#include "cost/params.h"
#include "cost/stats.h"
#include "plan/pt.h"
#include "storage/database.h"

namespace rodin {

/// The cost model of paper §3.2 / Figure 5, generalized to every PT node
/// kind and made buffer-aware (the paper's footnote 2: access_cost accounts
/// for data already in main memory; here that is an LRU-hit estimate).
///
/// Costs are in abstract time units: one cold page read costs `pr`, one
/// per-tuple predicate evaluation costs `ev_tuple`, one method call costs
/// its declared weight. Estimates are written into the PT nodes
/// (est_rows/est_pages/est_cost) so that transformations can compare plans
/// and the benches can print per-node tables like Figure 7.
///
/// Thread-safety: a CostModel is immutable after construction and keeps all
/// per-call state on the stack, so one instance may be shared by concurrent
/// search workers — as long as each worker annotates its *own* plan tree
/// (Annotate writes estimates into the nodes it is given).
class CostModel {
 public:
  /// `feedback` (optional) is a snapshot of measured-cardinality correction
  /// factors (see cost/feedback.h): selectivities, fan-outs and closure
  /// sizes are multiplied by the factor of their node's FeedbackScopeKey, so
  /// estimates track observed reality. The snapshot must outlive the model
  /// and is read-only — a corrected CostModel stays shareable across search
  /// threads. Null (the default) costs from the statistics alone.
  CostModel(const Database* db, const Stats* stats, CostParams params = {},
            const FeedbackCorrections* feedback = nullptr);

  /// Costs the subtree bottom-up, annotating every node; returns the total.
  double Annotate(PTNode* node) const;

  /// Estimated selectivity of `pred` against the columns of `input`
  /// (nbpages/nbtuples reduction of the paper's basic operations).
  double Selectivity(const PTNode& input, const ExprPtr& pred) const;

  /// Expected I/O of F random object fetches spread over P pages, given the
  /// buffer size: min(F, P) when the extent fits in the buffer, otherwise
  /// F * miss-ratio.
  double RandomFetchIO(double fetches, double pages) const;

  /// Expected I/O of `scans` sequential scans of P pages (re-scans are free
  /// when the extent fits in the buffer; LRU thrashes otherwise).
  double RescanIO(double scans, double pages) const;

  /// Per-row multiplicative fan-out and dereference profile of a path from
  /// class `start` (object dereferences charged, terminal atomic read free).
  /// The I/O of the whole path depends on how many rows evaluate it — see
  /// PathIOCost() — because buffer hits amortize across rows.
  struct PathEval {
    struct Deref {
      double per_row = 0;      // dereferences per input row at this step
      double target_pages = 0; // pages of the target extent
      double uncluster = 1;    // fraction NOT co-located with the owner
      double seq = 0;          // fraction behaving sequentially (AttrStats)
    };
    bool valid = false;
    double fanout = 1;       // output multiplicity per input row
    double cpu_per_row = 0;  // method-call cost per input row
    std::vector<Deref> derefs;
    const ClassDef* terminal_cls = nullptr;  // nullptr if path ends atomic
    std::string terminal_extent;  // extent owning the terminal attribute
    std::string terminal_attr;    // "" when the path ends on an object
  };
  PathEval EvalPath(const ClassDef* start,
                    const std::vector<std::string>& path) const;

  /// Total I/O cost of evaluating the path once per each of `rows` rows:
  /// per dereference step, RandomFetchIO over the aggregated fetch count.
  double PathIOCost(const PathEval& path, double rows) const;

  const CostParams& params() const { return params_; }
  const Stats& stats() const { return *stats_; }

 private:
  /// Memo of fixpoint subtrees already costed within one Annotate() call
  /// (fingerprint -> {cost-as-reread, rows}). Mirrors the executor's
  /// fixpoint memoization: a view instantiated into several consumers is
  /// computed once; later occurrences only re-scan its materialization.
  /// Carried through the recursion as per-call state (never a member) so
  /// that a const CostModel is safely shared across search threads.
  using FixMemo = std::map<std::string, std::pair<double, double>>;

  double AnnotateRec(PTNode* node, FixMemo* memo) const;
  double NodeCostRec(PTNode* node, FixMemo* memo) const;
  double CostEntity(PTNode* node) const;
  double CostDelta(PTNode* node) const;
  double CostSel(PTNode* node, FixMemo* memo) const;
  double CostProj(PTNode* node, FixMemo* memo) const;
  double CostEJ(PTNode* node, FixMemo* memo) const;
  double CostIJ(PTNode* node, FixMemo* memo) const;
  double CostPIJ(PTNode* node, FixMemo* memo) const;
  double CostUnion(PTNode* node, FixMemo* memo) const;
  double CostFix(PTNode* node, FixMemo* memo) const;

  /// Total I/O + CPU of evaluating expression `e` once per each of `rows`
  /// rows of `input` (path dereferences and method calls; comparison CPU is
  /// handled separately).
  double ExprEvalCost(const PTNode& input, const ExprPtr& e,
                      double rows) const;

  /// Resolves the terminal attribute statistics of a (var, path) reference
  /// against `input`'s columns. Returns nullptr AttrStats when unresolvable.
  const AttrStats* TerminalAttrStats(const PTNode& input,
                                     const std::string& var,
                                     const std::vector<std::string>& path,
                                     const ClassDef** terminal_cls) const;

  double CompareSelectivity(const PTNode& input, const Expr& cmp) const;

  /// The feedback correction factor for `node`'s scope (1.0 without
  /// feedback). The scope-key derivation is skipped entirely when no
  /// corrections are attached, keeping the uncorrected hot path unchanged.
  double FeedbackFactor(const PTNode& node) const {
    if (feedback_ == nullptr) return 1.0;
    return feedback_->Factor(FeedbackScopeKey(node));
  }

  const Database* db_;
  const Stats* stats_;
  CostParams params_;
  const FeedbackCorrections* feedback_ = nullptr;
};

/// Default estimate for fixpoint iterations when no chain statistics apply.
constexpr double kDefaultFixIterations = 10;

}  // namespace rodin

#endif  // RODIN_COST_COST_MODEL_H_
