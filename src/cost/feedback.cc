#include "cost/feedback.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "plan/pt_printer.h"

namespace rodin {

namespace {

obs::Counter* FeedbackCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

/// The identity of a Sel node's input, for scoping its selectivity error:
/// selectivity against an extent scan and against a fixpoint's closure are
/// different quantities even under the same predicate.
std::string SourceTag(const PTNode& n) {
  switch (n.kind) {
    case PTKind::kEntity:
      return n.entity.ToString();
    case PTKind::kDelta:
      return "delta:" + n.fix_name;
    case PTKind::kFix:
      return "fix:" + n.fix_name;
    default:
      return PTKindName(n.kind);
  }
}

void FlattenRec(const PTNode& node,
                const std::map<const PTNode*, OpStats>& op_stats, int parent,
                std::vector<PlanNodeStats>* out) {
  PlanNodeStats row;
  row.op = PTNodeLabel(node);
  row.scope = FeedbackScopeKey(node);
  row.parent = parent;
  row.est_rows = node.est_rows;
  row.est_cost = node.est_cost;
  auto it = op_stats.find(&node);
  if (it != op_stats.end()) {
    row.executed = true;
    row.measured_rows = it->second.rows;
    row.measured_pages = it->second.pages;
    row.measured_micros = it->second.micros;
    row.invocations = it->second.invocations;
  }
  const int index = static_cast<int>(out->size());
  out->push_back(std::move(row));
  for (const auto& c : node.children) {
    FlattenRec(*c, op_stats, index, out);
  }
}

/// Measured output rows per invocation, falling back to the estimate for
/// nodes the run never profiled (Sel-over-entity fuses the scan, so the
/// entity child has no profile of its own — its estimate is the exact
/// instance count and stands in). Returns -1 when there is no usable figure.
double RowsPerInvocation(const PlanNodeStats& n) {
  if (n.executed && n.invocations > 0) {
    return static_cast<double>(n.measured_rows) /
           static_cast<double>(n.invocations);
  }
  return n.est_rows >= 0 ? n.est_rows : -1;
}

}  // namespace

std::string FeedbackScopeKey(const PTNode& node) {
  switch (node.kind) {
    case PTKind::kEntity:
      return "extent:" + node.entity.ToString();
    case PTKind::kSel: {
      if (node.children.empty() || node.pred == nullptr) return "";
      return "sel:" + SourceTag(*node.children[0]) + ":" +
             node.pred->ToString();
    }
    case PTKind::kEJ: {
      if (node.pred == nullptr) return "";
      return "join:" + node.pred->ToString();
    }
    case PTKind::kIJ: {
      if (node.children.empty()) return "";
      int col = -1;
      std::vector<std::string> rest;
      if (node.children[0]->ResolveVarPath(node.src_var, {node.attr}, &col,
                                           &rest) &&
          !rest.empty() && node.children[0]->cols[col].cls != nullptr) {
        return "path:" + node.children[0]->cols[col].cls->name() + "." +
               node.attr;
      }
      // Dotted-column form: the traversal happened upstream and the IJ only
      // binds the reached object — keyed by the target class instead.
      if (node.target != nullptr) {
        return "path:" + node.target->name() + "." + node.attr;
      }
      return "";
    }
    case PTKind::kPIJ: {
      if (node.path_index == nullptr) return "";
      std::string key = "path:" + node.path_index->root_class();
      for (const std::string& step : node.path) key += "." + step;
      return key;
    }
    case PTKind::kFix:
      return "fix:" + node.fix_name;
    case PTKind::kProj: {
      // A deduplicating projection changes cardinality in a way no derived
      // statistic captures (the survival rate of duplicate elimination);
      // scope it by its output expressions so the learned rate carries to
      // every plan producing the same columns. Plain projections pass rows
      // through 1:1 — nothing to correct.
      if (!node.dedup || node.proj.empty()) return "";
      std::string key = "dedup:";
      for (size_t i = 0; i < node.proj.size(); ++i) {
        if (i > 0) key += ",";
        key += node.proj[i].expr != nullptr ? node.proj[i].expr->ToString()
                                            : node.proj[i].name;
      }
      return key;
    }
    default:
      // Plain projections, unions and deltas: output cardinality is
      // determined by the inputs; there is no local estimate to correct.
      return "";
  }
}

std::vector<PlanNodeStats> FlattenPlanStats(
    const PTNode& plan, const std::map<const PTNode*, OpStats>& op_stats) {
  std::vector<PlanNodeStats> out;
  FlattenRec(plan, op_stats, -1, &out);
  return out;
}

size_t FeedbackRegistry::Harvest(const std::vector<PlanNodeStats>& nodes,
                                 uint64_t stats_version, double alpha) {
  static obs::Counter* observations =
      FeedbackCounter("rodin.feedback.observations");
  static obs::Counter* corrections =
      FeedbackCounter("rodin.feedback.corrections");
  alpha = std::clamp(alpha, 0.0, 1.0);

  // Children of row i are the rows with parent == i; the input of a
  // single-input operator is its first child (a Fix's base arm).
  std::vector<int> first_child(nodes.size(), -1);
  std::vector<int> second_child(nodes.size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int p = nodes[i].parent;
    if (p < 0) continue;
    if (first_child[p] < 0) {
      first_child[p] = static_cast<int>(i);
    } else if (second_child[p] < 0) {
      second_child[p] = static_cast<int>(i);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (stats_version < stats_version_) {
    // A commit retired the statistics this run was estimated under.
    stats_.stale_dropped++;
    return 0;
  }
  if (stats_version > stats_version_) {
    // First harvest under fresh statistics: everything learned under the
    // old ones is void.
    factors_.clear();
    demotions_.clear();
    stats_version_ = stats_version;
  }

  size_t accepted = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNodeStats& n = nodes[i];
    if (n.scope.empty() || !n.executed || n.invocations == 0) continue;
    if (n.est_rows < 0) continue;
    const double m_out = static_cast<double>(n.measured_rows) /
                         static_cast<double>(n.invocations);

    // The *local* ratio: divide out the input's own error so a mis-estimated
    // child does not re-charge every ancestor's factor.
    double ratio = -1;
    if (n.scope.rfind("extent:", 0) == 0) {
      if (n.est_rows > 0) ratio = m_out / n.est_rows;
    } else if (n.scope.rfind("join:", 0) == 0) {
      const int l = first_child[i];
      const int r = second_child[i];
      if (l >= 0 && r >= 0) {
        const double m_l = RowsPerInvocation(nodes[l]);
        const double m_r = RowsPerInvocation(nodes[r]);
        const double e_l = nodes[l].est_rows;
        const double e_r = nodes[r].est_rows;
        if (m_l > 0 && m_r > 0 && e_l > 0 && e_r > 0 && n.est_rows > 0) {
          const double meas_sel = m_out / (m_l * m_r);
          const double est_sel = n.est_rows / (e_l * e_r);
          if (est_sel > 0) ratio = meas_sel / est_sel;
        }
      }
    } else {
      // sel: / path: / fix: — one designated input.
      const int c = first_child[i];
      if (c >= 0) {
        const double m_in = RowsPerInvocation(nodes[c]);
        const double e_in = nodes[c].est_rows;
        if (m_in > 0 && e_in > 0 && n.est_rows > 0) {
          ratio = (m_out / m_in) / (n.est_rows / e_in);
        }
      }
    }
    if (ratio < 0) continue;
    ratio = std::clamp(ratio, kMinObservedRatio, kMaxObservedRatio);

    auto it = factors_.find(n.scope);
    if (it == factors_.end()) {
      if (factors_.size() >= kMaxScopes) continue;  // bounded state
      it = factors_.emplace(n.scope, 1.0).first;
    }
    const double updated = std::clamp(
        it->second * (alpha * ratio + (1.0 - alpha)), kMinFactor, kMaxFactor);
    if (updated != it->second) {
      it->second = updated;
      stats_.corrections++;
      corrections->Increment();
    }
    stats_.observations++;
    observations->Increment();
    accepted++;
  }
  return accepted;
}

FeedbackCorrections FeedbackRegistry::Snapshot(uint64_t stats_version) const {
  FeedbackCorrections out;
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_version != stats_version_) return out;  // stale either way
  out.factors_ = factors_;
  return out;
}

void FeedbackRegistry::NoteDemotion(const std::string& fingerprint,
                                    double drift) {
  static obs::Counter* demotions = FeedbackCounter("rodin.feedback.demotions");
  std::lock_guard<std::mutex> lock(mu_);
  if (demotions_.size() >= kMaxDemotionNotes &&
      demotions_.find(fingerprint) == demotions_.end()) {
    return;
  }
  demotions_[fingerprint] = drift;
  stats_.demotions++;
  demotions->Increment();
}

double FeedbackRegistry::TakeDemotionNote(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = demotions_.find(fingerprint);
  if (it == demotions_.end()) return 0;
  const double drift = it->second;
  demotions_.erase(it);
  return drift;
}

FeedbackStats FeedbackRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t FeedbackRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return factors_.size();
}

void FeedbackRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  factors_.clear();
  demotions_.clear();
}

bool FeedbackEnvDefault() {
  static const bool enabled = [] {
    const char* v = std::getenv("RODIN_FEEDBACK");
    return v != nullptr && v[0] != '\0' && std::string(v) != "0";
  }();
  return enabled;
}

}  // namespace rodin
