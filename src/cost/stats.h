#ifndef RODIN_COST_STATS_H_
#define RODIN_COST_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/database.h"

namespace rodin {

/// Per-attribute statistics of one extent.
struct AttrStats {
  double distinct = 1;        // distinct non-null values (atomic attrs)
  double null_frac = 0;       // fraction of null values
  double fanout = 1;          // avg elements per value (collections; 1 for refs)
  double colocated_frac = 0;  // fraction of referenced objects on the owner's page
  /// Fraction of dereferences that land on the same page as (or the page
  /// after) the previous dereference when owners are visited in scan order —
  /// creation-order correlation that turns "random" fetches sequential.
  double seq_frac = 0;
  bool numeric = false;
  double min_val = 0;
  double max_val = 0;
  /// Equi-width histogram over [min_val, max_val] for numeric attributes
  /// (kHistBuckets buckets of value counts); empty for non-numeric ones.
  std::vector<double> hist;

  /// Fraction of values strictly below `x`, from the histogram when
  /// available, else by uniform interpolation.
  double FractionBelow(double x) const;
  /// For self-referencing object attributes (Composer.master): maximum and
  /// average length of reference chains — the recursion depth of a
  /// transitive closure over this attribute.
  double chain_depth_max = 0;
  double chain_depth_avg = 0;
};

/// Histogram resolution for numeric attribute statistics.
constexpr size_t kHistBuckets = 16;

/// Page/instance counts of one atomic entity.
struct EntityStats {
  uint64_t pages = 0;
  uint64_t instances = 0;
};

/// Catalog statistics the cost model consumes: the paper's |C|, ||C||,
/// nbpages/nbtuples inputs plus per-attribute selectivity and fan-out
/// information. Derived by one uncharged sweep over a finalized database.
class Stats {
 public:
  static Stats Derive(const Database& db);

  const EntityStats& Entity(const EntityRef& ref) const;
  /// Stats for extent-level attributes; falls back to defaults when the
  /// attribute was never populated.
  const AttrStats& Attr(const std::string& extent,
                        const std::string& attr) const;

  uint64_t buffer_pages() const { return buffer_pages_; }

  /// Average records of `extent` per page (>= 1).
  double TuplesPerPage(const std::string& extent) const;

 private:
  std::map<std::string, std::map<uint16_t, std::map<uint16_t, EntityStats>>>
      entities_;  // extent -> vfrag -> hfrag
  std::map<std::pair<std::string, std::string>, AttrStats> attrs_;
  uint64_t buffer_pages_ = 0;
  AttrStats default_attr_;
  EntityStats default_entity_;
};

}  // namespace rodin

#endif  // RODIN_COST_STATS_H_
