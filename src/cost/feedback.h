#ifndef RODIN_COST_FEEDBACK_H_
#define RODIN_COST_FEEDBACK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "plan/pt.h"

namespace rodin {

/// Adaptive cost feedback (ROADMAP item 4b): completed runs report their
/// per-operator measured cardinalities; the registry turns them into bounded
/// per-scope correction factors the cost model multiplies into its estimates
/// on the next optimization. Plans therefore get costed against observed
/// reality instead of the static statistics alone — without ever changing
/// results, only plans (the factors scale selectivities/fan-outs, never what
/// the executor does).

/// One row of the flattened est-vs-measured plan table: the structured form
/// of EXPLAIN's annotated tree (`ExplainResult::node_stats()`), and the one
/// surface the feedback harvester consumes — external clients and the
/// registry read the same data instead of parsing plan text.
struct PlanNodeStats {
  std::string op;     // operator description (PTNodeLabel)
  std::string scope;  // correction scope (FeedbackScopeKey; "" = none)
  /// Index of the parent row in the flattened (preorder) vector; -1 for the
  /// root. Children of row i are exactly the rows with parent == i.
  int parent = -1;
  double est_rows = -1;  // cost model estimates (valid when >= 0)
  double est_cost = -1;
  bool executed = false;  // measured fields valid only when set
  uint64_t measured_rows = 0;   // summed over invocations (see OpStats)
  uint64_t measured_pages = 0;
  double measured_micros = 0;
  uint64_t invocations = 0;
};

/// Flattens `plan` (preorder, parent-linked) and joins each node against the
/// executor's per-operator profile. Nodes the run never evaluated keep
/// executed == false; pass an empty map for an explain-only run.
std::vector<PlanNodeStats> FlattenPlanStats(
    const PTNode& plan, const std::map<const PTNode*, OpStats>& op_stats);

/// The correction scope of one plan node — the identity under which its
/// estimation error generalizes across plans:
///   kEntity -> "extent:<name>"           kSel -> "sel:<source>:<predicate>"
///   kEJ     -> "join:<predicate>"        kIJ  -> "path:<class>.<attr>"
///   kPIJ    -> "path:<root>.<path>"      kFix -> "fix:<view name>"
///   kProj (dedup only) -> "dedup:<output columns>" — the survival rate of
///   duplicate elimination, which the static model cannot see at all.
/// Plain projections, unions and deltas carry no correctable estimate ("").
/// The cost model and the harvester both call this, so a factor learned from
/// one plan applies to every plan sharing the scope.
std::string FeedbackScopeKey(const PTNode& node);

/// An immutable snapshot of correction factors, keyed by scope. Ordered so a
/// snapshot is deterministic; the cost model holds one by pointer for the
/// duration of an optimization (shared read-only across search threads).
class FeedbackCorrections {
 public:
  /// The multiplicative correction for `scope` (1.0 when unobserved).
  double Factor(const std::string& scope) const {
    auto it = factors_.find(scope);
    return it == factors_.end() ? 1.0 : it->second;
  }
  bool empty() const { return factors_.empty(); }
  size_t size() const { return factors_.size(); }
  const std::map<std::string, double>& factors() const { return factors_; }

 private:
  friend class FeedbackRegistry;
  std::map<std::string, double> factors_;
};

/// Counters mirroring the rodin.feedback.* metrics, readable per registry
/// instance (the metrics registry is process-global; tests want per-registry
/// figures).
struct FeedbackStats {
  uint64_t observations = 0;   // measured node ratios accepted by Harvest
  uint64_t corrections = 0;    // factors created or updated
  uint64_t demotions = 0;      // plan-cache entries demoted for cost drift
  uint64_t stale_dropped = 0;  // harvests dropped for a stats-version mismatch
};

/// Default drift threshold: a cached plan whose measured cost is >= 3x off
/// its estimate (either direction) is demoted and re-optimized on next
/// acquisition. QueryOptions::feedback.drift_threshold overrides per run.
constexpr double kDefaultDriftThreshold = 3.0;
/// Default EWMA smoothing for correction updates (see Harvest).
constexpr double kDefaultFeedbackAlpha = 0.5;

/// The engine-wide feedback state, owned by EngineHandle and shared across
/// its sessions exactly like the plan cache (sessions constructed without
/// one get a private registry). Thread-safe; all methods lock.
///
/// Stats-versioned: every harvest and snapshot carries the session's
/// engine-wide stats version. A commit or RefreshStats bumps that version,
/// which atomically retires every factor and demotion note learned under the
/// old statistics — corrections describe estimation error *relative to* a
/// statistics snapshot, so they must die with it.
class FeedbackRegistry {
 public:
  /// Correction factors are clamped to [kMinFactor, kMaxFactor]: feedback
  /// nudges the cost model, it must never be able to zero out or explode an
  /// estimate from one aberrant run.
  static constexpr double kMinFactor = 1.0 / 8.0;
  static constexpr double kMaxFactor = 8.0;
  /// A single observed ratio is clamped harder than the factor it feeds, so
  /// one outlier run moves a factor by at most a bounded step.
  static constexpr double kMinObservedRatio = 1.0 / 64.0;
  static constexpr double kMaxObservedRatio = 64.0;
  /// Bounded state: new scopes beyond the cap are dropped (existing scopes
  /// keep updating), and demotion notes are a small FIFO-capped set.
  static constexpr size_t kMaxScopes = 4096;
  static constexpr size_t kMaxDemotionNotes = 256;

  FeedbackRegistry() = default;
  FeedbackRegistry(const FeedbackRegistry&) = delete;
  FeedbackRegistry& operator=(const FeedbackRegistry&) = delete;

  /// Folds one completed run's measured cardinalities into the correction
  /// factors. For each node with a scope, the *local* cardinality ratio —
  /// measured output per input over estimated output per input, so a
  /// parent's error is not double-charged to its children — updates the
  /// scope's factor as an EWMA residual:
  ///
  ///   f' = clamp(f * (alpha * ratio + (1 - alpha)))
  ///
  /// (the observed ratio is relative to estimates that already included f,
  /// so the update is multiplicative; a converged factor sees ratio ~= 1 and
  /// stays put). `stats_version` guards freshness: an older version drops
  /// the whole harvest, a newer one clears the registry first. Returns the
  /// number of observations accepted. Callers must not feed faulted,
  /// truncated or cancelled runs (Session enforces this).
  size_t Harvest(const std::vector<PlanNodeStats>& nodes,
                 uint64_t stats_version, double alpha);

  /// The current factors, iff they were learned under `stats_version`
  /// (empty otherwise — never serve corrections across a stats refresh).
  FeedbackCorrections Snapshot(uint64_t stats_version) const;

  /// Records that the plan cached under `fingerprint` was demoted because
  /// its measured cost drifted `drift`x from its estimate. The next
  /// optimization of that fingerprint collects the note via
  /// TakeDemotionNote and surfaces "[plan: re-optimized (drift N.Nx)]".
  void NoteDemotion(const std::string& fingerprint, double drift);

  /// Retrieves and clears the demotion note for `fingerprint`; returns the
  /// drift ratio, or 0 when there is none.
  double TakeDemotionNote(const std::string& fingerprint);

  FeedbackStats stats() const;
  size_t size() const;

  /// Drops every factor and demotion note (version is kept).
  void Clear();

 private:
  mutable std::mutex mu_;
  uint64_t stats_version_ = 0;
  std::map<std::string, double> factors_;
  std::map<std::string, double> demotions_;
  FeedbackStats stats_;
};

/// RODIN_FEEDBACK environment knob: the process-wide default for
/// QueryOptions::feedback.enabled — set to anything but "0" to enable (read
/// once, like the plan-cache / compiled-eval / fault switches; unset = off).
bool FeedbackEnvDefault();

}  // namespace rodin

#endif  // RODIN_COST_FEEDBACK_H_
