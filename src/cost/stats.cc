#include "cost/stats.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>

#include "common/check.h"

namespace rodin {

namespace {

// Collects per-attribute statistics for one extent.
void DeriveAttrStats(const Database& db, const std::string& extent_name,
                     const std::vector<Attribute>& attrs,
                     std::map<std::pair<std::string, std::string>, AttrStats>*
                         out) {
  const Extent* e = db.FindExtent(extent_name);
  const uint32_t n = e->size();
  const uint32_t live = e->live_size();

  for (const Attribute& a : attrs) {
    if (a.computed) continue;
    const int field = db.FieldIndex(extent_name, a.name);
    RODIN_CHECK(field >= 0, "stats: missing field");

    AttrStats s;
    std::set<Value> distinct;
    uint64_t nulls = 0;
    uint64_t elem_total = 0;
    uint64_t nonnull = 0;
    uint64_t colocated = 0;
    uint64_t ref_total = 0;
    uint64_t sequential = 0;
    PageId prev_child_page = UINT64_MAX;
    bool have_prev = false;
    bool numeric = true;
    double minv = 0, maxv = 0;
    bool have_minmax = false;
    std::vector<double> numeric_values;

    for (uint32_t slot = 0; slot < n; ++slot) {
      if (!e->alive(slot)) continue;
      const Value& v = e->Record(slot)[field];
      if (v.is_null()) {
        ++nulls;
        continue;
      }
      ++nonnull;
      const PageId owner_page =
          e->finalized() ? e->PageOf(slot, 0) : 0;
      auto count_ref = [&](Oid ref) {
        ++ref_total;
        const Extent* te = db.ExtentOf(ref);
        if (!te->finalized()) return;
        const PageId child_page = te->PageOf(ref.slot, 0);
        if (child_page == owner_page) ++colocated;
        if (have_prev &&
            (child_page == prev_child_page || child_page == prev_child_page + 1)) {
          ++sequential;
        }
        prev_child_page = child_page;
        have_prev = true;
      };
      if (v.is_collection()) {
        elem_total += v.AsCollection().elems.size();
        for (const Value& ev : v.AsCollection().elems) {
          if (ev.is_ref()) count_ref(ev.AsRef());
        }
        numeric = false;
      } else {
        elem_total += 1;
        if (v.is_ref()) {
          count_ref(v.AsRef());
          numeric = false;
        } else if (v.is_int() || v.is_real()) {
          const double x = v.AsNumber();
          numeric_values.push_back(x);
          if (!have_minmax) {
            minv = maxv = x;
            have_minmax = true;
          } else {
            minv = std::min(minv, x);
            maxv = std::max(maxv, x);
          }
        } else {
          numeric = false;
        }
        distinct.insert(v);
      }
    }

    s.null_frac = live == 0 ? 0 : static_cast<double>(nulls) / live;
    s.fanout = nonnull == 0 ? 0 : static_cast<double>(elem_total) / nonnull;
    s.distinct = std::max<double>(1, static_cast<double>(distinct.size()));
    s.colocated_frac =
        ref_total == 0 ? 0 : static_cast<double>(colocated) / ref_total;
    s.seq_frac =
        ref_total == 0 ? 0 : static_cast<double>(sequential) / ref_total;
    s.numeric = numeric && have_minmax;
    s.min_val = minv;
    s.max_val = maxv;
    if (s.numeric && maxv > minv && !numeric_values.empty()) {
      s.hist.assign(kHistBuckets, 0);
      const double width = (maxv - minv) / kHistBuckets;
      for (double x : numeric_values) {
        size_t bucket = static_cast<size_t>((x - minv) / width);
        if (bucket >= kHistBuckets) bucket = kHistBuckets - 1;
        s.hist[bucket] += 1;
      }
    }

    // Chain depth for self-referencing object attributes.
    const Type* t = a.type;
    if (t->IsCollection()) t = t->elem();
    if (t->kind() == TypeKind::kObject && t->class_name() == extent_name &&
        !a.type->IsCollection()) {
      // Single-reference self chain (e.g. Composer.master, Node.parent).
      std::vector<int> depth(n, -1);
      std::function<int(uint32_t)> chase = [&](uint32_t slot) -> int {
        if (depth[slot] >= 0) return depth[slot];
        depth[slot] = 0;  // cycle guard
        const Value& v = e->Record(slot)[field];
        if (v.is_ref()) {
          depth[slot] = 1 + chase(v.AsRef().slot);
        }
        return depth[slot];
      };
      double total = 0;
      int maxd = 0;
      for (uint32_t slot = 0; slot < n; ++slot) {
        if (!e->alive(slot)) continue;
        const int d = chase(slot);
        total += d;
        maxd = std::max(maxd, d);
      }
      s.chain_depth_max = maxd;
      s.chain_depth_avg = live == 0 ? 0 : total / live;
    }

    (*out)[{extent_name, a.name}] = s;
  }
}

}  // namespace

Stats Stats::Derive(const Database& db) {
  RODIN_CHECK(db.finalized(), "stats require a finalized database");
  Stats stats;
  stats.buffer_pages_ = db.buffer_pool().capacity();

  const Schema& schema = db.schema();
  auto sweep = [&](const std::string& name,
                   const std::vector<Attribute>& attrs) {
    const Extent* e = db.FindExtent(name);
    for (uint16_t v = 0; v < e->num_vfrags(); ++v) {
      for (uint16_t h = 0; h < e->num_hfrags(); ++h) {
        EntityStats es;
        es.pages = e->ScanPages(v, h).size();
        es.instances = e->SlotsOfHfrag(h).size();
        stats.entities_[name][v][h] = es;
      }
    }
    DeriveAttrStats(db, name, attrs, &stats.attrs_);
  };

  for (const auto& cls : schema.classes()) {
    sweep(cls->name(), cls->AllAttributes());
  }
  for (const auto& rel : schema.relations()) {
    sweep(rel->name(), rel->AllAttributes());
  }
  return stats;
}

double AttrStats::FractionBelow(double x) const {
  if (!numeric || max_val <= min_val) return 0.5;
  if (x <= min_val) return 0;
  if (x > max_val) return 1;
  if (hist.empty()) {
    return (x - min_val) / (max_val - min_val);  // uniform fallback
  }
  double total = 0;
  for (double b : hist) total += b;
  if (total <= 0) return 0.5;
  const double width = (max_val - min_val) / static_cast<double>(hist.size());
  double below = 0;
  for (size_t i = 0; i < hist.size(); ++i) {
    const double lo = min_val + static_cast<double>(i) * width;
    const double hi = lo + width;
    if (x >= hi) {
      below += hist[i];
    } else if (x > lo) {
      below += hist[i] * (x - lo) / width;  // partial bucket, uniform inside
      break;
    } else {
      break;
    }
  }
  return below / total;
}

const EntityStats& Stats::Entity(const EntityRef& ref) const {
  auto it = entities_.find(ref.extent);
  if (it == entities_.end()) return default_entity_;
  auto vit = it->second.find(ref.vfrag);
  if (vit == it->second.end()) return default_entity_;
  auto hit = vit->second.find(ref.hfrag);
  if (hit == vit->second.end()) return default_entity_;
  return hit->second;
}

const AttrStats& Stats::Attr(const std::string& extent,
                             const std::string& attr) const {
  auto it = attrs_.find({extent, attr});
  return it == attrs_.end() ? default_attr_ : it->second;
}

double Stats::TuplesPerPage(const std::string& extent) const {
  auto it = entities_.find(extent);
  if (it == entities_.end()) return 1;
  const EntityStats& es = it->second.begin()->second.begin()->second;
  if (es.pages == 0) return 1;
  return std::max(1.0, static_cast<double>(es.instances) / es.pages);
}

}  // namespace rodin
