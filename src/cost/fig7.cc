#include "cost/fig7.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

namespace {

// Size symbols of a node's output: |X| (pages) and ||X|| (tuples).
struct NodeSyms {
  SymPtr pages;
  SymPtr tuples;
  std::string name;  // "Cpr", "T3", "Inf_i", ...
};

double EstPages(const PTNode& n) {
  if (n.est_pages >= 0) return std::max(1.0, n.est_pages);
  return 1;
}

double EstRows(const PTNode& n) { return std::max(0.0, n.est_rows); }

class Walker {
 public:
  Walker(const Database& db,
         const std::map<std::string, std::string>& extent_symbols,
         int* t_counter, SymbolicCostTable* out)
      : db_(db),
        extent_symbols_(extent_symbols),
        t_counter_(t_counter),
        out_(out) {}

  // Walks `n`; returns (cost expression, output size symbols). When
  // `emit` is set, operator nodes get a printed row; rows produced inside a
  // fixpoint are marked as parts of the fixpoint equation and excluded from
  // the total (the Fix row covers them, like the paper's T14).
  std::pair<SymPtr, NodeSyms> Walk(const PTNode& n, bool emit,
                                   bool inside_fix) {
    switch (n.kind) {
      case PTKind::kEntity: {
        const NodeSyms syms = ExtentSyms(n.entity.extent);
        // A bare scan's access cost is charged by the consuming operator
        // (paper style); leaves contribute no row.
        return {SymExpr::Num(0), syms};
      }
      case PTKind::kDelta: {
        NodeSyms syms = delta_syms_;
        return {SymExpr::Num(0), syms};
      }
      case PTKind::kProj: {
        // Projections are free in the paper's model; pass through.
        auto [cost, syms] = Walk(*n.children[0], emit, inside_fix);
        Bind(syms, n);  // refresh numeric size with this node's estimates
        return {cost, syms};
      }
      case PTKind::kSel: {
        auto [child_cost, in] = Walk(*n.children[0], emit, inside_fix);
        // access_cost(C, pred) + nbpages * eval = |C|*pr + |C|*ev.
        SymPtr cost = in.pages * (Sym("pr") + Sym("ev"));
        return Emit(n, "Sel", child_cost, cost, emit, inside_fix);
      }
      case PTKind::kIJ: {
        auto [child_cost, in] = Walk(*n.children[0], emit, inside_fix);
        // access_cost(Ci) + ||Ci|| * access_cost(Ci, Cj) = |X|*pr + ||X||*pr.
        SymPtr cost = in.pages * Sym("pr") + in.tuples * Sym("pr");
        return Emit(n, StrFormat("IJ_%s", n.attr.c_str()), child_cost, cost,
                    emit, inside_fix);
      }
      case PTKind::kPIJ: {
        auto [child_cost, in] = Walk(*n.children[0], emit, inside_fix);
        const NodeSyms root = ExtentSyms(n.path_index->root_class());
        // ||C|| * (nblevels + nbleaves / ||C1||).
        SymPtr per = Sym("lev") + Sym("lea") * Inverse(root.tuples);
        SymPtr cost = in.tuples * per;
        return Emit(n, StrFormat("PIJ_%s", Join(n.path, ".").c_str()),
                    child_cost, cost, emit, inside_fix);
      }
      case PTKind::kEJ: {
        auto [lcost, lsyms] = Walk(*n.children[0], emit, inside_fix);
        auto [rcost, rsyms] = Walk(*n.children[1], emit, inside_fix);
        // Nested loop (Figure 5 footnote a):
        // access(outer) + ||outer|| * (access(inner) + nbpages(inner)*eval).
        SymPtr cost = lsyms.pages * Sym("pr") +
                      lsyms.tuples * rsyms.pages * (Sym("pr") + Sym("ev"));
        return Emit(n, "EJ", lcost + rcost, cost, emit, inside_fix);
      }
      case PTKind::kUnion: {
        SymPtr cost = SymExpr::Num(0);
        for (const auto& c : n.children) {
          auto [ccost, csyms] = Walk(*c, emit, inside_fix);
          cost = cost + ccost;
        }
        NodeSyms syms = FreshT(n);
        return {cost, syms};
      }
      case PTKind::kFix: {
        // Base rows are regular rows; the first iteration of the recursive
        // arm is expanded with the base result as the delta; subsequent
        // iterations use the Inf_i symbols.
        auto [base_cost, base_syms] = Walk(*n.children[0], emit, inside_fix);

        const int fix_idx = ++fix_counter_;
        const std::string n_sym = StrFormat("n%d", fix_idx);
        const double iters = n.est_iters > 0 ? n.est_iters : 10;
        out_->env[n_sym] = iters;

        // First iteration (rows marked as parts of Exp).
        delta_syms_ = base_syms;
        auto [first_cost, first_syms] =
            Walk(*n.children[1], emit, /*inside_fix=*/true);

        // Subsequent iterations with |Inf_i| / ||Inf_i|| (no rows).
        NodeSyms inf;
        inf.name = "Inf_i";
        inf.pages = Sym("|Inf_i|");
        inf.tuples = Sym("||Inf_i||");
        const double avg_delta =
            EstRows(n) / std::max(1.0, iters);  // closure / iterations
        out_->env["||Inf_i||"] = avg_delta;
        out_->env["|Inf_i|"] = std::max(
            1.0, std::ceil(avg_delta * 16 * n.cols.size() / kPageSizeBytes));
        delta_syms_ = inf;
        auto [sub_cost, sub_syms] =
            Walk(*n.children[1], /*emit=*/false, /*inside_fix=*/true);
        (void)sub_syms;

        SymPtr fix_cost =
            base_cost + first_cost +
            (Sym(n_sym) + SymExpr::Num(-1)) * sub_cost;
        NodeSyms syms = FreshT(n);
        if (emit) {
          SymbolicRow row;
          row.label = syms.name;
          row.what = StrFormat(
              "Fix(%s): cost(Exp(%s)) + (%s - 1) * cost(Exp(Inf_i))",
              n.fix_name.c_str(), first_syms.name.c_str(), n_sym.c_str());
          row.cost = fix_cost;
          out_->rows.push_back(row);
          if (!inside_fix) total_terms_.push_back(fix_cost);
        }
        return {fix_cost, syms};
      }
    }
    return {SymExpr::Num(0), NodeSyms{}};
  }

  SymPtr Total() const {
    if (total_terms_.empty()) return SymExpr::Num(0);
    return SymExpr::Add(total_terms_);
  }

 private:
  static SymPtr Sym(const std::string& s) { return SymExpr::Sym(s); }

  // lea / ||C|| is rendered as lea * (1/||C||): we bind the inverse symbol.
  SymPtr Inverse(const SymPtr& tuples) {
    const std::string name = "1/" + tuples->ToString();
    const double v = out_->env.count(tuples->ToString()) > 0
                         ? out_->env[tuples->ToString()]
                         : 1;
    out_->env[name] = v == 0 ? 0 : 1.0 / v;
    return Sym(name);
  }

  NodeSyms ExtentSyms(const std::string& extent) {
    auto it = extent_symbols_.find(extent);
    const std::string short_name = it == extent_symbols_.end() ? extent
                                                               : it->second;
    NodeSyms syms;
    syms.name = short_name;
    syms.pages = Sym("|" + short_name + "|");
    syms.tuples = Sym("||" + short_name + "||");
    const Extent* e = db_.FindExtent(extent);
    if (e != nullptr && e->finalized()) {
      out_->env["|" + short_name + "|"] =
          static_cast<double>(e->ScanPages(0, 0).size());
      out_->env["||" + short_name + "||"] = static_cast<double>(e->size());
    }
    return syms;
  }

  NodeSyms FreshT(const PTNode& n) {
    NodeSyms syms;
    syms.name = StrFormat("T%d", ++*t_counter_);
    syms.pages = Sym("|" + syms.name + "|");
    syms.tuples = Sym("||" + syms.name + "||");
    Bind(syms, n);
    return syms;
  }

  void Bind(const NodeSyms& syms, const PTNode& n) {
    if (syms.name.empty() || syms.name[0] != 'T') return;
    out_->env["|" + syms.name + "|"] = EstPages(n);
    out_->env["||" + syms.name + "||"] = EstRows(n);
  }

  std::pair<SymPtr, NodeSyms> Emit(const PTNode& n, const std::string& what,
                                   const SymPtr& child_cost, const SymPtr& cost,
                                   bool emit, bool inside_fix) {
    NodeSyms syms = FreshT(n);
    if (emit) {
      SymbolicRow row;
      row.label = syms.name;
      row.what = inside_fix ? what + "  [part of Exp]" : what;
      row.cost = cost;
      out_->rows.push_back(row);
      if (!inside_fix) total_terms_.push_back(cost);
    }
    return {child_cost + cost, syms};
  }

  const Database& db_;
  const std::map<std::string, std::string>& extent_symbols_;
  int* t_counter_;
  SymbolicCostTable* out_;
  NodeSyms delta_syms_;
  int fix_counter_ = 0;
  std::vector<SymPtr> total_terms_;
};

}  // namespace

std::string SymbolicCostTable::ToString() const {
  std::string out;
  for (const SymbolicRow& row : rows) {
    out += StrFormat("  %-4s | %-38s | %s\n", row.label.c_str(),
                     row.what.c_str(), row.cost->ToString().c_str());
  }
  out += StrFormat("  total = %.1f (with pr=%g ev=%g lev=%g lea=%g)\n",
                   total->Eval(env), env.count("pr") ? env.at("pr") : 0,
                   env.count("ev") ? env.at("ev") : 0,
                   env.count("lev") ? env.at("lev") : 0,
                   env.count("lea") ? env.at("lea") : 0);
  return out;
}

SymbolicCostTable DeriveSymbolicCosts(
    const PTNode& plan, const Database& db,
    const std::map<std::string, std::string>& extent_symbols, int* t_counter) {
  SymbolicCostTable out;
  // Default unit costs (the paper's constants; override env before Eval to
  // explore other regimes).
  out.env["pr"] = 1.0;
  out.env["ev"] = 0.2;
  // Path-index shape constants from the first path index, if any.
  out.env["lev"] = 1.0;
  out.env["lea"] = 1.0;
  if (!db.path_indexes().empty()) {
    out.env["lev"] = static_cast<double>(db.path_indexes()[0]->nblevels());
    out.env["lea"] = static_cast<double>(db.path_indexes()[0]->nbleaves());
  }
  Walker walker(db, extent_symbols, t_counter, &out);
  walker.Walk(plan, /*emit=*/true, /*inside_fix=*/false);
  out.total = walker.Total();
  return out;
}

}  // namespace rodin
