#ifndef RODIN_COST_SYMBOLIC_H_
#define RODIN_COST_SYMBOLIC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rodin {

class SymExpr;
using SymPtr = std::shared_ptr<const SymExpr>;

/// Tiny symbolic-expression algebra used to reproduce Figure 7 of the paper
/// verbatim: cost formulas over named quantities like |Cpr|, ||Cpr||, pr,
/// ev, lev, lea, n1, n2 that can be printed in the paper's notation and
/// evaluated under a parameter binding.
class SymExpr {
 public:
  enum class Kind { kNum, kSym, kAdd, kMul };

  static SymPtr Num(double v);
  static SymPtr Sym(std::string name);
  static SymPtr Add(std::vector<SymPtr> terms);
  static SymPtr Mul(std::vector<SymPtr> factors);

  Kind kind() const { return kind_; }
  double value() const { return value_; }
  const std::string& name() const { return name_; }
  const std::vector<SymPtr>& children() const { return children_; }

  double Eval(const std::map<std::string, double>& env) const;

  /// Paper-style rendering: products with '*', sums with ' + ',
  /// parenthesized sums inside products.
  std::string ToString() const;

 private:
  SymExpr() = default;
  Kind kind_ = Kind::kNum;
  double value_ = 0;
  std::string name_;
  std::vector<SymPtr> children_;
};

/// Convenience operators (shared_ptr-based, flattening nested sums/products).
SymPtr operator+(SymPtr a, SymPtr b);
SymPtr operator*(SymPtr a, SymPtr b);

}  // namespace rodin

#endif  // RODIN_COST_SYMBOLIC_H_
