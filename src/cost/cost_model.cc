#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rodin {

namespace {

// Estimated pages of a materialized intermediate of `rows` rows with
// `ncols` columns (16 bytes per column).
double TempPages(double rows, size_t ncols) {
  const double row_bytes = 16.0 * std::max<size_t>(1, ncols);
  return std::ceil(std::max(0.0, rows) * row_bytes / kPageSizeBytes);
}

// Spill penalty for a materialized working set: over the configured memory
// budget, every page is written out and read back by the spill machinery
// (spill_rw * pr per page). Zero without a budget, so estimates are
// unchanged for unbudgeted queries.
double SpillPenalty(const CostParams& p, double temp_pages) {
  if (p.memory_budget_pages == 0 ||
      temp_pages <= static_cast<double>(p.memory_budget_pages)) {
    return 0;
  }
  return temp_pages * p.spill_rw * p.pr;
}

}  // namespace

CostModel::CostModel(const Database* db, const Stats* stats, CostParams params,
                     const FeedbackCorrections* feedback)
    : db_(db), stats_(stats), params_(params), feedback_(feedback) {
  RODIN_CHECK(db != nullptr && stats != nullptr, "null cost model inputs");
  if (feedback_ != nullptr && feedback_->empty()) feedback_ = nullptr;
}

double CostModel::RandomFetchIO(double fetches, double pages) const {
  if (fetches <= 0 || pages <= 0) return 0;
  const double buffer = static_cast<double>(stats_->buffer_pages());
  if (pages <= buffer) {
    // Extent fits: each page faults at most once.
    return std::min(fetches, pages);
  }
  // Steady-state LRU hit ratio ~ buffer/pages for random probes.
  const double miss = (pages - buffer) / pages;
  return fetches * miss;
}

double CostModel::RescanIO(double scans, double pages) const {
  if (scans <= 0 || pages <= 0) return 0;
  const double buffer = static_cast<double>(stats_->buffer_pages());
  if (pages <= buffer) return pages;  // later scans are buffer hits
  return scans * pages;               // sequential flooding: all misses
}

CostModel::PathEval CostModel::EvalPath(
    const ClassDef* start, const std::vector<std::string>& path) const {
  PathEval out;
  if (start == nullptr) return out;
  const Schema& schema = db_->schema();
  const ClassDef* cur = start;
  out.valid = true;
  out.terminal_cls = cur;
  out.terminal_extent = cur->name();
  for (size_t i = 0; i < path.size(); ++i) {
    const Attribute* a = cur->FindAttribute(path[i]);
    if (a == nullptr) {
      out.valid = false;
      return out;
    }
    if (a->computed) {
      // Method call: CPU only, must be terminal.
      out.cpu_per_row += out.fanout * a->method_cost * params_.method_weight;
      out.terminal_cls = nullptr;
      out.terminal_extent = cur->name();
      out.terminal_attr = a->name;
      out.valid = (i + 1 == path.size());
      return out;
    }
    const Type* t = a->type;
    double step_fanout = 1;
    if (t->IsCollection()) {
      t = t->elem();
      step_fanout = stats_->Attr(cur->name(), a->name).fanout;
    }
    if (t->kind() == TypeKind::kObject) {
      const AttrStats& as = stats_->Attr(cur->name(), a->name);
      const ClassDef* next = schema.FindClass(t->class_name());
      if (next == nullptr) {
        out.valid = false;
        return out;
      }
      const EntityRef target_ref{next->name(), 0, 0};
      // Dereference: one random fetch per reached object, discounted by
      // clustering co-location; the buffer discount is applied when the
      // total fetch count is known (PathIOCost).
      PathEval::Deref deref;
      deref.per_row = out.fanout * step_fanout * (1.0 - as.null_frac);
      deref.target_pages = static_cast<double>(stats_->Entity(target_ref).pages);
      deref.uncluster = 1.0 - as.colocated_frac;
      deref.seq = as.seq_frac;
      out.derefs.push_back(deref);
      out.fanout *= step_fanout * (1.0 - as.null_frac);
      cur = next;
      out.terminal_cls = cur;
      out.terminal_extent = cur->name();
      continue;
    }
    // Atomic endpoint: free (carried with the already-fetched record), but
    // it must be the last step.
    out.valid = (i + 1 == path.size());
    out.terminal_cls = nullptr;
    out.terminal_extent = cur->name();
    out.terminal_attr = a->name;
    return out;
  }
  return out;
}

const AttrStats* CostModel::TerminalAttrStats(
    const PTNode& input, const std::string& var,
    const std::vector<std::string>& path, const ClassDef** terminal_cls) const {
  int col = -1;
  std::vector<std::string> rest;
  if (!input.ResolveVarPath(var, path, &col, &rest)) return nullptr;
  const ClassDef* cls = input.cols[col].cls;
  if (rest.empty()) {
    if (terminal_cls != nullptr) *terminal_cls = cls;
    return nullptr;  // column itself; no attribute stats
  }
  if (cls == nullptr) return nullptr;  // atomic column with residual path
  const PathEval pe = EvalPath(cls, rest);
  if (!pe.valid) return nullptr;
  if (terminal_cls != nullptr) *terminal_cls = pe.terminal_cls;
  if (pe.terminal_attr.empty()) return nullptr;  // ends on an object
  return &stats_->Attr(pe.terminal_extent, pe.terminal_attr);
}

double CostModel::CompareSelectivity(const PTNode& input,
                                     const Expr& cmp) const {
  const ExprPtr& lhs = cmp.children()[0];
  const ExprPtr& rhs = cmp.children()[1];

  const bool l_path = lhs->kind() == ExprKind::kVarPath;
  const bool r_path = rhs->kind() == ExprKind::kVarPath;
  const bool l_lit = lhs->kind() == ExprKind::kLiteral;
  const bool r_lit = rhs->kind() == ExprKind::kLiteral;

  // path <op> literal (either order).
  if ((l_path && r_lit) || (r_path && l_lit)) {
    const ExprPtr& p = l_path ? lhs : rhs;
    const ExprPtr& lit = l_path ? rhs : lhs;
    const ClassDef* terminal = nullptr;
    const AttrStats* as =
        TerminalAttrStats(input, p->var(), p->path(), &terminal);
    switch (cmp.compare_op()) {
      case CompareOp::kEq:
        if (as != nullptr) return 1.0 / std::max(1.0, as->distinct);
        return 0.05;
      case CompareOp::kNe:
        if (as != nullptr) return 1.0 - 1.0 / std::max(1.0, as->distinct);
        return 0.95;
      default: {
        // Range predicate: histogram-based fraction when numeric stats
        // exist (uniform interpolation is the in-histogram fallback).
        if (as != nullptr && as->numeric && !lit->literal().is_null() &&
            (lit->literal().is_int() || lit->literal().is_real()) &&
            as->max_val > as->min_val) {
          const double x = lit->literal().AsNumber();
          const double frac = std::clamp(as->FractionBelow(x), 0.0, 1.0);
          const bool lt_like = (l_path && (cmp.compare_op() == CompareOp::kLt ||
                                           cmp.compare_op() == CompareOp::kLe)) ||
                               (r_path && (cmp.compare_op() == CompareOp::kGt ||
                                           cmp.compare_op() == CompareOp::kGe));
          return std::clamp(lt_like ? frac : 1.0 - frac, 0.001, 1.0);
        }
        return 0.33;
      }
    }
  }

  // path <op> path: a join-style predicate.
  if (l_path && r_path) {
    const ClassDef* lcls = nullptr;
    const ClassDef* rcls = nullptr;
    const AttrStats* las =
        TerminalAttrStats(input, lhs->var(), lhs->path(), &lcls);
    const AttrStats* ras =
        TerminalAttrStats(input, rhs->var(), rhs->path(), &rcls);
    if (cmp.compare_op() == CompareOp::kEq) {
      // Object identity join: 1 / ||class||.
      if (lcls != nullptr && rcls != nullptr) {
        const EntityRef ref{lcls->name(), 0, 0};
        const double n = static_cast<double>(stats_->Entity(ref).instances);
        return 1.0 / std::max(1.0, n);
      }
      double d = 1;
      if (las != nullptr) d = std::max(d, las->distinct);
      if (ras != nullptr) d = std::max(d, ras->distinct);
      return 1.0 / std::max(1.0, d);
    }
    return 0.33;
  }

  return 0.33;
}

double CostModel::Selectivity(const PTNode& input, const ExprPtr& pred) const {
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case ExprKind::kAnd: {
      double s = 1;
      for (const ExprPtr& c : pred->children()) s *= Selectivity(input, c);
      return s;
    }
    case ExprKind::kOr: {
      double s = 1;
      for (const ExprPtr& c : pred->children()) {
        s *= 1.0 - Selectivity(input, c);
      }
      return 1.0 - s;
    }
    case ExprKind::kNot:
      return 1.0 - Selectivity(input, pred->children()[0]);
    case ExprKind::kCompare:
      return CompareSelectivity(input, *pred);
    default:
      return 1.0;
  }
}

double CostModel::PathIOCost(const PathEval& path, double rows) const {
  double cost = 0;
  for (const PathEval::Deref& d : path.derefs) {
    const double fetches = rows * d.per_row * d.uncluster;
    // Creation-order correlation makes a fraction of the fetches behave
    // like a sequential scan of the target: each touched page faults once.
    const double seq_io = std::min(fetches * d.seq, d.target_pages);
    const double rand_io = RandomFetchIO(fetches * (1.0 - d.seq), d.target_pages);
    cost += (seq_io + rand_io) * params_.pr;
  }
  return cost;
}

double CostModel::ExprEvalCost(const PTNode& input, const ExprPtr& e,
                               double rows) const {
  if (e == nullptr) return 0;
  double cost = 0;
  if (e->kind() == ExprKind::kVarPath) {
    int col = -1;
    std::vector<std::string> rest;
    if (input.ResolveVarPath(e->var(), e->path(), &col, &rest) &&
        !rest.empty() && input.cols[col].cls != nullptr) {
      const PathEval pe = EvalPath(input.cols[col].cls, rest);
      if (pe.valid) {
        // Single-step atomic access is free (record is at hand); deeper
        // paths and method calls pay.
        cost += PathIOCost(pe, rows) + pe.cpu_per_row * rows;
      }
    }
  }
  for (const ExprPtr& c : e->children()) {
    cost += ExprEvalCost(input, c, rows);
  }
  return cost;
}

double CostModel::CostEntity(PTNode* node) const {
  const EntityStats& es = stats_->Entity(node->entity);
  node->est_rows = static_cast<double>(es.instances) * FeedbackFactor(*node);
  node->est_pages = static_cast<double>(es.pages);
  // Cost of one sequential scan; re-scans are priced by consumers (EJ).
  node->est_cost = static_cast<double>(es.pages) * params_.pr;
  return node->est_cost;
}

double CostModel::CostDelta(PTNode* node) const {
  // est_rows is preset by the enclosing Fix costing; default conservative.
  if (node->est_rows < 0) node->est_rows = 1;
  node->est_pages = TempPages(node->est_rows, node->cols.size());
  node->est_cost = node->est_pages * params_.pr;
  return node->est_cost;
}

double CostModel::CostSel(PTNode* node, FixMemo* memo) const {
  PTNode* child = node->children[0].get();
  // Measured-cardinality correction: scale the estimated selectivity by the
  // scope's learned factor (a selectivity can never exceed 1).
  const double sel =
      std::min(1.0, Selectivity(*child, node->pred) * FeedbackFactor(*node));

  if (node->sel_access != SelAccess::kSeqScan) {
    // Index access replaces the child's scan entirely (child must be an
    // entity leaf; enforced by the plan builder).
    RODIN_CHECK(child->kind == PTKind::kEntity, "index access needs entity");
    RODIN_CHECK(node->sel_index != nullptr, "index access without index");
    AnnotateRec(child, memo);  // annotate for printing, but do not charge its scan
    const double idx_sel = Selectivity(*child, node->sel_index_pred);
    const double matches = child->est_rows * idx_sel;
    const double leaves =
        std::max(1.0, idx_sel * static_cast<double>(node->sel_index->nbleaves()));
    double cost = (static_cast<double>(node->sel_index->nblevels()) + leaves) *
                  params_.pr;
    // Fetch the matching records: random I/O into the extent.
    cost += RandomFetchIO(matches, child->est_pages) * params_.pr;
    // Residual conjuncts evaluated on the matches.
    cost += matches * params_.ev_tuple +
            ExprEvalCost(*child, node->pred, matches);
    node->est_rows = child->est_rows * sel;
    node->est_pages = std::min(child->est_pages, std::max(1.0, node->est_rows));
    node->est_cost = cost;
    return cost;
  }

  const double child_cost = AnnotateRec(child, memo);
  double cost = child_cost;
  cost += child->est_rows * params_.ev_tuple +
          ExprEvalCost(*child, node->pred, child->est_rows);
  node->est_rows = child->est_rows * sel;
  node->est_pages = std::max(1.0, child->est_pages * sel);
  node->est_cost = cost;
  return cost;
}

double CostModel::CostProj(PTNode* node, FixMemo* memo) const {
  PTNode* child = node->children[0].get();
  const double child_cost = AnnotateRec(child, memo);
  double expr_cost = 0;
  for (const OutCol& c : node->proj) {
    expr_cost += ExprEvalCost(*child, c.expr, child->est_rows);
  }
  double cost = child_cost + expr_cost +
                child->est_rows * params_.ev_tuple * 0.1;
  if (node->dedup) {
    cost += child->est_rows * params_.ev_tuple;  // hash/dedup CPU
  }
  // Statically, dedup passes cardinality through (the statistics carry no
  // duplicate-survival figure); the feedback loop learns the survival rate
  // per output signature and corrects it here.
  node->est_rows = child->est_rows *
                   (node->dedup ? FeedbackFactor(*node) : 1.0);
  node->est_pages = TempPages(node->est_rows, node->cols.size());
  node->est_cost = cost;
  return cost;
}

double CostModel::CostEJ(PTNode* node, FixMemo* memo) const {
  PTNode* left = node->children[0].get();
  PTNode* right = node->children[1].get();
  const double left_cost = AnnotateRec(left, memo);
  const double join_sel =
      std::min(1.0, Selectivity(*node, node->pred) * FeedbackFactor(*node));

  double cost = left_cost;
  if (node->algo == JoinAlgo::kIndexJoin) {
    RODIN_CHECK(right->kind == PTKind::kEntity, "index join needs entity inner");
    RODIN_CHECK(node->join_index != nullptr, "index join without index");
    AnnotateRec(right, memo);  // no scan charge
    const double matches_per_probe =
        right->est_rows /
        std::max(1.0, static_cast<double>(node->join_index->num_distinct_keys()));
    const double idx_pages =
        static_cast<double>(node->join_index->nblevels()) +
        std::max(1.0, matches_per_probe /
                          std::max(1.0, right->est_rows /
                                            std::max<double>(
                                                1.0, node->join_index->nbleaves())));
    const double probes = left->est_rows;
    // Index pages are hot across probes; the record fetches are random.
    cost += RandomFetchIO(probes * idx_pages,
                          static_cast<double>(node->join_index->nbleaves()) +
                              node->join_index->nblevels()) *
            params_.pr;
    cost += RandomFetchIO(probes * matches_per_probe, right->est_pages) *
            params_.pr;
    cost += probes * matches_per_probe * params_.ev_tuple;
    node->est_rows = left->est_rows * right->est_rows * join_sel;
  } else {
    // Nested loop: inner evaluated once per outer row. Entity inners re-scan
    // with buffer discount; non-leaf inners are materialized once and the
    // temp is re-scanned.
    const double right_cost = AnnotateRec(right, memo);
    const double outer_rows = std::max(1.0, left->est_rows);
    if (right->kind == PTKind::kEntity || right->kind == PTKind::kDelta) {
      cost += RescanIO(outer_rows, right->est_pages) * params_.pr;
    } else {
      const double temp_pages = TempPages(right->est_rows, right->cols.size());
      cost += right_cost;  // produce once
      if (params_.include_materialization) cost += temp_pages * params_.pr;
      cost += RescanIO(outer_rows, temp_pages) * params_.pr;
      // Over-budget join builds spill their payload to disk.
      cost += SpillPenalty(params_, temp_pages);
    }
    const double pairs = left->est_rows * right->est_rows;
    cost += pairs * params_.ev_tuple + ExprEvalCost(*node, node->pred, pairs);
    node->est_rows = left->est_rows * right->est_rows * join_sel;
  }
  node->est_pages = TempPages(node->est_rows, node->cols.size());
  node->est_cost = cost;
  return cost;
}

double CostModel::CostIJ(PTNode* node, FixMemo* memo) const {
  PTNode* child = node->children[0].get();
  const double child_cost = AnnotateRec(child, memo);
  int col = -1;
  std::vector<std::string> rest;
  RODIN_CHECK(child->ResolveVarPath(node->src_var, {node->attr}, &col, &rest),
              "IJ source unresolvable");
  const ClassDef* src_cls = child->cols[col].cls;
  double cost = child_cost;
  double fanout = FeedbackFactor(*node);  // correction scales the fan-out
  if (src_cls != nullptr && !rest.empty()) {
    // The dereference profile covers Figure 5's access_cost(Ci, Cj): one
    // (clustering- and locality-discounted) fetch per reached object.
    const PathEval pe = EvalPath(src_cls, {node->attr});
    cost += PathIOCost(pe, child->est_rows) + pe.cpu_per_row * child->est_rows;
    fanout *= pe.fanout;
  } else {
    // The column already materializes var.attr (dotted column): the IJ only
    // binds it, fetching the target object's page per row.
    const EntityRef target_ref{node->target->name(), 0, 0};
    const double pages = static_cast<double>(stats_->Entity(target_ref).pages);
    cost += RandomFetchIO(child->est_rows, pages) * params_.pr;
  }
  node->est_rows = std::max(0.0, child->est_rows * fanout);
  node->est_pages = TempPages(node->est_rows, node->cols.size());
  node->est_cost = cost;
  return cost;
}

double CostModel::CostPIJ(PTNode* node, FixMemo* memo) const {
  PTNode* child = node->children[0].get();
  const double child_cost = AnnotateRec(child, memo);
  const PathIndex* idx = node->path_index;
  const EntityRef root_ref{idx->root_class(), 0, 0};
  const double root_instances =
      std::max(1.0, static_cast<double>(stats_->Entity(root_ref).instances));
  // Figure 5: ||C|| * (nblevels + nbleaves / ||C1||).
  const double per_probe =
      static_cast<double>(idx->nblevels()) +
      static_cast<double>(idx->nbleaves()) / root_instances;
  const double idx_total_pages =
      static_cast<double>(idx->nblevels() + idx->nbleaves());
  // Probes arrive roughly in key (oid) order after scans, so the total leaf
  // I/O is bounded by one pass over the index.
  const double probe_io = std::min(
      RandomFetchIO(child->est_rows * per_probe, idx_total_pages),
      idx_total_pages);
  double cost = child_cost + probe_io * params_.pr;
  const double fanout = static_cast<double>(idx->num_entries()) /
                        root_instances * FeedbackFactor(*node);
  node->est_rows = child->est_rows * fanout;
  node->est_pages = TempPages(node->est_rows, node->cols.size());
  node->est_cost = cost;
  return cost;
}

double CostModel::CostUnion(PTNode* node, FixMemo* memo) const {
  double cost = 0;
  double rows = 0;
  for (auto& c : node->children) {
    cost += AnnotateRec(c.get(), memo);
    rows += c->est_rows;
  }
  cost += rows * params_.ev_tuple;  // dedup CPU
  node->est_rows = rows;
  node->est_pages = TempPages(rows, node->cols.size());
  node->est_cost = cost;
  return cost;
}

namespace {

void SetDeltaRows(PTNode* node, const std::string& fix_name, double rows) {
  if (node->kind == PTKind::kDelta && node->fix_name == fix_name) {
    node->est_rows = rows;
  }
  for (auto& c : node->children) SetDeltaRows(c.get(), fix_name, rows);
}

}  // namespace

namespace {

// True when `tree` contains a delta leaf of a fixpoint other than `own`
// (such subtrees depend on the enclosing fixpoint's state: not memoizable).
bool HasForeignDeltaCost(const PTNode& tree, const std::string& own) {
  if (tree.kind == PTKind::kDelta && tree.fix_name != own) return true;
  for (const auto& c : tree.children) {
    if (HasForeignDeltaCost(*c, own)) return true;
  }
  return false;
}

}  // namespace

double CostModel::CostFix(PTNode* node, FixMemo* memo) const {
  // Shared-view memo: a second occurrence of the same fixpoint plan within
  // one Annotate() call costs one scan of its materialization.
  const bool cacheable = !HasForeignDeltaCost(*node, node->fix_name);
  std::string key;
  if (cacheable) {
    key = node->Fingerprint();
    auto it = memo->find(key);
    if (it != memo->end()) {
      node->est_rows = it->second.second;
      node->est_pages = TempPages(node->est_rows, node->cols.size());
      node->est_cost = it->second.first;
      // Children keep whatever estimates a prior annotation left; annotate
      // them for printability without charging.
      for (auto& c : node->children) AnnotateRec(c.get(), memo);
      node->est_cost = it->second.first;
      return node->est_cost;
    }
  }
  PTNode* base = node->children[0].get();
  PTNode* rec = node->children[1].get();
  const double base_cost = AnnotateRec(base, memo);

  const double iters =
      node->est_iters > 0 ? node->est_iters : kDefaultFixIterations;
  // Chain-shaped recursions accumulate ~base * (iters+1)/2 tuples total;
  // the average delta per iteration is closure/iters. The feedback factor
  // corrects the closure size against what runs actually produced.
  const double closure_rows =
      base->est_rows * (iters + 1.0) / 2.0 * FeedbackFactor(*node);
  // Naive evaluation feeds the whole accumulated result back each round
  // (~3/4 of the closure on average) instead of the semi-naive delta.
  const double avg_delta = node->naive_fix
                               ? closure_rows * 0.75
                               : closure_rows / std::max(1.0, iters);

  SetDeltaRows(rec, node->fix_name, avg_delta);
  const double rec_cost_per_iter = AnnotateRec(rec, memo);

  // Figure 5: Fix(T, P) = sum over iterations of cost(Exp(T_i)).
  double cost = base_cost + iters * rec_cost_per_iter;
  // Accumulator dedup (semi-naive new-tuple check) per produced tuple.
  cost += (base->est_rows + iters * std::max(0.0, rec->est_rows)) *
          params_.ev_tuple;
  // Over-budget per-iteration deltas spill their payload to disk.
  cost += iters *
          SpillPenalty(params_, TempPages(avg_delta, node->cols.size()));
  if (params_.include_materialization) {
    cost += TempPages(closure_rows, node->cols.size()) * params_.pr;
  }
  node->est_iters = iters;
  node->est_rows = closure_rows;
  node->est_pages = TempPages(closure_rows, node->cols.size());
  node->est_cost = cost;
  if (cacheable) {
    (*memo)[key] = {node->est_pages * params_.pr, closure_rows};
  }
  return cost;
}

double CostModel::AnnotateRec(PTNode* node, FixMemo* memo) const {
  const double cost = NodeCostRec(node, memo);
  if (params_.parallel_degree <= 1) return cost;
  // Parallel bracket: children are already adjusted (recursion), so divide
  // only this node's marginal work, and charge the startup overhead.
  // Leaves with no children divide fully.
  double children_cost = 0;
  for (const auto& c : node->children) {
    children_cost += std::max(0.0, c->est_cost);
  }
  const double marginal = std::max(0.0, cost - children_cost);
  double adjusted;
  if (node->kind == PTKind::kFix) {
    // Iterations are sequential barriers: the per-iteration work inside the
    // recursive arm is already parallel-adjusted; the loop itself does not
    // divide, and each iteration pays a synchronization overhead.
    const double iters = std::max(1.0, node->est_iters);
    adjusted = cost + params_.parallel_overhead * params_.parallel_degree *
                          iters;
  } else {
    adjusted = children_cost + marginal / params_.parallel_degree +
               params_.parallel_overhead * params_.parallel_degree;
  }
  node->est_cost = adjusted;
  return adjusted;
}

double CostModel::NodeCostRec(PTNode* node, FixMemo* memo) const {
  switch (node->kind) {
    case PTKind::kEntity:
      return CostEntity(node);
    case PTKind::kDelta:
      return CostDelta(node);
    case PTKind::kSel:
      return CostSel(node, memo);
    case PTKind::kProj:
      return CostProj(node, memo);
    case PTKind::kEJ:
      return CostEJ(node, memo);
    case PTKind::kIJ:
      return CostIJ(node, memo);
    case PTKind::kPIJ:
      return CostPIJ(node, memo);
    case PTKind::kUnion:
      return CostUnion(node, memo);
    case PTKind::kFix:
      return CostFix(node, memo);
  }
  return 0;
}

double CostModel::Annotate(PTNode* node) const {
  RODIN_CHECK(node != nullptr, "null plan");
  FixMemo memo;  // per-call: a const CostModel is shareable across threads
  return AnnotateRec(node, &memo);
}

}  // namespace rodin
