#include "cost/symbolic.h"

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

SymPtr SymExpr::Num(double v) {
  auto e = std::shared_ptr<SymExpr>(new SymExpr());
  e->kind_ = Kind::kNum;
  e->value_ = v;
  return e;
}

SymPtr SymExpr::Sym(std::string name) {
  auto e = std::shared_ptr<SymExpr>(new SymExpr());
  e->kind_ = Kind::kSym;
  e->name_ = std::move(name);
  return e;
}

SymPtr SymExpr::Add(std::vector<SymPtr> terms) {
  RODIN_CHECK(!terms.empty(), "empty symbolic sum");
  // Flatten nested sums and drop zero terms.
  std::vector<SymPtr> flat;
  for (SymPtr& t : terms) {
    RODIN_CHECK(t != nullptr, "null symbolic term");
    if (t->kind() == Kind::kAdd) {
      flat.insert(flat.end(), t->children().begin(), t->children().end());
    } else if (t->kind() == Kind::kNum && t->value() == 0) {
      continue;
    } else {
      flat.push_back(std::move(t));
    }
  }
  if (flat.empty()) return Num(0);
  if (flat.size() == 1) return flat[0];
  auto e = std::shared_ptr<SymExpr>(new SymExpr());
  e->kind_ = Kind::kAdd;
  e->children_ = std::move(flat);
  return e;
}

SymPtr SymExpr::Mul(std::vector<SymPtr> factors) {
  RODIN_CHECK(!factors.empty(), "empty symbolic product");
  std::vector<SymPtr> flat;
  for (SymPtr& f : factors) {
    RODIN_CHECK(f != nullptr, "null symbolic factor");
    if (f->kind() == Kind::kMul) {
      flat.insert(flat.end(), f->children().begin(), f->children().end());
    } else if (f->kind() == Kind::kNum && f->value() == 1) {
      continue;
    } else if (f->kind() == Kind::kNum && f->value() == 0) {
      return Num(0);
    } else {
      flat.push_back(std::move(f));
    }
  }
  if (flat.empty()) return Num(1);
  if (flat.size() == 1) return flat[0];
  auto e = std::shared_ptr<SymExpr>(new SymExpr());
  e->kind_ = Kind::kMul;
  e->children_ = std::move(flat);
  return e;
}

double SymExpr::Eval(const std::map<std::string, double>& env) const {
  switch (kind_) {
    case Kind::kNum:
      return value_;
    case Kind::kSym: {
      auto it = env.find(name_);
      RODIN_CHECK(it != env.end(), "unbound symbol in symbolic cost");
      return it->second;
    }
    case Kind::kAdd: {
      double total = 0;
      for (const SymPtr& c : children_) total += c->Eval(env);
      return total;
    }
    case Kind::kMul: {
      double total = 1;
      for (const SymPtr& c : children_) total *= c->Eval(env);
      return total;
    }
  }
  return 0;
}

std::string SymExpr::ToString() const {
  switch (kind_) {
    case Kind::kNum: {
      if (value_ == static_cast<int64_t>(value_)) {
        return StrFormat("%lld", static_cast<long long>(value_));
      }
      return StrFormat("%g", value_);
    }
    case Kind::kSym:
      return name_;
    case Kind::kAdd: {
      std::vector<std::string> parts;
      for (const SymPtr& c : children_) parts.push_back(c->ToString());
      return Join(parts, " + ");
    }
    case Kind::kMul: {
      std::vector<std::string> parts;
      for (const SymPtr& c : children_) {
        if (c->kind() == Kind::kAdd) {
          parts.push_back("(" + c->ToString() + ")");
        } else {
          parts.push_back(c->ToString());
        }
      }
      return Join(parts, "*");
    }
  }
  return "?";
}

SymPtr operator+(SymPtr a, SymPtr b) {
  return SymExpr::Add({std::move(a), std::move(b)});
}

SymPtr operator*(SymPtr a, SymPtr b) {
  return SymExpr::Mul({std::move(a), std::move(b)});
}

}  // namespace rodin
