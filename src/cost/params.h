#ifndef RODIN_COST_PARAMS_H_
#define RODIN_COST_PARAMS_H_

#include <cstddef>

namespace rodin {

/// Unit costs of the basic operations (paper §3.2). The total cost of a plan
/// is I/O plus CPU: page reads weighted by `pr`, per-tuple predicate
/// evaluations weighted by `ev_tuple`, and method invocations weighted by
/// the attribute's declared method_cost times `method_weight`.
///
/// The paper states eval_cost per *page* (`ev`); the executor naturally
/// counts per-tuple evaluations, so the model here uses a per-tuple weight.
/// The symbolic Figure-7 reproduction (cost/symbolic.h) keeps the paper's
/// per-page form verbatim.
struct CostParams {
  double pr = 1.0;          // one page read
  double ev_tuple = 0.02;   // one predicate evaluation on one tuple
  double method_weight = 0.02;  // scales Attribute::method_cost per call
  /// Whether to charge materialization of intermediate results (the paper's
  /// Figure 5 explicitly omits it; off by default).
  bool include_materialization = false;

  /// Degree of intra-operator parallelism for COST ESTIMATION ONLY (the
  /// paper's conclusion notes the DBS3 cost model "takes parallelism into
  /// consideration"; the executor here stays serial). Bracket model: each
  /// operator's own work divides across `parallel_degree` workers, every
  /// operator pays `parallel_overhead * parallel_degree` startup cost, and
  /// fixpoint iterations remain sequential barriers.
  unsigned parallel_degree = 1;
  double parallel_overhead = 0.5;

  /// Spill costing: when the query's memory budget is known at planning
  /// time (memory_budget_pages > 0), a materialized working set larger
  /// than the budget pays an extra spill_rw * pr per page — the write-out
  /// plus read-back of the spill machinery — steering the optimizer toward
  /// plans whose temps stay resident. A zero budget (the default) adds
  /// nothing, so estimates for unbudgeted queries are unchanged.
  double spill_rw = 2.0;
  size_t memory_budget_pages = 0;
};

}  // namespace rodin

#endif  // RODIN_COST_PARAMS_H_
