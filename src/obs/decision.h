#ifndef RODIN_OBS_DECISION_H_
#define RODIN_OBS_DECISION_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rodin {

/// One transformPT shift (a local move of the randomized strategy): which
/// rule fired, the plan cost before/after, and whether the strategy kept the
/// result. Restart-indexed so parallel searches merge deterministically.
struct MoveDecision {
  std::string rule;
  double before_cost = 0;
  double after_cost = 0;
  bool accepted = false;
  size_t restart = 0;
};

/// One push decision. Individual applications ("push-sel", "push-join",
/// "push-proj") carry the plan cost before/after saturating that action;
/// the final "push-vs-unpushed" event carries the two fully re-optimized
/// alternatives the paper's delayed decision compared.
struct PushDecision {
  std::string kind;
  double before_cost = -1;
  double after_cost = -1;
  double pushed_cost = -1;    // push-vs-unpushed: alternative B
  double unpushed_cost = -1;  // push-vs-unpushed: alternative A
  bool chose_push = false;
  std::string detail;
};

/// The optimizer's structured decision trail for one query: every shift the
/// randomized re-optimization considered and every push-selection/push-join/
/// push-projection decision with the costed alternatives it compared.
struct DecisionLog {
  std::vector<MoveDecision> moves;
  std::vector<PushDecision> pushes;

  size_t moves_accepted() const {
    size_t n = 0;
    for (const MoveDecision& m : moves) n += m.accepted ? 1 : 0;
    return n;
  }

  std::string ToString() const;
};

}  // namespace rodin

#endif  // RODIN_OBS_DECISION_H_
