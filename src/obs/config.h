#ifndef RODIN_OBS_CONFIG_H_
#define RODIN_OBS_CONFIG_H_

/// Compile-time switch for the observability layer. The build defines
/// RODIN_OBS_ENABLED=0 when configured with -DRODIN_OBS=OFF; the default is
/// on. With the layer off the tracer compiles to no-ops (ScopedSpan is an
/// empty type, Tracer records nothing) and metric increments vanish — the
/// guard tests assert this statically.
#ifndef RODIN_OBS_ENABLED
#define RODIN_OBS_ENABLED 1
#endif

namespace rodin::obs {

constexpr bool kObsEnabled = RODIN_OBS_ENABLED != 0;

}  // namespace rodin::obs

#endif  // RODIN_OBS_CONFIG_H_
