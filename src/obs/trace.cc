#include "obs/trace.h"

#include <algorithm>

#include "common/string_util.h"

namespace rodin::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ArgsJson(const TraceEvent& e) {
  if (e.args.empty()) return "{}";
  std::string out = "{";
  for (size_t i = 0; i < e.args.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(e.args[i].first) + "\":\"" +
           JsonEscape(e.args[i].second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

bool Trace::HasSpan(const std::string& name) const {
  for (const TraceEvent& e : events_) {
    if (e.dur_us >= 0 && e.name == name) return true;
  }
  return false;
}

std::string Trace::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    if (e.dur_us >= 0) {
      out += StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":%s}",
          JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(), e.ts_us,
          e.dur_us, ArgsJson(e).c_str());
    } else {
      out += StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
          "\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":%s}",
          JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(), e.ts_us,
          ArgsJson(e).c_str());
    }
  }
  out += "]}";
  return out;
}

std::string Trace::ToTreeString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += std::string(static_cast<size_t>(e.depth) * 2, ' ');
    if (e.dur_us >= 0) {
      out += StrFormat("%s [%s] %.1f us", e.name.c_str(), e.cat.c_str(),
                       e.dur_us);
    } else {
      out += StrFormat("* %s [%s]", e.name.c_str(), e.cat.c_str());
    }
    for (const auto& [k, v] : e.args) {
      out += " " + k + "=" + v;
    }
    out += "\n";
  }
  if (dropped_ > 0) {
    out += StrFormat("(%zu events dropped at the tracer cap)\n", dropped_);
  }
  return out;
}

#if RODIN_OBS_ENABLED

uint64_t Tracer::Begin(const std::string& name, const std::string& cat) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return kMaxEvents;  // sentinel: End/AddArg on it are ignored
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = NowUs();
  e.dur_us = -1;
  e.depth = depth_++;
  events_.push_back(std::move(e));
  const uint64_t id = events_.size() - 1;
  open_.push_back(id);
  return id;
}

void Tracer::End(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= events_.size()) return;  // dropped span
  events_[id].dur_us = NowUs() - events_[id].ts_us;
  if (depth_ > 0) --depth_;
  open_.erase(std::remove(open_.begin(), open_.end(), id), open_.end());
}

void Tracer::AddArg(uint64_t id, const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= events_.size()) return;
  events_[id].args.emplace_back(key, std::move(value));
}

void Tracer::AddArg(uint64_t id, const std::string& key, double value) {
  AddArg(id, key, StrFormat("%.1f", value));
}

void Tracer::Instant(const std::string& name, const std::string& cat,
                     std::vector<std::pair<std::string, std::string>> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = NowUs();
  e.dur_us = -1;
  e.depth = depth_;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::shared_ptr<Trace> Tracer::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = NowUs();
  for (uint64_t id : open_) {
    events_[id].dur_us = now - events_[id].ts_us;
  }
  open_.clear();
  depth_ = 0;
  return std::make_shared<Trace>(std::move(events_), dropped_);
}

#endif  // RODIN_OBS_ENABLED

}  // namespace rodin::obs
