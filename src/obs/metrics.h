#ifndef RODIN_OBS_METRICS_H_
#define RODIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/config.h"

namespace rodin::obs {

/// Shards per counter. Increments land on a per-thread shard (cache-line
/// padded), so the parallel transformPT workers record move/accept/reject
/// counts without contending on one atomic; value() folds the shards.
constexpr size_t kMetricShards = 16;

/// Stable per-thread shard index, assigned round-robin on first use.
size_t ThreadShardIndex();

/// Monotone counter. Add() is wait-free and contention-free across threads;
/// value() is a linear fold over the shards (read path, not hot).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t delta) {
    if constexpr (!kObsEnabled) return;
    shards_[ThreadShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) {
    if constexpr (!kObsEnabled) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0};
};

/// Log2-bucketed histogram: bucket i counts observations in [2^i, 2^(i+1))
/// (bucket 0 also takes everything below 1). Observe() is atomic per field;
/// histograms record per-stage / per-query quantities, not per-tuple ones,
/// so plain atomics suffice.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Observe(double v);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::array<uint64_t, kBuckets> buckets{};
    double mean() const { return count == 0 ? 0 : sum / count; }
  };
  Snapshot snapshot() const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Process-wide registry of named metrics. Get* registers on first use and
/// returns a stable pointer — callers cache it (typically in a function-local
/// static) and pay only the shard increment afterwards.
///
/// Naming convention (see docs/OBSERVABILITY.md):
///   rodin.<subsystem>.<metric>   e.g. rodin.search.moves_tried
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  struct Sample {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    double value = 0;  // counter/gauge value; histogram mean
    uint64_t count = 0;  // histogram observation count
  };
  /// Point-in-time values of every registered metric, sorted by name.
  std::vector<Sample> Samples() const;

  /// Human-readable dump (one metric per line, sorted by name).
  std::string ToString() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // guards registration, not the hot increments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rodin::obs

#endif  // RODIN_OBS_METRICS_H_
