#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace rodin::obs {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

void Histogram::Observe(double v) {
  if constexpr (!kObsEnabled) return;
  const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  // sum: relaxed fetch_add on atomic<double> (C++20).
  sum_.fetch_add(v, std::memory_order_relaxed);
  // min/max via CAS loops; first observation seeds both.
  if (n == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    double cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  size_t bucket = 0;
  if (v >= 1) {
    bucket = std::min<size_t>(
        kBuckets - 1, static_cast<size_t>(std::floor(std::log2(v))));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return slot.get();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& [name, c] : counters_) {
    out.push_back(Sample{name, "counter",
                         static_cast<double>(c->value()), c->value()});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back(Sample{name, "gauge", g->value(), 0});
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out.push_back(Sample{name, "histogram", s.mean(), s.count});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::ToString() const {
  std::string out;
  for (const Sample& s : Samples()) {
    if (s.kind == "histogram") {
      out += StrFormat("%-44s %-9s mean=%.1f n=%llu\n", s.name.c_str(),
                       s.kind.c_str(), s.value,
                       static_cast<unsigned long long>(s.count));
    } else {
      out += StrFormat("%-44s %-9s %.0f\n", s.name.c_str(), s.kind.c_str(),
                       s.value);
    }
  }
  return out;
}

}  // namespace rodin::obs
