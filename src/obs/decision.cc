#include "obs/decision.h"

#include "common/string_util.h"

namespace rodin {

std::string DecisionLog::ToString() const {
  std::string out;
  out += StrFormat("moves: %zu tried, %zu accepted\n", moves.size(),
                   moves_accepted());
  for (const PushDecision& p : pushes) {
    if (p.kind == "push-vs-unpushed") {
      out += StrFormat("%s: pushed=%.1f unpushed=%.1f -> %s%s%s\n",
                       p.kind.c_str(), p.pushed_cost, p.unpushed_cost,
                       p.chose_push ? "pushed" : "unpushed",
                       p.detail.empty() ? "" : " ", p.detail.c_str());
    } else {
      out += StrFormat("%s: cost %.1f -> %.1f%s%s\n", p.kind.c_str(),
                       p.before_cost, p.after_cost,
                       p.detail.empty() ? "" : " ", p.detail.c_str());
    }
  }
  return out;
}

}  // namespace rodin
