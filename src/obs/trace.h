#ifndef RODIN_OBS_TRACE_H_
#define RODIN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.h"

namespace rodin::obs {

/// One recorded event. Duration events (dur_us >= 0) are spans; dur_us < 0
/// marks an instant event. Timestamps are microseconds since the tracer's
/// epoch (its construction), from the monotonic clock.
struct TraceEvent {
  std::string name;
  std::string cat;  // "optimizer" | "exec" | "decision" | ...
  double ts_us = 0;
  double dur_us = -1;
  int depth = 0;  // span-stack depth at Begin time (tree rendering)
  std::vector<std::pair<std::string, std::string>> args;
};

/// An immutable finished trace: what Tracer::Finish() hands out.
class Trace {
 public:
  explicit Trace(std::vector<TraceEvent> events, size_t dropped = 0)
      : events_(std::move(events)), dropped_(dropped) {}

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Events discarded because the tracer hit its event cap.
  size_t dropped() const { return dropped_; }

  bool HasSpan(const std::string& name) const;

  /// Chrome trace_event JSON ("X" complete events + "i" instants): load in
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string ToChromeJson() const;

  /// Human-readable indented tree of the recorded spans.
  std::string ToTreeString() const;

 private:
  std::vector<TraceEvent> events_;
  size_t dropped_ = 0;
};

#if RODIN_OBS_ENABLED

/// Span-based tracer. Begin() returns a span id whose End() fills the
/// duration from the monotonic clock; Instant() records point events.
/// Thread-safe (one mutex — spans bracket stages and operator evaluations,
/// not per-tuple work, so the lock is off every hot path). Bounded: after
/// kMaxEvents further records are counted as dropped instead of stored.
class Tracer {
 public:
  static constexpr size_t kMaxEvents = 1 << 17;

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint64_t Begin(const std::string& name, const std::string& cat);
  void End(uint64_t id);
  void AddArg(uint64_t id, const std::string& key, std::string value);
  void AddArg(uint64_t id, const std::string& key, double value);
  void Instant(const std::string& name, const std::string& cat,
               std::vector<std::pair<std::string, std::string>> args = {});

  size_t event_count() const;

  /// Closes the tracer and returns the recorded trace. Spans still open are
  /// ended at the current time.
  std::shared_ptr<Trace> Finish();

 private:
  double NowUs() const {
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::micro>>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;  // span id = index
  std::vector<uint64_t> open_;      // ids of spans not yet ended
  int depth_ = 0;
  size_t dropped_ = 0;
};

#else  // !RODIN_OBS_ENABLED — the tracer compiles to no-ops.

class Tracer {
 public:
  static constexpr size_t kMaxEvents = 0;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint64_t Begin(const std::string&, const std::string&) { return 0; }
  void End(uint64_t) {}
  void AddArg(uint64_t, const std::string&, std::string) {}
  void AddArg(uint64_t, const std::string&, double) {}
  void Instant(const std::string&, const std::string&,
               std::vector<std::pair<std::string, std::string>> = {}) {}
  size_t event_count() const { return 0; }
  std::shared_ptr<Trace> Finish() {
    return std::make_shared<Trace>(std::vector<TraceEvent>{});
  }
};

#endif  // RODIN_OBS_ENABLED

/// RAII span: opens on construction (when `tracer` is non-null), closes on
/// scope exit. With RODIN_OBS off this is an empty type — the static_assert
/// below is the compile-time guard that the off build stays zero-cost.
class ScopedSpan {
 public:
#if RODIN_OBS_ENABLED
  ScopedSpan(Tracer* tracer, const char* name, const char* cat)
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->Begin(name, cat);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->End(id_);
  }
  void Arg(const std::string& key, double value) {
    if (tracer_ != nullptr) tracer_->AddArg(id_, key, value);
  }
  void Arg(const std::string& key, std::string value) {
    if (tracer_ != nullptr) tracer_->AddArg(id_, key, std::move(value));
  }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
#else
  ScopedSpan(Tracer*, const char*, const char*) {}
  void Arg(const std::string&, double) {}
  void Arg(const std::string&, std::string) {}
#endif

 public:
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#if !RODIN_OBS_ENABLED
static_assert(sizeof(ScopedSpan) == 1,
              "RODIN_OBS=OFF must compile ScopedSpan to an empty type");
#endif

}  // namespace rodin::obs

#endif  // RODIN_OBS_TRACE_H_
