// E1 — Figures 1-3: the conceptual schema, the query graphs of the running
// examples rendered in the paper's notation, and the derived tree labels
// (the tree-shaped adornments of §2.2).

#include <cstdio>

#include "datagen/music_gen.h"
#include "query/paper_queries.h"
#include "query/query_graph.h"

using namespace rodin;

namespace {

void PrintSchema(const Schema& schema) {
  std::printf("=== Figure 1: conceptual schema ===\n");
  for (const auto& cls : schema.classes()) {
    std::printf("class %s", cls->name().c_str());
    if (cls->super() != nullptr) {
      std::printf(" isa %s and", cls->super()->name().c_str());
    }
    std::printf(" [");
    bool first = true;
    for (const Attribute& a : cls->own_attributes()) {
      std::printf("%s %s: %s%s", first ? "" : ",", a.name.c_str(),
                  a.type->ToString().c_str(),
                  a.computed ? " (computed)" : "");
      if (!a.inverse_class.empty()) {
        std::printf(" inverse of %s.%s", a.inverse_class.c_str(),
                    a.inverse_attr.c_str());
      }
      first = false;
    }
    std::printf(" ]\n");
  }
  for (const auto& rel : schema.relations()) {
    std::printf("relation %s: %s\n", rel->name().c_str(),
                rel->tuple_type()->ToString().c_str());
  }
  std::printf("\n");
}

void PrintQuery(const char* title, const QueryGraph& q, const Schema& schema) {
  std::printf("=== %s ===\n%s", title, q.ToString().c_str());
  std::printf("tree labels (adornments):\n");
  for (const PredicateNode& node : q.nodes) {
    for (const Arc& arc : node.inputs) {
      const TreeLabel label = q.DeriveTreeLabel(node, arc);
      std::printf("  %s/%s: %s   (nodes=%zu, depth=%zu)\n",
                  node.label.c_str(), arc.name.c_str(),
                  label.ToString().c_str(), label.NodeCount(), label.Depth());
    }
  }
  const std::vector<std::string> errors = q.Validate(schema);
  std::printf("validation: %s\n\n", errors.empty() ? "ok" : "FAILED");
}

}  // namespace

int main() {
  MusicConfig config;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  PrintSchema(*g.schema);
  PrintQuery("Figure 2: works of Bach with harpsichord and flute",
             Fig2Query(*g.schema), *g.schema);
  PrintQuery("Figure 3: recursive Influencer query", Fig3Query(*g.schema),
             *g.schema);
  PrintQuery("Section 4.5: push-join query (masters of Bach)",
             PushJoinQuery(*g.schema), *g.schema);
  return 0;
}
