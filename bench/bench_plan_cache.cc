// E13 — plan cache: cost of acquiring an optimized plan through the Session
// with and without the plan cache, on the Figure 3 recursion.
//
// The pairs to compare:
//   BM_PlanAcquireCold   — every iteration re-optimizes (bypass_plan_cache),
//                          i.e. the pre-cache behaviour of Session::Run.
//   BM_PlanAcquireCached — every iteration after the first is a cache hit;
//                          the optimizer is never constructed on the hit path.
//   BM_RunEndToEndCold / BM_RunEndToEndCached — same pair but with execution
//                          included, showing what the cache buys a whole Run.
//
// The acceptance bar for this experiment is >=5x on the acquire pair (the
// hit path clones a cached PT instead of searching the plan space). The
// differential guarantee that hits are bit-identical to fresh optimization
// is asserted exhaustively in tests/plan_cache_test.cc; here we only check
// the row count cheaply on the end-to-end pair.

#include <benchmark/benchmark.h>

#include <memory>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

struct CacheCase {
  GeneratedDb db;
  std::unique_ptr<Session> session;
  QueryGraph query;
  size_t expect_rows = 0;
};

CacheCase& SharedCase() {
  static CacheCase* c = [] {
    auto* cc = new CacheCase();
    MusicConfig config;
    config.num_composers = 120;
    config.lineage_depth = 8;
    cc->db = GenerateMusicDb(config, PaperMusicPhysical());
    cc->session =
        std::make_unique<Session>(cc->db.db.get(), CostBasedOptions(42));
    cc->query = Fig3Query(*cc->db.schema);
    QueryOptions warm;
    warm.bypass_plan_cache = true;
    const QueryRun run = cc->session->Run(cc->query, warm);
    if (run.ok()) cc->expect_rows = run.answer.rows.size();
    return cc;
  }();
  return *c;
}

void AcquireLoop(benchmark::State& state, bool bypass) {
  CacheCase& c = SharedCase();
  QueryOptions options;
  options.explain_only = true;  // isolate plan acquisition from execution
  options.bypass_plan_cache = bypass;
  if (!bypass) {
    // Prime the entry so every timed iteration is a hit.
    const QueryRun primed = c.session->Run(c.query, options);
    if (!primed.ok()) {
      state.SkipWithError(primed.error().c_str());
      return;
    }
  }
  for (auto _ : state) {
    const QueryRun run = c.session->Run(c.query, options);
    if (!run.ok()) {
      state.SkipWithError(run.error().c_str());
      return;
    }
    if (!bypass && !run.plan_cached) {
      state.SkipWithError("expected a plan-cache hit");
      return;
    }
    benchmark::DoNotOptimize(run.optimized.cost);
  }
  const PlanCacheStats stats = c.session->plan_cache().stats();
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
}

void BM_PlanAcquireCold(benchmark::State& state) { AcquireLoop(state, true); }
BENCHMARK(BM_PlanAcquireCold)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_PlanAcquireCached(benchmark::State& state) { AcquireLoop(state, false); }
BENCHMARK(BM_PlanAcquireCached)->Unit(benchmark::kMicrosecond)->UseRealTime();

void EndToEndLoop(benchmark::State& state, bool bypass) {
  CacheCase& c = SharedCase();
  QueryOptions options;
  options.bypass_plan_cache = bypass;
  if (!bypass) {
    const QueryRun primed = c.session->Run(c.query, options);
    if (!primed.ok()) {
      state.SkipWithError(primed.error().c_str());
      return;
    }
  }
  for (auto _ : state) {
    const QueryRun run = c.session->Run(c.query, options);
    if (!run.ok()) {
      state.SkipWithError(run.error().c_str());
      return;
    }
    if (run.answer.rows.size() != c.expect_rows) {
      state.SkipWithError("row count diverged from reference");
      return;
    }
    benchmark::DoNotOptimize(run.answer.rows.data());
  }
}

void BM_RunEndToEndCold(benchmark::State& state) { EndToEndLoop(state, true); }
BENCHMARK(BM_RunEndToEndCold)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_RunEndToEndCached(benchmark::State& state) {
  EndToEndLoop(state, false);
}
BENCHMARK(BM_RunEndToEndCached)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
