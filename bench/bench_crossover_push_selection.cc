// E6 — the crossover experiment behind the paper's thesis (§1, §3.2):
// whether pushing a selection through recursion wins depends on its
// selectivity, on the length of the path expression it drags into the
// fixpoint, and on the recursion depth. The deductive heuristic always
// pushes; the cost-controlled optimizer must track the true winner across
// the whole grid.
//
// Grid: selectivity (1/num_labels) x path length x chain depth. For each
// cell we build both plans, estimate and execute both (cold buffer), and
// report which plan actually won, what the optimizer chose, and the
// measured regret of the always-push heuristic.

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/transform.h"
#include "query/graph_queries.h"

using namespace rodin;

namespace {

struct CellResult {
  double est_nopush = 0;
  double est_push = 0;
  double meas_nopush = 0;
  double meas_push = 0;
  bool optimizer_pushed = false;
};

CellResult RunCell(const GraphConfig& config) {
  PhysicalConfig physical = DefaultGraphPhysical();
  physical.buffer_pages = 32;
  GeneratedDb g = GenerateGraphDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  OptContext ctx;
  ctx.db = g.db.get();
  ctx.stats = &stats;
  ctx.cost = &cost;

  const QueryGraph q = GraphClosureQuery(config, *g.schema);

  OptimizerOptions no_push = NaiveOptions();
  no_push.gen_strategy = GenStrategy::kDP;
  Optimizer gen(g.db.get(), &stats, &cost, no_push);
  OptimizeResult unpushed = gen.Optimize(q);
  PTPtr pushed = unpushed.plan->Clone();
  while (PushSelThroughFix(pushed, ctx) || PushProjThroughFix(pushed, ctx)) {
  }

  CellResult cell;
  cell.est_nopush = cost.Annotate(unpushed.plan.get());
  cell.est_push = cost.Annotate(pushed.get());

  Executor e1(g.db.get());
  e1.ResetMeasurement(true);
  e1.Execute(*unpushed.plan);
  cell.meas_nopush = e1.MeasuredCost();
  Executor e2(g.db.get());
  e2.ResetMeasurement(true);
  e2.Execute(*pushed);
  cell.meas_push = e2.MeasuredCost();

  Optimizer decider(g.db.get(), &stats, &cost, CostBasedOptions());
  OptimizeResult decided = decider.Optimize(q);
  cell.optimizer_pushed = decided.pushed_sel;
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "=== Crossover: push vs no-push across selectivity, path length, "
      "recursion depth ===\n");
  std::printf(
      "sel = 1/num_labels; 'true win' from measured execution; 'regret' = "
      "measured cost of always-push / measured cost of true winner\n\n");
  std::printf("%8s %5s %4s %6s | %10s %10s | %10s %10s | %8s %6s %7s %7s\n",
              "sel", "path", "fan", "depth", "est nopush", "est push",
              "mea nopush", "mea push", "true win", "opt", "agree", "regret");

  size_t agreements = 0;
  size_t cells = 0;
  double worst_deductive_regret = 1;
  for (uint32_t num_labels : {1u, 4u, 32u, 256u}) {
    for (uint32_t path_len : {0u, 3u}) {
      for (uint32_t fanout : {1u, 3u}) {
        if (path_len == 0 && fanout > 1) continue;  // fanout needs hops
        for (uint32_t depth : {8u, 32u}) {
        GraphConfig config;
        config.num_nodes = 200;
        config.chain_depth = depth;
        config.path_len = path_len;
        config.num_labels = num_labels;
        config.hop_fanout = fanout;
        const CellResult cell = RunCell(config);

        const bool true_push_wins = cell.meas_push < cell.meas_nopush;
        const bool agree = true_push_wins == cell.optimizer_pushed;
        const double deductive_regret =
            cell.meas_push / std::min(cell.meas_push, cell.meas_nopush);
        worst_deductive_regret =
            std::max(worst_deductive_regret, deductive_regret);
        agreements += agree ? 1 : 0;
        ++cells;

        std::printf(
            "%8.4f %5u %4u %6u | %10.1f %10.1f | %10.1f %10.1f | %8s %6s %7s "
            "%6.2fx\n",
            1.0 / num_labels, path_len, fanout, depth, cell.est_nopush,
            cell.est_push, cell.meas_nopush, cell.meas_push,
            true_push_wins ? "push" : "no-push",
            cell.optimizer_pushed ? "push" : "no-push", agree ? "yes" : "NO",
            deductive_regret);
        }
      }
    }
  }
  std::printf(
      "\noptimizer agreed with the measured winner in %zu / %zu cells\n",
      agreements, cells);
  std::printf(
      "worst-case measured regret of the always-push (deductive) heuristic: "
      "%.2fx\n",
      worst_deductive_regret);
  std::printf(
      "(Both regimes exist -> the push decision cannot be a heuristic; "
      "it must be cost-controlled. This is the paper's core claim.)\n");
  return 0;
}
