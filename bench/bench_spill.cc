// E17 — graceful degradation under memory pressure: the spill-to-disk scale
// sweep. Figure 3's recursive Influencer query runs at growing database
// scales under a 1-page temp ledger (every multi-page working set forced to
// disk) and must stay *observably identical* to an unlimited run — same
// rows, same measured cost — because the ledger never touches the buffer
// pool's accounting. The sweep also replays the pre-spill failure mode: at
// the largest scale a 1-page memory_budget_pages with spilling disabled is
// a typed kResourceExhausted, and the identical budget with spilling on
// completes with the unlimited answer.
//
// Reported figures (all deterministic — seeded data, seeded optimizer,
// page/byte counts rather than timings — so the CI gate can be strict):
//
//   ForcedScalesCompleted — scales that finished under the forced ledger;
//                           the acceptance bar is all of them;
//   IdentityViolations    — forced runs whose rows or measured cost
//                           diverged from the unlimited run (bar: 0);
//   SpillSpillsAtMaxScale / SpillPartitionsAtMaxScale /
//   SpillMBAtMaxScale / SpillPassesAtMaxScale
//                         — spill volume at the largest scale, from the
//                           rodin.spill.* counters;
//   SeedFailureRecovered  — 1 when the old hard-failure configuration
//                           (1-page budget, spill off => kResourceExhausted)
//                           completes under the same budget with spill on.
//
// Output is Google-Benchmark-shaped JSON (values in real_time, the field
// scripts/check_bench.py compares) written to --out, like rodin_load.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "obs/metrics.h"
#include "optimizer/baseline.h"

using namespace rodin;

namespace {

const char kFig3Text[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

constexpr size_t kUnlimitedPages = size_t{1} << 30;

std::vector<std::string> Keys(const Table& t) {
  std::vector<std::string> out;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.push_back(std::move(key));
  }
  return out;
}

struct BenchRow {
  std::string name;
  double value;
  const char* unit;
};

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\n    \"executable\": \"bench_spill\"\n  },\n"
      << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\n"
        << "      \"name\": \"" << row.name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"iterations\": 1,\n"
        << "      \"real_time\": " << row.value << ",\n"
        << "      \"cpu_time\": " << row.value << ",\n"
        << "      \"time_unit\": \"" << row.unit << "\"\n"
        << "    }" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
}

uint64_t SpillCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_spill.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--out=";
    if (arg.rfind(prefix, 0) == 0) out_path = arg.substr(prefix.size());
  }

  const uint32_t kScales[] = {60, 120, 240, 400};
  double completed = 0;
  double identity_violations = 0;
  double spills_at_max = 0, partitions_at_max = 0, mb_at_max = 0,
         passes_at_max = 0;
  double seed_failure_recovered = 0;

  for (const uint32_t scale : kScales) {
    MusicConfig config;
    config.num_composers = scale;
    config.lineage_depth = 10;
    config.seed = 1234;
    GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
    Session session(g.db.get(), CostBasedOptions(42));

    QueryOptions unlimited;
    unlimited.cold = true;
    unlimited.query.spill_budget_pages = kUnlimitedPages;
    const QueryRun base = session.Run(kFig3Text, unlimited);
    if (!base.ok()) {
      std::fprintf(stderr, "unlimited run failed at scale %u: %s\n", scale,
                   base.error().c_str());
      return 1;
    }

    QueryOptions forced;
    forced.cold = true;
    forced.query.spill = true;
    forced.query.spill_budget_pages = 1;
    const uint64_t spills0 = SpillCounter("rodin.spill.spills");
    const uint64_t parts0 = SpillCounter("rodin.spill.partitions");
    const uint64_t bytes0 = SpillCounter("rodin.spill.bytes");
    const uint64_t passes0 = SpillCounter("rodin.spill.passes");
    const QueryRun spilled = session.Run(kFig3Text, forced);
    if (!spilled.ok()) {
      std::fprintf(stderr, "forced-spill run failed at scale %u: %s\n", scale,
                   spilled.error().c_str());
      continue;  // counted as a missing completion below
    }
    completed += 1;
    const bool identical = Keys(spilled.answer) == Keys(base.answer) &&
                           spilled.measured_cost == base.measured_cost;
    if (!identical) identity_violations += 1;

    spills_at_max = static_cast<double>(SpillCounter("rodin.spill.spills") -
                                        spills0);
    partitions_at_max = static_cast<double>(
        SpillCounter("rodin.spill.partitions") - parts0);
    mb_at_max = static_cast<double>(SpillCounter("rodin.spill.bytes") -
                                    bytes0) /
                1e6;
    passes_at_max = static_cast<double>(SpillCounter("rodin.spill.passes") -
                                        passes0);
    std::fprintf(stderr,
                 "scale %3u: %zu rows, %s, spills=%.0f partitions=%.0f "
                 "%.3f MB passes=%.0f\n",
                 scale, spilled.answer.rows.size(),
                 identical ? "bit-identical" : "DIVERGED", spills_at_max,
                 partitions_at_max, mb_at_max, passes_at_max);

    // The pre-spill failure mode, replayed at the largest scale: the same
    // 1-page budget that used to kResourceExhausted now completes.
    if (scale == kScales[sizeof(kScales) / sizeof(kScales[0]) - 1]) {
      QueryOptions off;
      off.cold = true;
      off.query.memory_budget_pages = 1;
      off.query.spill = false;
      const QueryRun refused = session.Run(kFig3Text, off);
      QueryOptions on = off;
      on.query.spill = true;
      const QueryRun recovered = session.Run(kFig3Text, on);
      if (!refused.ok() &&
          refused.status.code == Status::Code::kResourceExhausted &&
          recovered.ok() && Keys(recovered.answer) == Keys(base.answer)) {
        seed_failure_recovered = 1;
      }
      std::fprintf(stderr,
                   "seed failure replay: spill-off %s, spill-on %s\n",
                   refused.status.ToString().c_str(),
                   recovered.status.ToString().c_str());
    }
  }

  WriteBenchJson(out_path,
                 {
                     {"ForcedScalesCompleted", completed, "count"},
                     {"IdentityViolations", identity_violations, "count"},
                     {"SpillSpillsAtMaxScale", spills_at_max, "count"},
                     {"SpillPartitionsAtMaxScale", partitions_at_max, "count"},
                     {"SpillMBAtMaxScale", mb_at_max, "MB"},
                     {"SpillPassesAtMaxScale", passes_at_max, "count"},
                     {"SeedFailureRecovered", seed_failure_recovered, "bool"},
                 });
  std::fprintf(stderr,
               "%.0f/4 scales completed forced, %.0f identity violations, "
               "seed failure recovered=%.0f -> %s\n",
               completed, identity_violations, seed_failure_recovered,
               out_path.c_str());

  if (completed < 4 || identity_violations > 0 ||
      seed_failure_recovered != 1) {
    std::fprintf(stderr,
                 "FAIL: spill acceptance bar (all scales complete, zero "
                 "divergence, seed failure recovered) not met\n");
    return 1;
  }
  return 0;
}
