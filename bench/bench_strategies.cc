// E8 — search strategies (§4.1, §4.4, [LV91]/[IC90]/[KZ88]): plan quality
// relative to the exhaustive optimum and optimization effort, across spj
// sizes and for the recursive query. Also registers google-benchmark timers
// for the optimizer configurations on a fixed medium query.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/string_util.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

QueryGraph ChainQuery(uint32_t k, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  node.Input("Node", "x");
  std::string prev = "x";
  for (uint32_t i = 1; i <= k; ++i) {
    const std::string var = "a" + std::to_string(i);
    node.Input(StrFormat("Aux%u", i), var);
    node.Where(Expr::Eq(Expr::Path(prev, {StrFormat("hop%u", i)}),
                        Expr::Path(var)));
    prev = var;
  }
  node.Where(Expr::Eq(Expr::Path(prev, {"label"}),
                      Expr::Lit(Value::Str("label_0"))));
  node.OutPath("n", "x", {"nname"});
  return b.Build(schema);
}

struct StrategyRun {
  double cost = 0;
  double micros = 0;
  size_t plans = 0;
};

StrategyRun RunStrategy(Database* db, const Stats& stats,
                        const CostModel& cost, const QueryGraph& q,
                        OptimizerOptions options) {
  const auto start = std::chrono::steady_clock::now();
  Optimizer opt(db, &stats, &cost, options);
  OptimizeResult r = opt.Optimize(q);
  StrategyRun out;
  out.micros = std::chrono::duration_cast<
                   std::chrono::duration<double, std::micro>>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.cost = r.ok() ? r.cost : -1;
  out.plans = r.plans_explored;
  return out;
}

void SpjShootout() {
  std::printf(
      "=== Strategy shoot-out on spj chains (cost ratio to exhaustive "
      "optimum) ===\n");
  std::printf("%6s | %21s | %21s | %21s | %21s\n", "joins",
              "exhaustive (ref)", "dynamic programming", "greedy",
              "randomized (II)");
  std::printf("%6s | %8s %6s %6s | %8s %6s %6s | %8s %6s %6s | %8s %6s %6s\n",
              "", "us", "plans", "ratio", "us", "plans", "ratio", "us",
              "plans", "ratio", "us", "plans", "ratio");
  for (uint32_t k = 2; k <= 7; ++k) {
    GraphConfig config;
    config.num_nodes = 150;
    config.path_len = k;
    config.num_labels = 8;
    GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
    Stats stats = Stats::Derive(*g.db);
    CostModel cost(g.db.get(), &stats);
    const QueryGraph q = ChainQuery(k, *g.schema);

    OptimizerOptions ex = ExhaustiveOptions();
    ex.transform.rand = RandStrategy::kNone;
    OptimizerOptions dp = CostBasedOptions();
    dp.transform.rand = RandStrategy::kNone;
    OptimizerOptions greedy = NaiveOptions();
    OptimizerOptions randomized = NaiveOptions();
    randomized.gen_strategy = GenStrategy::kRandomized;

    const StrategyRun re = RunStrategy(g.db.get(), stats, cost, q, ex);
    const StrategyRun rd = RunStrategy(g.db.get(), stats, cost, q, dp);
    const StrategyRun rg = RunStrategy(g.db.get(), stats, cost, q, greedy);
    const StrategyRun rr = RunStrategy(g.db.get(), stats, cost, q, randomized);
    std::printf(
        "%6u | %8.0f %6zu %6.2f | %8.0f %6zu %6.2f | %8.0f %6zu %6.2f | "
        "%8.0f %6zu %6.2f\n",
        k, re.micros, re.plans, 1.0, rd.micros, rd.plans, rd.cost / re.cost,
        rg.micros, rg.plans, rg.cost / re.cost, rr.micros, rr.plans,
        rr.cost / re.cost);
  }
  std::printf("\n");
}

void RecursiveShootout() {
  std::printf(
      "=== Strategies on the recursive Figure 3 query (with transformPT) "
      "===\n");
  MusicConfig config;
  config.num_composers = 300;
  config.lineage_depth = 15;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  const QueryGraph q = Fig3Query(*g.schema, 5);

  struct Named {
    const char* name;
    OptimizerOptions options;
  };
  OptimizerOptions naive_fix = CostBasedOptions();
  naive_fix.naive_fixpoint = true;
  const Named configs[] = {
      {"cost-based + II (paper)", CostBasedOptions()},
      {"cost-based + SA", AnnealingOptions()},
      {"exhaustive + II", ExhaustiveOptions()},
      {"deductive (always push)", DeductiveOptions()},
      {"naive (never push, greedy)", NaiveOptions()},
      {"cost-based, naive fixpoint", naive_fix},
  };
  std::printf("%-28s %12s %10s %8s\n", "configuration", "plan cost", "micros",
              "plans");
  double best = -1;
  for (const Named& c : configs) {
    const StrategyRun r = RunStrategy(g.db.get(), stats, cost, q, c.options);
    if (best < 0 || (r.cost > 0 && r.cost < best)) best = r.cost;
    std::printf("%-28s %12.1f %10.0f %8zu\n", c.name, r.cost, r.micros,
                r.plans);
  }
  std::printf("(best plan cost: %.1f)\n\n", best);
}

// --- google-benchmark microbenchmarks on a fixed query --------------------

struct BenchFixture {
  BenchFixture() {
    MusicConfig config;
    config.num_composers = 200;
    config.lineage_depth = 10;
    db = GenerateMusicDb(config, PaperMusicPhysical());
    stats = std::make_unique<Stats>(Stats::Derive(*db.db));
    cost = std::make_unique<CostModel>(db.db.get(), stats.get());
    query = Fig3Query(*db.schema, 5);
  }
  GeneratedDb db;
  std::unique_ptr<Stats> stats;
  std::unique_ptr<CostModel> cost;
  QueryGraph query;
};

BenchFixture& Fixture() {
  static BenchFixture* fixture = new BenchFixture();
  return *fixture;
}

void BM_OptimizeCostBased(benchmark::State& state) {
  BenchFixture& f = Fixture();
  for (auto _ : state) {
    Optimizer opt(f.db.db.get(), f.stats.get(), f.cost.get(),
                  CostBasedOptions());
    benchmark::DoNotOptimize(opt.Optimize(f.query));
  }
}
BENCHMARK(BM_OptimizeCostBased)->Unit(benchmark::kMicrosecond);

void BM_OptimizeExhaustive(benchmark::State& state) {
  BenchFixture& f = Fixture();
  for (auto _ : state) {
    Optimizer opt(f.db.db.get(), f.stats.get(), f.cost.get(),
                  ExhaustiveOptions());
    benchmark::DoNotOptimize(opt.Optimize(f.query));
  }
}
BENCHMARK(BM_OptimizeExhaustive)->Unit(benchmark::kMicrosecond);

void BM_OptimizeDeductive(benchmark::State& state) {
  BenchFixture& f = Fixture();
  for (auto _ : state) {
    Optimizer opt(f.db.db.get(), f.stats.get(), f.cost.get(),
                  DeductiveOptions());
    benchmark::DoNotOptimize(opt.Optimize(f.query));
  }
}
BENCHMARK(BM_OptimizeDeductive)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  SpjShootout();
  RecursiveShootout();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
