// E4 — Figure 6: the summary of the optimization steps. For each query we
// print the per-stage table (granularity / strategy / PT node kinds) with
// measured time and work, then sweep spj size to show how generatePT's
// share grows while rewrite stays irrevocable and flat.

#include <cstdio>

#include "common/string_util.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

void PrintStages(const char* title, const OptimizeResult& r) {
  std::printf("--- %s ---\n", title);
  std::printf("  %-12s | %-22s | %-28s | %-10s | %10s | %8s\n", "procedure",
              "granularity", "strategy", "generates", "micros", "work");
  for (const StageReport& s : r.stages) {
    std::printf("  %-12s | %-22s | %-28s | %-10s | %10.1f | %8zu\n",
                s.stage.c_str(), s.granularity.c_str(), s.strategy.c_str(),
                s.nodes_generated.c_str(), s.micros, s.plans_explored);
  }
  std::printf("  total plans explored: %zu, final cost: %.1f\n\n",
              r.plans_explored, r.cost);
}

// A k-way explicit-join chain over the graph DB's aux classes:
// Node x, Aux1 a1, ..., Auxk ak joined by x.hop1 = a1, a1.hop2 = a2, ...
QueryGraph ChainQuery(uint32_t k, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  node.Input("Node", "x");
  std::string prev = "x";
  for (uint32_t i = 1; i <= k; ++i) {
    const std::string var = "a" + std::to_string(i);
    node.Input(StrFormat("Aux%u", i), var);
    node.Where(Expr::Eq(Expr::Path(prev, {StrFormat("hop%u", i)}),
                        Expr::Path(var)));
    prev = var;
  }
  node.Where(Expr::Eq(Expr::Path(prev, {"label"}),
                      Expr::Lit(Value::Str("label_0"))));
  node.OutPath("n", "x", {"nname"});
  return b.Build(schema);
}

// A k-way star over Composer: x0 joined with x1..xk, all on shared master.
QueryGraph StarQuery(uint32_t k, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  node.Input("Composer", "x0");
  for (uint32_t i = 1; i <= k; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    node.Where(Expr::Eq(Expr::Path("x0", {"master"}),
                        Expr::Path(var, {"master"})));
  }
  node.Where(Expr::Eq(Expr::Path("x0", {"name"}),
                      Expr::Lit(Value::Str("Bach"))));
  node.OutPath("n", "x0", {"name"});
  return b.Build(schema);
}

void StarSweep() {
  std::printf(
      "=== generatePT work vs star size (dense predicate graph: every arc "
      "joins the center) ===\n");
  std::printf("  %-6s %16s %16s %16s %16s\n", "joins", "DP micros",
              "DP plans", "exhaustive us", "exhaustive plans");
  MusicConfig config;
  config.num_composers = 120;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  for (uint32_t k = 2; k <= 5; ++k) {
    const QueryGraph q = StarQuery(k, *g.schema);
    OptimizerOptions dp = CostBasedOptions();
    dp.transform.rand = RandStrategy::kNone;
    Optimizer dp_opt(g.db.get(), &stats, &cost, dp);
    OptimizeResult rd = dp_opt.Optimize(q);
    OptimizerOptions ex = ExhaustiveOptions();
    ex.transform.rand = RandStrategy::kNone;
    Optimizer ex_opt(g.db.get(), &stats, &cost, ex);
    OptimizeResult re = ex_opt.Optimize(q);
    double dp_us = 0, ex_us = 0;
    size_t dp_plans = 0, ex_plans = 0;
    for (const StageReport& s : rd.stages) {
      if (s.stage == "generatePT") {
        dp_us = s.micros;
        dp_plans = s.plans_explored;
      }
    }
    for (const StageReport& s : re.stages) {
      if (s.stage == "generatePT") {
        ex_us = s.micros;
        ex_plans = s.plans_explored;
      }
    }
    std::printf("  %-6u %16.1f %16zu %16.1f %16zu\n", k, dp_us, dp_plans,
                ex_us, ex_plans);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 6: summary of optimization steps ===\n\n");

  MusicConfig config;
  config.num_composers = 200;
  GeneratedDb music = GenerateMusicDb(config, PaperMusicPhysical());
  Stats music_stats = Stats::Derive(*music.db);
  CostModel music_cost(music.db.get(), &music_stats);
  Optimizer opt(music.db.get(), &music_stats, &music_cost, CostBasedOptions());

  PrintStages("Figure 2 query (non-recursive spj with path variables)",
              opt.Optimize(Fig2Query(*music.schema)));
  PrintStages("Figure 3 query (recursive, with transformPT decision)",
              opt.Optimize(Fig3Query(*music.schema, 6)));
  PrintStages("Section 4.5 query (push join through recursion)",
              opt.Optimize(PushJoinQuery(*music.schema)));

  std::printf(
      "=== generatePT work vs spj size (explicit-join chains; DP vs "
      "exhaustive) ===\n");
  std::printf("  %-6s %16s %16s %16s %16s\n", "joins", "DP micros",
              "DP plans", "exhaustive us", "exhaustive plans");
  for (uint32_t k = 2; k <= 6; ++k) {
    GraphConfig gconfig;
    gconfig.num_nodes = 200;
    gconfig.path_len = k;
    gconfig.num_labels = 10;
    GeneratedDb g = GenerateGraphDb(gconfig, DefaultGraphPhysical());
    Stats stats = Stats::Derive(*g.db);
    CostModel cost(g.db.get(), &stats);
    const QueryGraph q = ChainQuery(k, *g.schema);

    OptimizerOptions dp = CostBasedOptions();
    dp.transform.rand = RandStrategy::kNone;
    Optimizer dp_opt(g.db.get(), &stats, &cost, dp);
    OptimizeResult rd = dp_opt.Optimize(q);

    OptimizerOptions ex = ExhaustiveOptions();
    ex.transform.rand = RandStrategy::kNone;
    Optimizer ex_opt(g.db.get(), &stats, &cost, ex);
    OptimizeResult re = ex_opt.Optimize(q);

    double dp_us = 0, ex_us = 0;
    size_t dp_plans = 0, ex_plans = 0;
    for (const StageReport& s : rd.stages) {
      if (s.stage == "generatePT") {
        dp_us = s.micros;
        dp_plans = s.plans_explored;
      }
    }
    for (const StageReport& s : re.stages) {
      if (s.stage == "generatePT") {
        ex_us = s.micros;
        ex_plans = s.plans_explored;
      }
    }
    std::printf("  %-6u %16.1f %16zu %16.1f %16zu\n", k, dp_us, dp_plans,
                ex_us, ex_plans);
  }
  std::printf("\n");
  StarSweep();
  return 0;
}
