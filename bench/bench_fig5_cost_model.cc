// E3 — Figure 5 cost-model validation: for every PT node kind, compare the
// estimated cost with the measured cost of actually executing it (cold
// buffer), across database sizes. The absolute unit is abstract, so the
// meaningful result is the ratio — it should stay within a small factor and
// be stable across sizes.

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "plan/pt.h"

using namespace rodin;

namespace {

struct RowResult {
  const char* name;
  double estimated;
  double measured;
};

RowResult Measure(const char* name, Database* db, const CostModel& model,
                  PTPtr plan) {
  const double est = model.Annotate(plan.get());
  Executor exec(db);
  exec.ResetMeasurement(true);
  exec.Execute(*plan);
  return RowResult{name, est, exec.MeasuredCost()};
}

void RunSize(uint32_t composers) {
  MusicConfig config;
  config.num_composers = composers;
  config.lineage_depth = 10;
  PhysicalConfig physical = PaperMusicPhysical();
  physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  physical.buffer_pages = 64;
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel model(g.db.get(), &stats);
  const ClassDef* composer = g.schema->FindClass("Composer");
  const ClassDef* composition = g.schema->FindClass("Composition");
  const ClassDef* instrument = g.schema->FindClass("Instrument");

  auto scan = [&](const std::string& var) {
    return MakeEntity(EntityRef{"Composer", 0, 0}, var, composer);
  };
  ExprPtr name_pred =
      Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach")));

  std::vector<RowResult> rows;
  rows.push_back(Measure("Entity scan", g.db.get(), model, scan("x")));
  rows.push_back(
      Measure("Sel (seq scan)", g.db.get(), model, MakeSel(scan("x"), name_pred)));
  {
    PTPtr s = MakeSel(scan("x"), name_pred);
    s->sel_access = SelAccess::kIndexEq;
    s->sel_index = g.db->FindSelIndex("Composer", "name");
    s->sel_index_pred = name_pred;
    rows.push_back(Measure("Sel (index eq)", g.db.get(), model, std::move(s)));
  }
  rows.push_back(Measure(
      "IJ (collection attr)", g.db.get(), model,
      MakeIJ(scan("x"), "x", "works", "w", composition)));
  rows.push_back(Measure(
      "IJ (single ref attr)", g.db.get(), model,
      MakeIJ(scan("x"), "x", "master", "m", composer)));
  {
    const PathIndex* index =
        g.db->FindPathIndex("Composer", {"works", "instruments"});
    rows.push_back(Measure(
        "PIJ works.instruments", g.db.get(), model,
        MakePIJ(scan("x"), "x", {"works", "instruments"}, {"w", "i"},
                {composition, instrument}, index)));
  }
  {
    PTPtr ej = MakeEJ(
        MakeSel(scan("x"), name_pred),
        MakeEntity(EntityRef{"Composition", 0, 0}, "c", composition),
        Expr::Eq(Expr::Path("c", {"author"}), Expr::Path("x")),
        JoinAlgo::kNestedLoop);
    rows.push_back(Measure("EJ (nested loop)", g.db.get(), model, std::move(ej)));
  }
  {
    // EJ with an index join: probe the name index per outer row.
    PTPtr outer = MakeIJ(scan("x"), "x", "master", "m", composer);
    PTPtr inner = MakeEntity(EntityRef{"Composer", 0, 0}, "y", composer);
    ExprPtr probe = Expr::Eq(Expr::Path("y", {"name"}),
                             Expr::Path("m", {"name"}));
    PTPtr ej = MakeEJ(std::move(outer), std::move(inner), probe,
                      JoinAlgo::kIndexJoin);
    ej->join_index = g.db->FindSelIndex("Composer", "name");
    ej->join_index_attr = "name";
    rows.push_back(Measure("EJ (index join)", g.db.get(), model, std::move(ej)));
  }
  {
    // Fixpoint: master-chain closure.
    std::vector<PTCol> cols = {{"m", composer}, {"d", composer}};
    PTPtr base = MakeProj(scan("x"),
                          {{"m", Expr::Path("x", {"master"})},
                           {"d", Expr::Path("x")}},
                          cols, true);
    PTPtr delta = MakeDelta("V", cols);
    PTPtr ej = MakeEJ(std::move(delta), scan("y"),
                      Expr::Eq(Expr::Path("d"), Expr::Path("y", {"master"})),
                      JoinAlgo::kNestedLoop);
    PTPtr rec = MakeProj(std::move(ej),
                         {{"m", Expr::Path("m")}, {"d", Expr::Path("y")}},
                         cols, true);
    PTPtr fix = MakeFix("V", std::move(base), std::move(rec));
    fix->est_iters = stats.Attr("Composer", "master").chain_depth_max;
    rows.push_back(Measure("Fix (semi-naive)", g.db.get(), model, std::move(fix)));
  }

  std::printf("--- %u composers (%llu compositions) ---\n", composers,
              static_cast<unsigned long long>(
                  g.db->FindExtent("Composition")->size()));
  std::printf("  %-24s %12s %12s %8s\n", "node", "estimated", "measured",
              "ratio");
  for (const RowResult& r : rows) {
    std::printf("  %-24s %12.1f %12.1f %8.2f\n", r.name, r.estimated,
                r.measured,
                r.measured > 0 ? r.estimated / r.measured : 0.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 5 cost-model validation: estimated vs measured ===\n\n");
  for (uint32_t n : {100u, 400u, 1600u}) {
    RunSize(n);
  }
  return 0;
}
