// E10 (extension) — the parallel cost mode the paper's conclusion attributes
// to the DBS3 implementation ("the cost model ... takes parallelism into
// consideration"). Estimation-only: the bracket divides divisible operator
// work across workers, charges per-operator startup, and keeps fixpoint
// iterations as sequential barriers. The table shows the modeled speedup
// curves of a bulk spj, a selective lookup, and the recursive Figure 3
// query — the recursive curve flattens first (Amdahl through the barrier).

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/paper_queries.h"

using namespace rodin;

int main() {
  MusicConfig config;
  config.num_composers = 900;
  config.lineage_depth = 15;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);

  QueryGraphBuilder bulk_builder;
  bulk_builder.Node("Answer")
      .Input("Composer", "x")
      .Input("Composer", "y")
      .Where(Expr::Eq(Expr::Path("x", {"master"}), Expr::Path("y", {"master"})))
      .OutPath("n", "x", {"name"});
  const QueryGraph bulk = bulk_builder.Build(*g.schema);

  QueryGraphBuilder lookup_builder;
  lookup_builder.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("n", "x", {"birthyear"});
  const QueryGraph lookup = lookup_builder.Build(*g.schema);

  const QueryGraph recursive = Fig3Query(*g.schema, 5);

  auto cost_at = [&](const QueryGraph& q, unsigned degree) {
    CostParams params;
    params.parallel_degree = degree;
    CostModel model(g.db.get(), &stats, params);
    Optimizer opt(g.db.get(), &stats, &model, CostBasedOptions());
    OptimizeResult r = opt.Optimize(q);
    return r.ok() ? r.cost : -1.0;
  };

  std::printf(
      "=== Modeled parallel speedup (bracket cost model; serial executor) "
      "===\n\n");
  std::printf("%8s | %14s %8s | %14s %8s | %14s %8s\n", "workers",
              "bulk spj", "speedup", "lookup", "speedup", "recursive",
              "speedup");
  const double bulk1 = cost_at(bulk, 1);
  const double lookup1 = cost_at(lookup, 1);
  const double rec1 = cost_at(recursive, 1);
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double b = cost_at(bulk, p);
    const double l = cost_at(lookup, p);
    const double r = cost_at(recursive, p);
    std::printf("%8u | %14.1f %7.2fx | %14.1f %7.2fx | %14.1f %7.2fx\n", p, b,
                bulk1 / b, l, lookup1 / l, r, rec1 / r);
  }
  std::printf(
      "\nExpected shape: near-linear speedup for the bulk join, overhead-"
      "dominated slowdown\nfor the one-row lookup, and a flattening curve "
      "for the recursive query whose\nfixpoint iterations are sequential "
      "barriers.\n");
  return 0;
}
