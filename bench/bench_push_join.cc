// E7 — §4.5: pushing an explicit JOIN through recursion, the transformation
// the paper claims had "not been previously explored by optimizers". The
// "masters of Bach" query joins Influencer with a one-composer relation —
// extremely selective — so pushing it restricts the recursive computation
// to the relevant lineage. We sweep join selectivity by varying how many
// composers carry the selective name.

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

struct RunResult {
  double est = 0;
  double measured = 0;
  size_t rows = 0;
  bool pushed_join = false;
};

RunResult RunWith(Database* db, const Stats& stats, const CostModel& cost,
                  const QueryGraph& q, OptimizerOptions options) {
  Optimizer opt(db, &stats, &cost, options);
  OptimizeResult r = opt.Optimize(q);
  RunResult out;
  if (!r.ok()) {
    std::printf("optimize failed: %s\n", r.status.message.c_str());
    return out;
  }
  out.est = r.cost;
  out.pushed_join = r.pushed_join;
  Executor exec(db);
  exec.ResetMeasurement(true);
  Table t = exec.Execute(*r.plan);
  t.Dedup();
  out.measured = exec.MeasuredCost();
  out.rows = t.rows.size();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Push join through recursion (the 'masters of Bach' query) "
              "===\n\n");
  std::printf("%10s | %12s %12s %6s | %12s %12s %6s | %7s %9s\n",
              "composers", "nopush est", "nopush mea", "rows", "costed est",
              "costed mea", "rows", "pushed?", "speedup");

  for (uint32_t composers : {100u, 300u, 900u}) {
    MusicConfig config;
    config.num_composers = composers;
    config.lineage_depth = 20;
    PhysicalConfig physical = PaperMusicPhysical();
    physical.buffer_pages = 48;
    GeneratedDb g = GenerateMusicDb(config, physical);
    Stats stats = Stats::Derive(*g.db);
    CostModel cost(g.db.get(), &stats);
    const QueryGraph q = PushJoinQuery(*g.schema);

    const RunResult nopush =
        RunWith(g.db.get(), stats, cost, q, NaiveOptions());
    const RunResult costed =
        RunWith(g.db.get(), stats, cost, q, CostBasedOptions());

    std::printf("%10u | %12.1f %12.1f %6zu | %12.1f %12.1f %6zu | %7s %8.2fx\n",
                composers, nopush.est, nopush.measured, nopush.rows,
                costed.est, costed.measured, costed.rows,
                costed.pushed_join ? "yes" : "no",
                costed.measured > 0 ? nopush.measured / costed.measured : 0.0);
  }
  std::printf(
      "\nExpected shape: the join is pushed and the advantage grows with "
      "database size,\nbecause the pushed fixpoint explores a single "
      "lineage instead of all of them.\n");
  return 0;
}
