// E9 — physical-design ablations (§3): the optimizer and cost model must
// react to the presence of path indices (the collapse action), clustering,
// vertical decomposition and selection indices. For each design we optimize
// the Figure 3 and Figure 2 queries, report the chosen operators and both
// estimated and measured costs.

#include <cstdio>
#include <functional>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

size_t Count(const PTNode& n, PTKind kind) {
  size_t c = n.kind == kind ? 1 : 0;
  for (const auto& ch : n.children) c += Count(*ch, kind);
  return c;
}

size_t CountIndexAccess(const PTNode& n) {
  size_t c = (n.kind == PTKind::kSel && n.sel_access != SelAccess::kSeqScan)
                 ? 1
                 : 0;
  for (const auto& ch : n.children) c += CountIndexAccess(*ch);
  return c;
}

void RunDesign(const char* name, const PhysicalConfig& physical) {
  MusicConfig config;
  config.num_composers = 400;
  config.lineage_depth = 12;
  config.harpsichord_fraction = 0.35;  // Fig. 2 needs Bach works with both instruments
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  Optimizer opt(g.db.get(), &stats, &cost, CostBasedOptions());

  auto run = [&](const char* query_name, const QueryGraph& q) {
    OptimizeResult r = opt.Optimize(q);
    if (!r.ok()) {
      std::printf("  %-8s optimize failed: %s\n", query_name, r.status.message.c_str());
      return;
    }
    Executor exec(g.db.get());
    exec.ResetMeasurement(true);
    Table t = exec.Execute(*r.plan);
    t.Dedup();
    std::printf(
        "  %-8s est=%9.1f measured=%9.1f rows=%4zu | PIJ=%zu IJ=%zu "
        "idx-sel=%zu pushed=%s\n",
        query_name, r.cost, exec.MeasuredCost(), t.rows.size(),
        Count(*r.plan, PTKind::kPIJ), Count(*r.plan, PTKind::kIJ),
        CountIndexAccess(*r.plan),
        r.pushed_sel ? "sel" : (r.pushed_join ? "join" : "no"));
  };

  std::printf("--- %s ---\n", name);
  run("Fig2", Fig2Query(*g.schema));
  run("Fig3", Fig3Query(*g.schema, 6));
  run("S4.5", PushJoinQuery(*g.schema));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Physical design ablation (buffer 48 pages) ===\n\n");

  PhysicalConfig bare;
  bare.buffer_pages = 48;
  RunDesign("no indices, no clustering", bare);

  PhysicalConfig with_path = bare;
  with_path.path_indexes.push_back(
      PathIndexSpec{"Composer", {"works", "instruments"}});
  RunDesign("+ path index works.instruments (paper design)", with_path);

  PhysicalConfig with_sel = with_path;
  with_sel.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  RunDesign("+ selection index Composer.name", with_sel);

  PhysicalConfig clustered = with_sel;
  clustered.clustering.push_back(ClusterSpec{"Composer", "works"});
  RunDesign("+ clustering of works with their composer", clustered);

  PhysicalConfig vertical = with_sel;
  vertical.vertical.push_back(VerticalSpec{
      "Composition", {{"author", "instruments"}, {"title"}}});
  RunDesign("+ vertical decomposition of Composition", vertical);

  std::printf(
      "Expected shape: the path index turns the IJ chain into one PIJ (the "
      "collapse action);\nthe selection index shows up as index accesses; "
      "clustering and decomposition shift costs\nwithout changing answers.\n");
  return 0;
}
