// E16 — adaptive cost feedback: how far do the cost model's cardinality
// estimates move toward the truth after the feedback loop has watched a few
// runs?
//
// The workload is the paper's recursive Influencer pattern with selections
// of varying strictness over the fixpoint's output (`gen >= k`): exactly
// the estimates derived statistics get wrong, because recursion depth and
// the selectivity of a predicate over a recursively-built relation are
// invisible to per-extent statistics. For every query we measure the
// q-error of the *output cardinality* estimate, max(est/measured,
// measured/est), in two worlds:
//
//   cold — a feedback-off session: the raw cost model, no corrections;
//   warm — a feedback-on session after kWarmupRuns harvested executions.
//
// Reported figures (all deterministic — seeded data, seeded optimizer, no
// timing anywhere, so the CI gate can be strict):
//
//   QErrorMedianCold / QErrorMedianWarm — median over the corpus;
//   QErrorImprovement — cold/warm ratio; the acceptance bar is >= 2x and
//                       the binary exits non-zero below it;
//   CorrectionScopes  — learned correction factors after warm-up;
//   DriftDemotions    — cached-plan demotions when a hair-trigger drift
//                       threshold watches the same workload.
//
// Output is Google-Benchmark-shaped JSON (values in real_time, the field
// scripts/check_bench.py compares) written to --out, like rodin_load.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/plan_cache.h"
#include "api/session.h"
#include "common/string_util.h"
#include "cost/feedback.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"

using namespace rodin;

namespace {

constexpr int kWarmupRuns = 6;

std::string InfluencerQuery(int min_gen) {
  return StrFormat(R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= %d
)",
                   min_gen);
}

/// Output-cardinality q-error of an executed explain: the root node's
/// estimate against what actually came out.
double RootQError(const ExplainResult& ex) {
  const std::vector<PlanNodeStats>& nodes = ex.node_stats();
  if (nodes.empty() || !nodes[0].executed || nodes[0].est_rows < 0) return -1;
  const double est = nodes[0].est_rows + 1;
  const double measured = static_cast<double>(nodes[0].measured_rows) + 1;
  return std::max(est / measured, measured / est);
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

struct BenchRow {
  std::string name;
  double value;
  const char* unit;
};

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\n    \"executable\": \"bench_feedback\"\n  },\n"
      << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\n"
        << "      \"name\": \"" << row.name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"iterations\": 1,\n"
        << "      \"real_time\": " << row.value << ",\n"
        << "      \"cpu_time\": " << row.value << ",\n"
        << "      \"time_unit\": \"" << row.unit << "\"\n"
        << "    }" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_feedback.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--out=";
    if (arg.rfind(prefix, 0) == 0) out_path = arg.substr(prefix.size());
  }

  MusicConfig config;
  config.num_composers = 72;
  config.lineage_depth = 12;
  config.seed = 1234;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());

  // Selections of varying strictness over the recursion's output: the
  // deeper the gen cutoff, the further the static selectivity estimate is
  // from the (linearly thinning, eventually vanishing) truth — recursion
  // depth and generation counts are invisible to per-extent statistics.
  std::vector<std::string> corpus;
  for (int min_gen = 5; min_gen <= 11; ++min_gen) {
    corpus.push_back(InfluencerQuery(min_gen));
  }

  QueryOptions off;
  off.cold = true;
  off.bypass_plan_cache = true;  // every Explain re-optimizes from scratch
  off.feedback.enabled = false;
  QueryOptions on = off;
  on.feedback.enabled = true;

  Session cold_session(g.db.get(), CostBasedOptions(42));
  Session warm_session(g.db.get(), CostBasedOptions(42));

  std::vector<double> cold_errs;
  std::vector<double> warm_errs;
  for (const std::string& query : corpus) {
    const ExplainResult cold = cold_session.Explain(query, off);
    if (!cold.ok() || RootQError(cold) < 0) {
      std::fprintf(stderr, "cold explain failed: %s\n",
                   cold.status.ToString().c_str());
      return 1;
    }
    cold_errs.push_back(RootQError(cold));

    for (int r = 0; r < kWarmupRuns; ++r) {
      const QueryRun run = warm_session.Run(query, on);
      if (!run.ok()) {
        std::fprintf(stderr, "warm-up run failed: %s\n", run.error().c_str());
        return 1;
      }
    }
    const ExplainResult warm = warm_session.Explain(query, on);
    if (!warm.ok() || RootQError(warm) < 0) {
      std::fprintf(stderr, "warm explain failed: %s\n",
                   warm.status.ToString().c_str());
      return 1;
    }
    warm_errs.push_back(RootQError(warm));
    std::fprintf(stderr, "gen>=%d: q-error cold %.2f -> warm %.2f\n",
                 5 + static_cast<int>(cold_errs.size()) - 1,
                 cold_errs.back(), warm_errs.back());
    if (std::getenv("BENCH_FEEDBACK_DUMP") != nullptr) {
      for (const PlanNodeStats& n : warm.node_stats()) {
        std::fprintf(stderr, "  WARM %-44s est=%8.1f meas=%8llu inv=%llu\n",
                     n.scope.c_str(), n.est_rows,
                     static_cast<unsigned long long>(n.measured_rows),
                     static_cast<unsigned long long>(n.invocations));
      }
      for (uint64_t v = 0; v < 3; ++v) {
        const FeedbackCorrections snap =
            warm_session.feedback_registry().Snapshot(v);
        for (const auto& [scope, factor] : snap.factors()) {
          std::fprintf(stderr, "  FACTOR %-42s %.3f\n", scope.c_str(), factor);
        }
      }
    }
  }

  const double median_cold = Median(cold_errs);
  const double median_warm = Median(warm_errs);
  const double improvement = median_warm > 0 ? median_cold / median_warm : 0;
  const double scopes =
      static_cast<double>(warm_session.feedback_registry().size());

  // Drift demotion, exercised end to end: a hair-trigger threshold watches
  // a cached plan whose estimate is (per the numbers above) well off, so
  // the second run demotes it and the third re-optimizes.
  double demotions = 0;
  if (PlanCacheEnabledByEnv()) {
    Session drift_session(g.db.get(), CostBasedOptions(42));
    QueryOptions trigger;
    trigger.cold = true;
    trigger.feedback.enabled = true;
    trigger.feedback.drift_threshold = 1.0001;
    const std::string& query = corpus.back();
    for (int r = 0; r < 3; ++r) {
      const QueryRun run = drift_session.Run(query, trigger);
      if (!run.ok()) {
        std::fprintf(stderr, "drift run failed: %s\n", run.error().c_str());
        return 1;
      }
    }
    demotions =
        static_cast<double>(drift_session.feedback_registry().stats().demotions);
  }

  WriteBenchJson(out_path, {
                               {"QErrorMedianCold", median_cold, "qerr"},
                               {"QErrorMedianWarm", median_warm, "qerr"},
                               {"QErrorImprovement", improvement, "x"},
                               {"CorrectionScopes", scopes, "scopes"},
                               {"DriftDemotions", demotions, "count"},
                           });
  std::fprintf(stderr,
               "median q-error: cold %.3f warm %.3f (%.2fx better), "
               "%zu correction scopes, %.0f demotions -> %s\n",
               median_cold, median_warm, improvement,
               static_cast<size_t>(scopes), demotions, out_path.c_str());

  if (improvement < 2.0) {
    std::fprintf(stderr,
                 "FAIL: warm-up improved the median q-error only %.2fx "
                 "(acceptance bar: >= 2x)\n",
                 improvement);
    return 1;
  }
  return 0;
}
