// E12 — batched morsel-parallel execution: wall-clock of the batched engine
// vs the legacy whole-table evaluator, and a thread sweep over the batched
// engine's morsel workers, on the Figure 3 recursion and a selective scan.
// Every configuration computes the same answer with bit-identical counters
// and measured cost (asserted here cheaply via row counts; the exhaustive
// check is exec_differential_test) — the sweep measures pure wall time.
//
// Note: speedup is bounded by the cores the host actually has; on a 1-core
// container every thread count collapses to ~1×. The rows/sec counter is
// still meaningful as a throughput baseline.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/check.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

struct ExecCase {
  GeneratedDb db;
  std::unique_ptr<Stats> stats;
  std::unique_ptr<CostModel> cost;
  PTPtr plan;
  size_t expect_rows = 0;
};

ExecCase MakeCase(const QueryGraph& (*make_query)(ExecCase*),
                  int num_composers = 300) {
  ExecCase c;
  MusicConfig config;
  config.num_composers = num_composers;  // big enough that morsels amortize
  config.lineage_depth = 10;
  c.db = GenerateMusicDb(config, PaperMusicPhysical());
  c.stats = std::make_unique<Stats>(Stats::Derive(*c.db.db));
  c.cost = std::make_unique<CostModel>(c.db.db.get(), c.stats.get());

  const QueryGraph& q = make_query(&c);
  Optimizer opt(c.db.db.get(), c.stats.get(), c.cost.get(),
                CostBasedOptions(42));
  OptimizeResult r = opt.Optimize(q);
  RODIN_CHECK(r.ok(), r.status.message.c_str());
  c.plan = r.plan->Clone();
  c.cost->Annotate(c.plan.get());

  Executor exec(c.db.db.get());
  exec.ResetMeasurement(true);
  c.expect_rows = exec.Execute(*c.plan).rows.size();
  return c;
}

ExecCase& RecursiveCase() {
  static ExecCase* c = new ExecCase(MakeCase(+[](ExecCase* cc) -> const QueryGraph& {
    static QueryGraph q;
    q = Fig3Query(*cc->db.schema);
    return q;
  }));
  return *c;
}

ExecCase& ScanCase() {
  static ExecCase* c = new ExecCase(MakeCase(+[](ExecCase* cc) -> const QueryGraph& {
    static QueryGraph q;
    QueryGraphBuilder b;
    NodeBuilder& node = b.Node("Answer");
    node.Input("Composer", "x");
    node.Input("Composer", "y");
    node.Where(Expr::Eq(Expr::Path("x", {"master"}), Expr::Path("y", {})));
    node.Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                        Expr::Lit(Value::Str("harpsichord"))));
    node.OutPath("n", "x", {"name"});
    q = b.Build(*cc->db.schema);
    return q;
  }));
  return *c;
}

// Scan-heavy selective filter over a large extent: deep arithmetic chains
// under each comparison make per-row expression evaluation the dominant
// cost — the eval-bound shape the bytecode VM targets (E14).
ExecCase& FilterCase() {
  static ExecCase* c = new ExecCase(MakeCase(
      +[](ExecCase* cc) -> const QueryGraph& {
        static QueryGraph q;
        QueryGraphBuilder b;
        NodeBuilder& node = b.Node("Answer");
        node.Input("Composer", "x");
        // The interpreter allocates a Value vector per node per row; the
        // VM runs the same dataflow over reused registers.
        auto year_chain = [] {
          ExprPtr e = Expr::Path("x", {"birthyear"});
          for (int i = 0; i < 16; ++i) {
            e = Expr::Arith(i % 2 == 0 ? ArithOp::kAdd : ArithOp::kSub,
                            std::move(e), Expr::Lit(Value::Int(i + 1)));
          }
          return e;
        };
        node.Where(Expr::Cmp(CompareOp::kGe, year_chain(),
                             Expr::Lit(Value::Int(1640))));
        node.Where(Expr::Cmp(CompareOp::kLt, year_chain(),
                             Expr::Lit(Value::Int(1650))));
        node.OutPath("n", "x", {"name"});
        q = b.Build(*cc->db.schema);
        return q;
      },
      /*num_composers=*/3000));
  return *c;
}

// Deep path expression per scanned row: x.master.works.instruments.iname
// fans out through two collections — navigation-bound, the other E14 shape.
ExecCase& DeepPathCase() {
  static ExecCase* c = new ExecCase(MakeCase(
      +[](ExecCase* cc) -> const QueryGraph& {
        static QueryGraph q;
        QueryGraphBuilder b;
        NodeBuilder& node = b.Node("Answer");
        node.Input("Composer", "x");
        node.Where(Expr::Eq(
            Expr::Path("x", {"master", "works", "instruments", "iname"}),
            Expr::Lit(Value::Str("harpsichord"))));
        node.OutPath("n", "x", {"name"});
        q = b.Build(*cc->db.schema);
        return q;
      },
      /*num_composers=*/1000));
  return *c;
}

void RunOnce(ExecCase& c, const ExecOptions& options, benchmark::State& state) {
  size_t rows = 0;
  for (auto _ : state) {
    Executor exec(c.db.db.get());
    exec.ResetMeasurement(true);
    const Table out = exec.Execute(*c.plan, options);
    rows += out.rows.size();
    if (out.rows.size() != c.expect_rows) {
      state.SkipWithError("row count diverged from reference");
      return;
    }
    benchmark::DoNotOptimize(out.rows.data());
  }
  state.counters["rows/sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
}

void BM_LegacyRecursive(benchmark::State& state) {
  ExecOptions options;
  options.use_legacy = true;
  RunOnce(RecursiveCase(), options, state);
}
BENCHMARK(BM_LegacyRecursive)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchedRecursive(benchmark::State& state) {
  ExecOptions options;
  options.exec_threads = static_cast<size_t>(state.range(0));
  RunOnce(RecursiveCase(), options, state);
}
BENCHMARK(BM_BatchedRecursive)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LegacyScanJoin(benchmark::State& state) {
  ExecOptions options;
  options.use_legacy = true;
  RunOnce(ScanCase(), options, state);
}
BENCHMARK(BM_LegacyScanJoin)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchedScanJoin(benchmark::State& state) {
  ExecOptions options;
  options.exec_threads = static_cast<size_t>(state.range(0));
  RunOnce(ScanCase(), options, state);
}
BENCHMARK(BM_BatchedScanJoin)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchedScanJoinHash(benchmark::State& state) {
  ExecOptions options;
  options.hash_equijoin = true;
  options.exec_threads = static_cast<size_t>(state.range(0));
  RunOnce(ScanCase(), options, state);
}
BENCHMARK(BM_BatchedScanJoinHash)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// E14 — interpreted vs compiled expression evaluation. Same plans, same
// answers, bit-identical accounting (vm_differential_fuzz_test); these rows
// measure the wall-time side of the contract. The knob is pinned explicitly
// on both sides so the rows stay comparable under RODIN_COMPILED_EVAL=1 CI.
void BM_ScanFilterInterp(benchmark::State& state) {
  ExecOptions options;
  options.compiled_eval = false;
  RunOnce(FilterCase(), options, state);
}
BENCHMARK(BM_ScanFilterInterp)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ScanFilterCompiled(benchmark::State& state) {
  ExecOptions options;
  options.compiled_eval = true;
  RunOnce(FilterCase(), options, state);
}
BENCHMARK(BM_ScanFilterCompiled)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DeepPathInterp(benchmark::State& state) {
  ExecOptions options;
  options.compiled_eval = false;
  RunOnce(DeepPathCase(), options, state);
}
BENCHMARK(BM_DeepPathInterp)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DeepPathCompiled(benchmark::State& state) {
  ExecOptions options;
  options.compiled_eval = true;
  RunOnce(DeepPathCase(), options, state);
}
BENCHMARK(BM_DeepPathCompiled)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CompiledRecursive(benchmark::State& state) {
  ExecOptions options;
  options.compiled_eval = true;
  options.exec_threads = static_cast<size_t>(state.range(0));
  RunOnce(RecursiveCase(), options, state);
}
BENCHMARK(BM_CompiledRecursive)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchRowsSweep(benchmark::State& state) {
  ExecOptions options;
  options.batch_rows = static_cast<size_t>(state.range(0));
  RunOnce(RecursiveCase(), options, state);
}
BENCHMARK(BM_BatchRowsSweep)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
