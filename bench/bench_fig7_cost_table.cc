// E5 — Figure 7: the symbolic per-node cost table of the two Figure 4
// processing trees, under the paper's §4.6 simplifying assumptions, plus
// numeric evaluation in two regimes:
//
//   (a) the paper-assumption regime — the selection does not reduce
//       cardinalities (one distinct instrument): pushing only adds the path
//       expression to every iteration, so PT (ii) must cost more, which is
//       exactly the paper's conclusion ("pushing selection through
//       recursion in this example is not worthwhile");
//   (b) a selective regime — the same query on a database where the
//       predicate is rare: the pushed plan wins, demonstrating why the
//       decision must be cost-based rather than heuristic.

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/fig7.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/transform.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

void RunRegime(const char* title, const MusicConfig& config) {
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  OptContext ctx;
  ctx.db = g.db.get();
  ctx.stats = &stats;
  ctx.cost = &cost;

  OptimizerOptions no_push = NaiveOptions();
  no_push.gen_strategy = GenStrategy::kDP;
  Optimizer opt(g.db.get(), &stats, &cost, no_push);
  OptimizeResult unpushed = opt.Optimize(Fig3Query(*g.schema, 6));
  if (!unpushed.ok()) {
    std::printf("optimization failed: %s\n", unpushed.status.message.c_str());
    return;
  }
  PTPtr pushed = unpushed.plan->Clone();
  while (PushSelThroughFix(pushed, ctx) || PushProjThroughFix(pushed, ctx)) {
  }
  cost.Annotate(unpushed.plan.get());
  cost.Annotate(pushed.get());

  const std::map<std::string, std::string> symbols = {
      {"Composer", "Cpr"},
      {"Composition", "Cpn"},
      {"Instrument", "Ins"},
      {"Person", "Per"},
  };

  std::printf("=== %s ===\n", title);
  int t_counter = 0;
  SymbolicCostTable table_i =
      DeriveSymbolicCosts(*unpushed.plan, *g.db, symbols, &t_counter);
  std::printf("--- PT (i): selection above the fixpoint ---\n%s\n",
              table_i.ToString().c_str());
  SymbolicCostTable table_ii =
      DeriveSymbolicCosts(*pushed, *g.db, symbols, &t_counter);
  std::printf("--- PT (ii): selection pushed through recursion ---\n%s\n",
              table_ii.ToString().c_str());

  const double total_i = table_i.EvalTotal();
  const double total_ii = table_ii.EvalTotal();
  std::printf("symbolic totals: PT(i) = %.1f, PT(ii) = %.1f -> %s\n",
              total_i, total_ii,
              total_ii > total_i
                  ? "pushing is NOT worthwhile (the paper's Figure 7 verdict)"
                  : "pushing IS worthwhile here");
  std::printf("cost-model totals: PT(i) = %.1f, PT(ii) = %.1f\n\n",
              unpushed.plan->est_cost, pushed->est_cost);
}

}  // namespace

int main() {
  // Regime (a): one distinct instrument — the selection keeps everything,
  // mirroring the paper's no-selectivity-reduction assumption.
  MusicConfig paper;
  paper.num_composers = 300;
  paper.lineage_depth = 12;
  paper.num_instruments = 1;
  paper.harpsichord_fraction = 1.0;
  RunRegime("Regime (a): paper assumptions (no selectivity reduction)",
            paper);

  // Regime (b): a rare instrument — the pushed plan restricts the
  // recursion to the relevant facts and wins.
  MusicConfig selective = paper;
  selective.num_instruments = 40;
  selective.harpsichord_fraction = 0.05;
  RunRegime("Regime (b): selective predicate (1/40 distinct instruments)",
            selective);
  return 0;
}
