// E15 — incremental fixpoint maintenance: cost of bringing a materialized
// transitive closure up to date after a *small* mutation (one edge rewired
// out of ~10^3), maintained incrementally vs recomputed from scratch.
//
// The pairs to compare:
//   BM_MaintainSmallDelta  — FixMaintenancePolicy::kIncremental: the commit
//                            patches the closure with the counting delta.
//   BM_RecomputeSmallDelta — FixMaintenancePolicy::kRecompute: the same
//                            commit rebuilds the whole closure, i.e. the
//                            pre-incremental behaviour.
//   BM_CommitNoViews       — the same commit with no materialized view at
//                            all: the floor the maintenance cost sits on.
//
// The acceptance bar for this experiment is >=10x on the maintain/recompute
// pair: a delta touching one edge must not pay for the whole fixpoint. The
// differential guarantee that the incremental view is bit-identical to a
// from-scratch recompute is fuzzed in tests/materialized_fix_test.cc; here
// each iteration only checks the cheap CommitResult fields.
//
// Every iteration toggles one part's subparts set between two single-leaf
// states, so each commit carries exactly one edge removal plus one edge
// insertion and the database oscillates instead of growing — iteration N
// does the same work as iteration 1.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "api/session.h"
#include "datagen/parts_gen.h"
#include "storage/database.h"
#include "txn/materialized_fix.h"
#include "txn/mutation.h"
#include "txn/txn_manager.h"

using namespace rodin;

namespace {

struct MutateCase {
  GeneratedDb db;
  std::unique_ptr<Session> session;
  // The toggled part and its two alternative single-subpart sets.
  Oid part;
  Oid leaf_a, leaf_b;
  bool flip = false;
};

std::unique_ptr<MutateCase> MakeCase(FixMaintenancePolicy policy,
                                     bool with_view) {
  auto c = std::make_unique<MutateCase>();
  PartsConfig config;
  config.parts_per_level = 60;
  config.num_levels = 5;
  c->db = GeneratePartsDb(config, DefaultPartsPhysical());
  c->session = std::make_unique<Session>(c->db.db.get());
  c->session->txn().SetFixPolicy(policy);
  if (with_view) {
    const Status s = c->session->Materialize({"contains", "Part", "", "subparts"});
    if (!s.ok()) {
      std::fprintf(stderr, "materialize failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  // Parts are generated leaves-first: slots [0, parts_per_level) are the
  // deepest leaves, the next band is their direct parents. Toggle one such
  // parent between two leaves.
  const Database& db = *c->db.db;
  c->part = db.PayloadToOid("Part", config.parts_per_level);
  c->leaf_a = db.PayloadToOid("Part", 0);
  c->leaf_b = db.PayloadToOid("Part", 1);
  return c;
}

void CommitLoop(benchmark::State& state, MutateCase& c, bool expect_views,
                bool expect_incremental) {
  for (auto _ : state) {
    MutationBatch batch;
    batch.Update("Part", c.part,
                 {{"subparts", Value::MakeSet({Value::Ref(
                       c.flip ? c.leaf_a : c.leaf_b)})}});
    c.flip = !c.flip;
    const CommitResult r = c.session->Mutate(batch);
    if (!r.ok() || r.views_maintained != (expect_views ? 1u : 0u) ||
        (expect_views && r.used_incremental != expect_incremental)) {
      state.SkipWithError("commit did not take the expected path");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MaintainSmallDelta(benchmark::State& state) {
  static auto* c =
      MakeCase(FixMaintenancePolicy::kIncremental, /*with_view=*/true)
          .release();
  CommitLoop(state, *c, /*expect_views=*/true, /*expect_incremental=*/true);
}
BENCHMARK(BM_MaintainSmallDelta)->Unit(benchmark::kMicrosecond);

void BM_RecomputeSmallDelta(benchmark::State& state) {
  static auto* c =
      MakeCase(FixMaintenancePolicy::kRecompute, /*with_view=*/true)
          .release();
  CommitLoop(state, *c, /*expect_views=*/true, /*expect_incremental=*/false);
}
BENCHMARK(BM_RecomputeSmallDelta)->Unit(benchmark::kMicrosecond);

void BM_CommitNoViews(benchmark::State& state) {
  static auto* c =
      MakeCase(FixMaintenancePolicy::kIncremental, /*with_view=*/false)
          .release();
  CommitLoop(state, *c, /*expect_views=*/false, /*expect_incremental=*/false);
}
BENCHMARK(BM_CommitNoViews)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
