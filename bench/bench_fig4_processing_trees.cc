// E2 — Figure 4: the two processing trees for the Figure 3 query. PT (i)
// keeps the selective path expression above the fixpoint; PT (ii) is the
// result of the filter action (selection + its implicit joins pushed into
// both arms). Both are produced by the actual optimizer machinery, costed,
// executed, and compared — ending with the cost-based decision (§4.6).

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/transform.h"
#include "plan/pt_printer.h"
#include "query/paper_queries.h"

using namespace rodin;

int main() {
  MusicConfig config;
  config.num_composers = 300;
  config.lineage_depth = 12;
  config.num_instruments = 25;
  config.harpsichord_fraction = 0.15;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  OptContext ctx;
  ctx.db = g.db.get();
  ctx.stats = &stats;
  ctx.cost = &cost;

  // PT (i): generatePT's output before any pushing.
  OptimizerOptions no_push = NaiveOptions();
  no_push.gen_strategy = GenStrategy::kDP;
  Optimizer opt(g.db.get(), &stats, &cost, no_push);
  OptimizeResult unpushed = opt.Optimize(Fig3Query(*g.schema, 6));
  if (!unpushed.ok()) {
    std::printf("optimization failed: %s\n", unpushed.status.message.c_str());
    return 1;
  }

  // PT (ii): the filter action saturated (selection with its implicit
  // joins first, then the free projection push).
  PTPtr pushed = unpushed.plan->Clone();
  size_t pushes = 0;
  while (PushSelThroughFix(pushed, ctx) || PushProjThroughFix(pushed, ctx)) {
    ++pushes;
  }
  cost.Annotate(unpushed.plan.get());
  cost.Annotate(pushed.get());

  std::printf("=== Figure 4.(i): selection above the fixpoint ===\n");
  std::printf("%s\n", PrintPT(*unpushed.plan).c_str());
  std::printf("functional term:\n  %s\n\n", unpushed.plan->ToTerm().c_str());

  std::printf(
      "=== Figure 4.(ii): selection and projection pushed through "
      "recursion (%zu push applications) ===\n",
      pushes);
  std::printf("%s\n", PrintPT(*pushed).c_str());
  std::printf("functional term:\n  %s\n\n", pushed->ToTerm().c_str());

  // Execute both (cold buffer) and compare.
  Executor e1(g.db.get());
  e1.ResetMeasurement(true);
  Table t1 = e1.Execute(*unpushed.plan);
  const double measured_i = e1.MeasuredCost();
  Executor e2(g.db.get());
  e2.ResetMeasurement(true);
  Table t2 = e2.Execute(*pushed);
  const double measured_ii = e2.MeasuredCost();
  t1.Dedup();
  t2.Dedup();

  std::printf("=== Comparison ===\n");
  std::printf("%-28s %14s %14s\n", "", "PT (i)", "PT (ii)");
  std::printf("%-28s %14.1f %14.1f\n", "estimated cost",
              unpushed.plan->est_cost, pushed->est_cost);
  std::printf("%-28s %14.1f %14.1f\n", "measured cost (cold)", measured_i,
              measured_ii);
  std::printf("%-28s %14zu %14zu\n", "answer rows", t1.rows.size(),
              t2.rows.size());
  std::printf("results identical: %s\n",
              t1.rows == t2.rows ? "yes" : "NO (BUG)");

  // The cost-controlled decision (transformPT).
  Optimizer decider(g.db.get(), &stats, &cost, CostBasedOptions());
  OptimizeResult decided = decider.Optimize(Fig3Query(*g.schema, 6));
  std::printf(
      "\ntransformPT decision: %s (pushed alternative %.1f vs unpushed "
      "%.1f)\n",
      decided.pushed_sel ? "PUSH (Figure 4.(ii) wins here)"
                         : "DO NOT PUSH (Figure 4.(i) wins here)",
      decided.pushed_variant_cost, decided.unpushed_variant_cost);
  std::printf(
      "(The paper's point: this is a data-dependent, cost-based decision — "
      "see bench_crossover_push_selection for both regimes.)\n");
  return 0;
}
