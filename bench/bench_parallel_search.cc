// E9 — parallel randomized search: wall-clock speedup and plans-explored
// per second of ParallelStrategy across worker counts, on the Figure 3
// recursive query and a 6-join spj chain. Because restarts use index-derived
// RNG streams, every row of the sweep chooses the *same plan* — the sweep
// measures pure search throughput, not plan quality drift.
//
// Note: speedup is bounded by the cores the host actually has; on a 1-core
// container every thread count collapses to ~1×. The plans/sec column is
// still meaningful as a throughput baseline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/strategy.h"
#include "query/builder.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

struct SearchCase {
  const char* name;
  GeneratedDb db;
  std::unique_ptr<Stats> stats;
  std::unique_ptr<CostModel> cost;
  PTPtr origin;  // costed plan before the randomized phase
};

QueryGraph ChainQuery(uint32_t k, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  node.Input("Node", "x");
  std::string prev = "x";
  for (uint32_t i = 1; i <= k; ++i) {
    const std::string var = "a" + std::to_string(i);
    node.Input(StrFormat("Aux%u", i), var);
    node.Where(Expr::Eq(Expr::Path(prev, {StrFormat("hop%u", i)}),
                        Expr::Path(var)));
    prev = var;
  }
  node.Where(Expr::Eq(Expr::Path(prev, {"label"}),
                      Expr::Lit(Value::Str("label_0"))));
  node.OutPath("n", "x", {"nname"});
  return b.Build(schema);
}

PTPtr OptimizeWithoutRand(SearchCase& c, const QueryGraph& q) {
  OptimizerOptions options = CostBasedOptions();
  options.transform.rand = RandStrategy::kNone;
  Optimizer opt(c.db.db.get(), c.stats.get(), c.cost.get(), options);
  OptimizeResult r = opt.Optimize(q);
  RODIN_CHECK(r.ok(), r.status.message.c_str());
  return std::move(r.plan);
}

SearchCase MakeRecursiveCase() {
  SearchCase c;
  c.name = "fig3 recursive";
  MusicConfig config;
  config.num_composers = 300;
  config.lineage_depth = 12;
  c.db = GenerateMusicDb(config, PaperMusicPhysical());
  c.stats = std::make_unique<Stats>(Stats::Derive(*c.db.db));
  c.cost = std::make_unique<CostModel>(c.db.db.get(), c.stats.get());
  c.origin = OptimizeWithoutRand(c, Fig3Query(*c.db.schema, 5));
  return c;
}

SearchCase MakeChainCase() {
  SearchCase c;
  c.name = "spj chain (6 joins)";
  GraphConfig config;
  config.num_nodes = 200;
  config.path_len = 6;
  config.num_labels = 8;
  c.db = GenerateGraphDb(config, DefaultGraphPhysical());
  c.stats = std::make_unique<Stats>(Stats::Derive(*c.db.db));
  c.cost = std::make_unique<CostModel>(c.db.db.get(), c.stats.get());
  c.origin = OptimizeWithoutRand(c, ChainQuery(6, *c.db.schema));
  return c;
}

TransformOptions SweepOptions() {
  TransformOptions options;
  options.rand = RandStrategy::kIterativeImprovement;
  options.rand_restarts = 32;  // enough independent work to keep 8 busy
  options.rand_moves = 200;
  options.rand_local_stop = 40;
  return options;
}

struct SweepRow {
  double millis = 0;
  double plans_per_sec = 0;
  size_t plans = 0;
  double final_cost = 0;
};

SweepRow RunSweep(SearchCase& c, size_t threads) {
  const TransformOptions options = SweepOptions();
  SweepRow row;
  // Median-ish: best of 3 runs (identical work each time — determinism).
  for (int rep = 0; rep < 3; ++rep) {
    OptContext ctx;
    ctx.db = c.db.db.get();
    ctx.stats = c.stats.get();
    ctx.cost = c.cost.get();
    ctx.rng = Rng(4242);
    PTPtr plan = c.origin->Clone();
    c.cost->Annotate(plan.get());
    ParallelStrategy strategy(threads);
    const auto start = std::chrono::steady_clock::now();
    ParallelSearchReport report = strategy.Improve(plan, ctx, options);
    const double millis =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (rep == 0 || millis < row.millis) {
      row.millis = millis;
      row.plans = report.plans_explored;
      row.plans_per_sec = report.plans_explored / (millis / 1000.0);
      row.final_cost = report.final_cost;
    }
  }
  return row;
}

void SpeedupSweep() {
  std::printf("=== Parallel randomized search: thread sweep ===\n");
  std::printf("(host reports %u hardware threads)\n\n",
              std::thread::hardware_concurrency());
  SearchCase cases[] = {MakeRecursiveCase(), MakeChainCase()};
  for (SearchCase& c : cases) {
    std::printf("--- %s: %zu restarts x %zu moves ---\n", c.name,
                SweepOptions().rand_restarts, SweepOptions().rand_moves);
    std::printf("%8s %10s %10s %12s %10s %12s\n", "threads", "ms", "plans",
                "plans/sec", "speedup", "plan cost");
    double base_ms = 0;
    double base_cost = 0;
    for (size_t threads : {1, 2, 4, 8}) {
      const SweepRow row = RunSweep(c, threads);
      if (threads == 1) {
        base_ms = row.millis;
        base_cost = row.final_cost;
      }
      std::printf("%8zu %10.1f %10zu %12.0f %9.2fx %12.1f\n", threads,
                  row.millis, row.plans, row.plans_per_sec,
                  base_ms / row.millis, row.final_cost);
      // Determinism spot check: every thread count lands on the same cost.
      RODIN_CHECK(row.final_cost == base_cost,
                  "thread sweep diverged: plans differ across thread counts");
    }
    std::printf("\n");
  }
}

// --- google-benchmark timers ----------------------------------------------

SearchCase& RecursiveCase() {
  static SearchCase* c = new SearchCase(MakeRecursiveCase());
  return *c;
}

void BM_ParallelSearch(benchmark::State& state) {
  SearchCase& c = RecursiveCase();
  const size_t threads = static_cast<size_t>(state.range(0));
  const TransformOptions options = SweepOptions();
  size_t plans = 0;
  for (auto _ : state) {
    OptContext ctx;
    ctx.db = c.db.db.get();
    ctx.stats = c.stats.get();
    ctx.cost = c.cost.get();
    ctx.rng = Rng(4242);
    PTPtr plan = c.origin->Clone();
    c.cost->Annotate(plan.get());
    ParallelStrategy strategy(threads);
    ParallelSearchReport report = strategy.Improve(plan, ctx, options);
    plans += report.plans_explored;
    benchmark::DoNotOptimize(report.final_cost);
  }
  state.counters["plans/sec"] = benchmark::Counter(
      static_cast<double>(plans), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelSearch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  SpeedupSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
