// Observability overhead: the same optimize+execute pipeline with no sinks
// attached, with the decision log only, and with full span tracing. The
// no-sink configuration is the one bench_strategies exercises — it must stay
// within noise of a build without the observability layer at all.

#include <benchmark/benchmark.h>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/baseline.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

GeneratedDb& SharedDb() {
  static GeneratedDb g = [] {
    MusicConfig config;
    config.num_composers = 60;
    config.lineage_depth = 8;
    return GenerateMusicDb(config, PaperMusicPhysical());
  }();
  return g;
}

void BM_OptimizeNoSinks(benchmark::State& state) {
  GeneratedDb& g = SharedDb();
  Session session(g.db.get(), CostBasedOptions());
  const QueryGraph q = Fig3Query(*g.schema, 6);
  for (auto _ : state) {
    OptimizeResult r = session.Optimize(q);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_OptimizeNoSinks)->Unit(benchmark::kMillisecond);

void BM_ExplainOnlyDecisionLog(benchmark::State& state) {
  GeneratedDb& g = SharedDb();
  Session session(g.db.get(), CostBasedOptions());
  const QueryGraph q = Fig3Query(*g.schema, 6);
  QueryOptions options;
  options.explain_only = true;
  for (auto _ : state) {
    const QueryRun run = session.Run(q, options);
    benchmark::DoNotOptimize(run.decisions.moves.size());
  }
}
BENCHMARK(BM_ExplainOnlyDecisionLog)->Unit(benchmark::kMillisecond);

void BM_ExplainOnlyWithTrace(benchmark::State& state) {
  GeneratedDb& g = SharedDb();
  Session session(g.db.get(), CostBasedOptions());
  const QueryGraph q = Fig3Query(*g.schema, 6);
  QueryOptions options;
  options.explain_only = true;
  options.collect_trace = true;
  for (auto _ : state) {
    const QueryRun run = session.Run(q, options);
    benchmark::DoNotOptimize(run.trace.get());
  }
}
BENCHMARK(BM_ExplainOnlyWithTrace)->Unit(benchmark::kMillisecond);

void BM_RunColdWithProfiledExecutor(benchmark::State& state) {
  GeneratedDb& g = SharedDb();
  Session session(g.db.get(), CostBasedOptions());
  const QueryGraph q = Fig3Query(*g.schema, 6);
  QueryOptions options;
  options.cold = true;
  for (auto _ : state) {
    const ExplainResult ex = session.Explain(q, options);
    benchmark::DoNotOptimize(ex.measured_cost);
  }
}
BENCHMARK(BM_RunColdWithProfiledExecutor)->Unit(benchmark::kMillisecond);

// Raw primitive costs, for reference when reading the pipeline numbers.
void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("rodin.bench.counter");
  for (auto _ : state) {
    c->Increment();
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_TracerSpan(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    const uint64_t id = tracer.Begin("bench", "bench");
    tracer.End(id);
  }
  benchmark::DoNotOptimize(tracer.event_count());
}
BENCHMARK(BM_TracerSpan);

}  // namespace

BENCHMARK_MAIN();
